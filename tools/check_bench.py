#!/usr/bin/env python
"""Gate pinned hot-path benchmarks against a committed baseline.

Usage::

    python tools/check_bench.py benchmarks/baselines/baseline.json \
        bench.json [--tolerance 0.30]

Both files are ``pytest-benchmark --benchmark-json`` outputs.  The
pinned benchmarks cover the sweep engine's hot paths:

* ``test_rta_batch`` — the vectorised admission-test kernel,
* ``test_persistent_pool_fanout`` — multi-sweep fan-out through the
  persistent worker pool,
* ``test_subprocess_executor_fanout`` — multi-sweep fan-out through
  persistent ``subprocess-workers`` NDJSON workers (the fault-tolerant
  executor backend's dispatch overhead),
* ``test_store_warm_read`` / ``test_store_put_many`` — the sharded
  result store's batched read/write paths,
* ``test_allocator_dispatch`` — the allocator-registry round trip a
  sweep cell pays per task set (spec lookup → strategy → typed
  AllocationResult),
* ``test_workload_batch_generation`` — the vectorised task-set
  generation route (batched Randfixedsum table builds + one period
  draw per sweep) behind ``generate_workload_batch``,
* ``test_ablate_runset`` / ``test_ablate_cached_rescore`` — the
  ablation harness's run-set expansion (config → swap-one variants →
  content-addressed ids) and the warm-cache re-scoring loop,
* ``test_detection_scoring`` — indexed attack scoring over a simulated
  schedule (the detection-latency sweep's per-attack hot path),
* ``test_rta_grid_sweep`` / ``test_partition_sweep_fast`` — the
  structure-of-arrays grid RTA kernel and the incremental-admission
  partition sweep; these two — and the detection index against its
  per-attack scan reference — are additionally held to *speedup
  floors* against their in-run references (:data:`RATIO_GATES`).

Raw means are meaningless across machines (the committed baseline was
recorded on one box, CI runs on another), so every pinned mean is
**normalised by the calibration benchmark's mean from the same file**
(``test_randfixedsum`` — a numpy-bound kernel nobody optimises by
accident).  The gate fails when a pinned benchmark's normalised mean
regresses more than ``--tolerance`` (default 30%) past the baseline.

Regenerate the baseline after an *intended* perf change::

    PYTHONPATH=src REPRO_SCALE=smoke python -m pytest \
        benchmarks/test_bench_micro.py benchmarks/test_bench_parallel.py \
        benchmarks/test_bench_executors.py \
        benchmarks/test_bench_store.py benchmarks/test_bench_allocators.py \
        benchmarks/test_bench_workloads.py \
        benchmarks/test_bench_ablate.py \
        benchmarks/test_bench_analysis.py \
        benchmarks/test_bench_sim.py \
        --benchmark-json=/tmp/bench.json -q
    python tools/check_bench.py --slim /tmp/bench.json \
        benchmarks/baselines/baseline.json

(``--slim`` strips the per-round raw data pytest-benchmark embeds —
the committed baseline only needs names, means, and provenance.)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Benchmark (function) names whose normalised means are gated.
PINNED = (
    "test_rta_batch",
    "test_rta_grid_sweep",
    "test_partition_sweep_fast",
    "test_persistent_pool_fanout",
    "test_subprocess_executor_fanout",
    "test_store_warm_read",
    "test_store_put_many",
    "test_allocator_dispatch",
    "test_workload_batch_generation",
    "test_ablate_runset",
    "test_ablate_cached_rescore",
    "test_detection_scoring",
)

#: The normaliser: CPU-bound, stable, present in every gated run.
CALIBRATION = "test_randfixedsum"

#: Speedup floors checked on the *current* run alone: the slow
#: reference and the fast path come from the same process, so the
#: ratio of their medians is machine-independent.  Each entry is
#: ``(slow benchmark, fast benchmark, minimum slow/fast ratio)``.
RATIO_GATES = (
    # Grid RTA over a sweep's worth of cores vs the per-set scalar loop.
    ("test_rta_scalar_sweep", "test_rta_grid_sweep", 10.0),
    # Fig2-style partition sweep: incremental admission vs rebuild-and-test.
    ("test_partition_sweep_generic", "test_partition_sweep_fast", 2.0),
    # Detection scoring: per-monitor sorted index vs the per-attack
    # scan over every job (O(jobs × attacks)).
    ("test_detection_scan_reference", "test_detection_scoring", 4.0),
)


def load_stats(path: Path, stat: str = "mean") -> dict[str, float]:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")
    stats: dict[str, float] = {}
    for bench in document.get("benchmarks", []):
        stats[bench["name"]] = float(bench["stats"][stat])
    return stats


def slim(source: Path, destination: Path) -> int:
    """Reduce a full pytest-benchmark JSON to the committed-baseline
    form: provenance plus per-benchmark name and stats (no raw rounds)."""
    document = json.loads(source.read_text())
    reduced = {
        "machine_info": document.get("machine_info", {}),
        "datetime": document.get("datetime"),
        "benchmarks": [
            {
                "name": bench["name"],
                "fullname": bench.get("fullname", bench["name"]),
                "stats": {
                    key: value
                    for key, value in bench["stats"].items()
                    if key != "data"
                },
            }
            for bench in document.get("benchmarks", [])
        ],
    }
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(reduced, indent=2, sort_keys=True) + "\n")
    print(f"wrote {destination} ({len(reduced['benchmarks'])} benchmarks)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "baseline", type=Path,
        help="committed baseline JSON (or the source run with --slim)",
    )
    parser.add_argument(
        "current", type=Path,
        help="fresh benchmark JSON (or the destination with --slim)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative regression of the normalised mean "
        "(default: 0.30 = 30%%)",
    )
    parser.add_argument(
        "--slim",
        action="store_true",
        help="write a slimmed baseline from BASELINE to CURRENT "
        "instead of gating",
    )
    args = parser.parse_args(argv)

    if args.slim:
        return slim(args.baseline, args.current)

    baseline = load_stats(args.baseline)
    current = load_stats(args.current)
    # Ratio gates compare two benchmarks from the same run by their
    # per-round *medians*: with the deliberately long rounds of the
    # gated pairs (see benchmarks/test_bench_analysis.py), sustained
    # machine load slows both sides proportionally and cancels in the
    # median ratio, while the per-round minimum hinges on a single
    # lucky round per side and the mean chases outliers.
    current_ratio_stat = load_stats(args.current, stat="median")

    ratio_names = [name for pair in RATIO_GATES for name in pair[:2]]
    missing = [
        name
        for name in (*PINNED, CALIBRATION)
        for means, origin in ((baseline, "baseline"), (current, "current"))
        if name not in means
    ] + [name for name in ratio_names if name not in current]
    if missing:
        sys.exit(
            f"check_bench: benchmark(s) missing from baseline/current "
            f"run: {sorted(set(missing))}"
        )

    failures = []
    print(
        f"{'benchmark':<32} {'base (norm)':>12} {'now (norm)':>12} "
        f"{'ratio':>7}  verdict"
    )
    for name in PINNED:
        base_norm = baseline[name] / baseline[CALIBRATION]
        cur_norm = current[name] / current[CALIBRATION]
        ratio = cur_norm / base_norm
        regressed = ratio > 1.0 + args.tolerance
        verdict = "REGRESSED" if regressed else (
            "improved" if ratio < 1.0 else "ok"
        )
        print(
            f"{name:<32} {base_norm:>12.3f} {cur_norm:>12.3f} "
            f"{ratio:>6.2f}x  {verdict}"
        )
        if regressed:
            failures.append((name, ratio))

    for slow, fast, floor in RATIO_GATES:
        ratio = current_ratio_stat[slow] / current_ratio_stat[fast]
        ok = ratio >= floor
        print(
            f"{fast:<32} speedup vs {slow}: {ratio:.1f}x "
            f"(floor {floor:g}x)  {'ok' if ok else 'TOO SLOW'}"
        )
        if not ok:
            failures.append((f"{fast} speedup", ratio))

    print(
        f"calibration ({CALIBRATION}): baseline "
        f"{baseline[CALIBRATION] * 1e3:.3f}ms vs current "
        f"{current[CALIBRATION] * 1e3:.3f}ms"
    )
    if failures:
        summary = ", ".join(f"{n} ×{r:.2f}" for n, r in failures)
        print(
            f"check_bench: FAIL — pinned hot path regressed beyond "
            f"{args.tolerance:.0%} or speedup floor missed: {summary}",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench: OK — no pinned path regressed > {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
