#!/usr/bin/env python
"""Check that intra-repo markdown links resolve (stdlib only, offline).

Usage::

    python tools/check_links.py [FILE.md ...]

With no arguments, checks ``README.md``, ``ROADMAP.md`` and every page
under ``docs/``.  For each inline markdown link ``[text](target)``:

* ``http(s)://`` / ``mailto:`` targets are skipped — CI has no network
  and external availability is not this repo's contract;
* ``#anchor`` targets must match a heading in the same file (GitHub
  slug rules: lowercase, punctuation stripped, spaces to hyphens);
* relative path targets must exist on disk, resolved against the
  linking file's directory; a trailing ``#anchor`` must then match a
  heading in the *target* file.

Exits 1 listing every broken link, 0 when all resolve.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links, skipping images; markdown code spans are stripped
#: before matching so `[i](x)` inside backticks is not a link.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """The anchor id GitHub generates for a heading."""
    text = re.sub(r"[*_`]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    return {
        github_slug(m.group(1))
        for m in _HEADING.finditer(path.read_text(encoding="utf-8"))
    }


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = _CODE_SPAN.sub("", path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        line = text.count("\n", 0, match.start()) + 1
        file_part, _, anchor = target.partition("#")
        resolved = (
            path if not file_part else (path.parent / file_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{path}:{line}: broken link target {target!r}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path}:{line}: no heading for anchor {target!r}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if arguments:
        files = [Path(argument) for argument in arguments]
    else:
        files = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]
        files += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems: list[str] = []
    for file in files:
        if not file.exists():
            problems.append(f"{file}: file not found")
            continue
        problems += check_file(file)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = sum(1 for f in files if f.exists())
    if problems:
        print(f"check_links: FAIL — {len(problems)} broken link(s)")
        return 1
    print(f"check_links: OK — {checked} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
