#!/usr/bin/env python
"""Regenerate the golden-regression fixtures.

Run after an *intended* behaviour change (new allocation rule, RNG
recipe change, …) and commit the updated JSON together with the code::

    PYTHONPATH=src python tools/regen_golden.py [name ...]

With no arguments every fixture regenerates; naming fixtures (e.g.
``fig2_mini``) restricts the run.  The fixture set is discovered from
the *experiment registry* — every registered experiment that declares
a ``golden_fixture()`` contributes one file — so a new experiment's
fixture shows up here with no list to maintain.

The fixtures live in ``tests/experiments/golden/`` and are asserted by
``tests/experiments/test_golden.py`` in both serial and parallel
engine modes; see ``repro.experiments.golden`` for what each pins.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.golden import golden_fixtures, golden_summary

GOLDEN_DIR = (
    Path(__file__).resolve().parent.parent
    / "tests" / "experiments" / "golden"
)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fixtures = golden_fixtures()
    selected = argv or sorted(fixtures)
    unknown = [name for name in selected if name not in fixtures]
    if unknown:
        print(
            f"unknown fixture(s) {unknown}; registry provides "
            f"{sorted(fixtures)}",
            file=sys.stderr,
        )
        return 2
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in selected:
        summary = golden_summary(name)
        target = GOLDEN_DIR / f"{name}.json"
        target.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"wrote {target} (payload sha256 {summary['payload_sha256'][:12]}…)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
