#!/usr/bin/env python
"""Regenerate — or drift-check — the golden-regression fixtures.

Run after an *intended* behaviour change (new allocation rule, RNG
recipe change, …) and commit the updated JSON together with the code::

    PYTHONPATH=src python tools/regen_golden.py [name ...]

With no arguments every fixture regenerates; naming fixtures (e.g.
``fig2_mini``) restricts the run.  The fixture set is discovered from
the *experiment registry* — every registered experiment that declares
a ``golden_fixture()`` contributes one file — so a new experiment's
fixture shows up here with no list to maintain.

``--check`` regenerates in memory and *diffs* against the committed
files instead of writing: it exits non-zero (and names each drifted or
missing fixture) when the committed JSON no longer matches what the
code produces.  CI runs this so a behaviour change that forgot to
regenerate — or a fixture edited by hand — fails fast::

    PYTHONPATH=src python tools/regen_golden.py --check

The fixtures live in ``tests/experiments/golden/`` and are asserted by
``tests/experiments/test_golden.py`` in both serial and parallel
engine modes; see ``repro.experiments.golden`` for what each pins.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.golden import golden_fixtures, golden_summary

GOLDEN_DIR = (
    Path(__file__).resolve().parent.parent
    / "tests" / "experiments" / "golden"
)


def _render(summary: dict) -> str:
    """The exact file text a fixture summary is committed as."""
    return json.dumps(summary, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="name",
        help="fixture name(s) to regenerate/check (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "diff regenerated fixtures against the committed files "
            "without writing anything; exit 1 on drift or a missing "
            "file"
        ),
    )
    args = parser.parse_args(argv)

    fixtures = golden_fixtures()
    selected = args.names or sorted(fixtures)
    unknown = [name for name in selected if name not in fixtures]
    if unknown:
        print(
            f"unknown fixture(s) {unknown}; registry provides "
            f"{sorted(fixtures)}",
            file=sys.stderr,
        )
        return 2

    if args.check:
        drifted = []
        for name in selected:
            expected = _render(golden_summary(name))
            target = GOLDEN_DIR / f"{name}.json"
            try:
                committed = target.read_text()
            except OSError:
                print(f"MISSING {target}")
                drifted.append(name)
                continue
            if committed != expected:
                print(
                    f"DRIFT   {target} (regenerated output differs "
                    f"from the committed fixture)"
                )
                drifted.append(name)
            else:
                print(f"ok      {target}")
        if drifted:
            print(
                f"regen_golden: {len(drifted)} fixture(s) out of date: "
                f"{drifted}; rerun 'PYTHONPATH=src python "
                f"tools/regen_golden.py' and commit the result "
                f"(if the behaviour change was intended)",
                file=sys.stderr,
            )
            return 1
        print(f"regen_golden: {len(selected)} fixture(s) up to date")
        return 0

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in selected:
        summary = golden_summary(name)
        target = GOLDEN_DIR / f"{name}.json"
        target.write_text(_render(summary))
        print(f"wrote {target} (payload sha256 {summary['payload_sha256'][:12]}…)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
