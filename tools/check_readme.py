#!/usr/bin/env python
"""Audit README fenced commands against the live CLI (stdlib only).

Usage::

    PYTHONPATH=src python tools/check_readme.py [FILE.md ...]

The README's ``bash`` fences are executable documentation; this script
keeps them from drifting away from the code.  For every command line
in a fenced ``bash`` block (default files: ``README.md`` and every
page under ``docs/``):

* ``repro-hydra …`` is an error: the repo ships no packaging, so that
  console script does not exist — commands must use
  ``python -m repro``;
* ``python -m repro <subcommand> …`` must survive ``--help`` (the
  subcommand exists), and every ``--flag`` on the line must appear in
  that help text (the flag exists under that subcommand);
* a script path run as ``python <path.py>`` must exist, and any
  argument containing a ``/`` must exist too — bare-name placeholders
  like ``spec.toml`` are deliberately exempt, repo-relative paths like
  ``examples/custom_sweep.toml`` are not.

Help output is fetched once per subcommand chain through a subprocess
with ``PYTHONPATH=src``, so the audit runs against *this* checkout.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from functools import lru_cache
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```bash\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)

#: Commands the audit does not own (tooling, not this package's CLI).
_SKIP_PREFIXES = (
    "export ",
    "python -m pytest",
    "python -m doctest",
    "python -m pip",
)


def _command_lines(block: str) -> list[str]:
    """Logical command lines: comments stripped, continuations joined."""
    lines: list[str] = []
    pending = ""
    for raw in block.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        line = line.split("  #", 1)[0].strip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        lines.append((pending + line).strip())
        pending = ""
    return lines


def _strip_env_prefix(tokens: list[str]) -> list[str]:
    while tokens and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*=.*", tokens[0]):
        tokens = tokens[1:]
    return tokens


@lru_cache(maxsize=None)
def _help_text(chain: tuple[str, ...]) -> str | None:
    """``python -m repro <chain> --help`` output, or None on failure."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    try:
        completed = subprocess.run(
            [sys.executable, "-m", "repro", *chain, "--help"],
            capture_output=True,
            text=True,
            timeout=60,
            cwd=REPO_ROOT,
            env=env,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def _check_repro_command(tokens: list[str]) -> list[str]:
    """Audit one ``python -m repro …`` token list (post ``-m repro``)."""
    problems: list[str] = []
    chain = []
    for token in tokens:
        if token.startswith("-"):
            break
        chain.append(token)
        if len(chain) == 2:
            break
    help_text = _help_text(tuple(chain))
    if help_text is None and len(chain) == 2:
        # Second token may be a value (e.g. an allocator name), not a
        # nested subcommand — retry on the first token alone.
        chain = chain[:1]
        help_text = _help_text(tuple(chain))
    if help_text is None:
        problems.append(
            f"subcommand {' '.join(chain) or '(none)'!s} not accepted by "
            f"python -m repro"
        )
        return problems
    for token in tokens:
        if token.startswith("--"):
            flag = token.split("=", 1)[0]
            if flag not in help_text:
                problems.append(
                    f"flag {flag} not in "
                    f"'python -m repro {' '.join(chain)} --help'"
                )
    return problems


def _check_paths(tokens: list[str]) -> list[str]:
    problems = []
    for token in tokens:
        candidate = token.split("=", 1)[-1]
        if "/" not in candidate or candidate.startswith("-"):
            continue
        if re.search(r"[<>{}$*\[\]]", candidate):
            continue  # placeholders and globs
        path = REPO_ROOT / candidate
        # Only flag inputs that *look* committed: files under a
        # directory that exists (output paths like results/cache point
        # into directories a run creates).
        if not path.exists() and path.parent.exists() and path.parent != REPO_ROOT:
            problems.append(f"path {candidate!r} does not exist")
    return problems


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    for fence in _FENCE.finditer(text):
        for line in _command_lines(fence.group(1)):
            where = f"{path}: `{line}`"
            if line.startswith("repro-hydra") or " repro-hydra " in line:
                problems.append(
                    f"{where}: 'repro-hydra' is not an installed command "
                    f"(no packaging) — use 'python -m repro'"
                )
                continue
            if line.startswith(_SKIP_PREFIXES):
                continue
            try:
                tokens = _strip_env_prefix(shlex.split(line))
            except ValueError:
                continue
            if not tokens:
                continue
            if tokens[0] == "python" and tokens[1:3] == ["-m", "repro"]:
                problems += [
                    f"{where}: {p}" for p in _check_repro_command(tokens[3:])
                ]
            elif tokens[0] == "python" and tokens[1].endswith(".py"):
                if not (REPO_ROOT / tokens[1]).exists():
                    problems.append(f"{where}: script {tokens[1]!r} missing")
            problems += [f"{where}: {p}" for p in _check_paths(tokens[1:])]
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    if arguments:
        files = [Path(argument) for argument in arguments]
    else:
        files = [REPO_ROOT / "README.md"]
        files += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems: list[str] = []
    for file in files:
        problems += check_file(file)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_readme: FAIL — {len(problems)} drifted command(s)")
        return 1
    print(f"check_readme: OK — {len(files)} file(s) audited")
    return 0


if __name__ == "__main__":
    sys.exit(main())
