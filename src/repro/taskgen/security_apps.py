"""The Table I security-task suite: Tripwire and Bro.

The paper illustrates security integration with the default task split
of two open-source intrusion-detection tools — Tripwire (host integrity:
hash checks over binaries, libraries, device/kernel state and
configuration) and Bro (network monitoring) — and measures their WCETs
on a 1 GHz ARM Cortex-A8.  Those measurements are not printed in the
paper; the WCETs below are representative magnitudes for hash-sweep and
packet-scan workloads on such a board (tens to hundreds of
milliseconds), with desired periods drawn from the paper's ``[1000,
3000]`` ms range and ``T_max = 10·T_des`` as in Sec. IV-B.

Each task carries the attack ``surface`` it monitors; the attack
injection model (:mod:`repro.sim.attacks`) uses it to decide which task
can detect which attack.  ``TRIPWIRE_PRECEDENCE`` encodes the paper's
§V observation that the checker's *own* binary should be validated
before it checks anything else (used by the precedence-constraint
simulator extension).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.task import SecurityTask, TaskSet

__all__ = [
    "SecurityAppSpec",
    "TABLE1_SPECS",
    "table1_security_tasks",
    "TRIPWIRE_PRECEDENCE",
]


@dataclass(frozen=True, slots=True)
class SecurityAppSpec:
    """One row of Table I with our representative timing parameters."""

    name: str
    application: str  # "tripwire" or "bro"
    function: str  # the paper's description of what the task does
    surface: str  # attack surface label used by the simulator
    wcet: float
    period_des: float

    @property
    def period_max(self) -> float:
        return 10.0 * self.period_des

    def to_task(self, wcet_scale: float = 1.0) -> SecurityTask:
        return SecurityTask(
            name=self.name,
            wcet=self.wcet * wcet_scale,
            period_des=self.period_des,
            period_max=self.period_max,
            surface=self.surface,
        )


#: Table I of the paper, one spec per row (timing values representative).
TABLE1_SPECS: tuple[SecurityAppSpec, ...] = (
    SecurityAppSpec(
        name="tw_own_binary",
        application="tripwire",
        function="Compare the hash value of the security application binary",
        surface="security-binary",
        wcet=180.0,
        period_des=1000.0,
    ),
    SecurityAppSpec(
        name="tw_executables",
        application="tripwire",
        function="Check hash of the file-system binaries (/bin, /sbin)",
        surface="filesystem",
        wcet=500.0,
        period_des=1500.0,
    ),
    SecurityAppSpec(
        name="tw_libraries",
        application="tripwire",
        function="Check library hashes (/lib)",
        surface="libraries",
        wcet=350.0,
        period_des=2000.0,
    ),
    SecurityAppSpec(
        name="tw_kernel_dev",
        application="tripwire",
        function="Check hash of peripherals and kernel info (/dev, /proc)",
        surface="kernel",
        wcet=330.0,
        period_des=2500.0,
    ),
    SecurityAppSpec(
        name="tw_config",
        application="tripwire",
        function="Check configuration hashes (/etc)",
        surface="config",
        wcet=330.0,
        period_des=3000.0,
    ),
    SecurityAppSpec(
        name="bro_network",
        application="bro",
        function="Scan network interface traffic (e.g. en0)",
        surface="network",
        wcet=300.0,
        period_des=1250.0,
    ),
)

#: §V precedence: check the checker's own binary before everything else.
TRIPWIRE_PRECEDENCE: dict[str, tuple[str, ...]] = {
    "tw_executables": ("tw_own_binary",),
    "tw_libraries": ("tw_own_binary",),
    "tw_kernel_dev": ("tw_own_binary",),
    "tw_config": ("tw_own_binary",),
}


def table1_security_tasks(wcet_scale: float = 1.0) -> TaskSet:
    """The six Table I security tasks as a :class:`TaskSet`.

    ``wcet_scale`` uniformly scales the WCETs (e.g. to model a slower
    board) without altering the period structure.
    """
    if wcet_scale <= 0:
        raise ValueError(f"wcet_scale must be positive, got {wcet_scale}")
    return TaskSet(spec.to_task(wcet_scale) for spec in TABLE1_SPECS)
