"""Workload synthesis (paper Sec. IV).

* :mod:`repro.taskgen.randfixedsum` — unbiased utilisation splitting.
* :mod:`repro.taskgen.periods` — period sampling policies.
* :mod:`repro.taskgen.synthetic` — the Sec. IV-B synthetic recipe.
* :mod:`repro.taskgen.uav` — the Sec. IV-A UAV case-study task set.
* :mod:`repro.taskgen.security_apps` — the Table I Tripwire/Bro suite.
"""

from repro.taskgen.periods import sample_periods
from repro.taskgen.randfixedsum import randfixedsum
from repro.taskgen.security_apps import (
    TABLE1_SPECS,
    TRIPWIRE_PRECEDENCE,
    SecurityAppSpec,
    table1_security_tasks,
)
from repro.taskgen.synthetic import (
    SyntheticConfig,
    SyntheticWorkload,
    generate_workload,
    utilization_sweep,
)
from repro.taskgen.uav import UAV_TASK_TABLE, uav_rt_tasks

__all__ = [
    "randfixedsum",
    "sample_periods",
    "SyntheticConfig",
    "SyntheticWorkload",
    "generate_workload",
    "utilization_sweep",
    "UAV_TASK_TABLE",
    "uav_rt_tasks",
    "SecurityAppSpec",
    "TABLE1_SPECS",
    "TRIPWIRE_PRECEDENCE",
    "table1_security_tasks",
]
