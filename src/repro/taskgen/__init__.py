"""Workload synthesis (paper Sec. IV).

* :mod:`repro.taskgen.randfixedsum` — unbiased utilisation splitting.
* :mod:`repro.taskgen.uunifast` — the UUniFast(-Discard) splitters.
* :mod:`repro.taskgen.periods` — period sampling policies.
* :mod:`repro.taskgen.synthetic` — the Sec. IV-B synthetic recipe,
  per-instance and batched.
* :mod:`repro.taskgen.uav` — the Sec. IV-A UAV case-study task set.
* :mod:`repro.taskgen.security_apps` — the Table I Tripwire/Bro suite.

Named *generators* over these primitives — the paper recipe, UUniFast
variants, period regimes, heavy-security profiles, case studies — live
in the :mod:`repro.workloads` registry.
"""

from repro.taskgen.periods import sample_periods
from repro.taskgen.randfixedsum import randfixedsum, randfixedsum_batch
from repro.taskgen.security_apps import (
    TABLE1_SPECS,
    TRIPWIRE_PRECEDENCE,
    SecurityAppSpec,
    table1_security_tasks,
)
from repro.taskgen.synthetic import (
    UTILIZATION_SPLITS,
    SyntheticConfig,
    SyntheticWorkload,
    generate_workload,
    generate_workload_batch,
    utilization_sweep,
)
from repro.taskgen.uav import UAV_TASK_TABLE, uav_rt_tasks
from repro.taskgen.uunifast import project_box_sum, uunifast, uunifast_discard

__all__ = [
    "randfixedsum",
    "randfixedsum_batch",
    "sample_periods",
    "uunifast",
    "uunifast_discard",
    "project_box_sum",
    "UTILIZATION_SPLITS",
    "SyntheticConfig",
    "SyntheticWorkload",
    "generate_workload",
    "generate_workload_batch",
    "utilization_sweep",
    "UAV_TASK_TABLE",
    "uav_rt_tasks",
    "SecurityAppSpec",
    "TABLE1_SPECS",
    "TRIPWIRE_PRECEDENCE",
    "table1_security_tasks",
]
