"""The UUniFast family of utilisation splitters.

UUniFast [Bini & Buttazzo, RTSJ 2005] draws a utilisation vector
summing to ``u`` by peeling the remaining sum with order-statistic
factors — ``O(n)`` per vector, against Randfixedsum's ``O(n²)`` table
build — but its components are unbounded above, so on multicore
targets (``u > 1``) a draw can demand more than one core from a single
task.  UUniFast-Discard [Emberson et al., WATERS 2010] repairs that by
resampling vectors containing any component above 1 until one is
admissible.

Both are provided batched (``nsets`` vectors per call, fully
vectorised) for the workload generators in :mod:`repro.workloads`,
together with :func:`project_box_sum` — the deterministic clamp-and-
redistribute projection the synthetic recipe uses to keep per-task
utilisations inside ``[floor, 1]`` without drifting off the target sum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["uunifast", "uunifast_discard", "project_box_sum"]


def uunifast(
    n: int,
    total: float,
    nsets: int = 1,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``nsets`` UUniFast vectors of ``n`` components summing to
    ``total``.

    Classic UUniFast: components are exchangeable with the correct
    joint density on the simplex, but individually unbounded above —
    callers targeting ``total > 1`` should use
    :func:`uunifast_discard` or project with :func:`project_box_sum`.

    Returns an array of shape ``(nsets, n)``.
    """
    if n < 1:
        raise ValidationError(f"n must be ≥ 1, got {n}")
    if nsets < 1:
        raise ValidationError(f"nsets must be ≥ 1, got {nsets}")
    if total < 0:
        raise ValidationError(f"total must be ≥ 0, got {total}")
    if rng is None:
        rng = np.random.default_rng()
    if n == 1:
        return np.full((nsets, 1), float(total))
    # sum_{i+1} = sum_i · r_i^(1/(n-i)): the classic peeling recursion,
    # run for all sets at once via a row-wise cumulative product.
    r = rng.uniform(size=(nsets, n - 1))
    factors = r ** (1.0 / np.arange(n - 1, 0, -1.0))
    sums = total * np.cumprod(factors, axis=1)
    boundaries = np.concatenate(
        [np.full((nsets, 1), float(total)), sums], axis=1
    )
    return np.concatenate(
        [boundaries[:, :-1] - boundaries[:, 1:], sums[:, -1:]], axis=1
    )


def uunifast_discard(
    n: int,
    total: float,
    nsets: int = 1,
    rng: np.random.Generator | None = None,
    high: float = 1.0,
    max_attempts: int = 100,
) -> np.ndarray:
    """UUniFast-Discard: resample any vector with a component above
    ``high`` until every vector is admissible.

    Only the offending vectors are redrawn each round, so the accepted
    ones keep their (unbiased) distribution.  After ``max_attempts``
    rounds any stragglers are projected onto the admissible box with
    :func:`project_box_sum` — a biased but deterministic fallback that
    guarantees termination (relevant only when ``total`` is close to
    ``n·high``, where the discard acceptance rate collapses).
    """
    if not (total <= n * high + 1e-12):
        raise ValidationError(
            f"sum {total} unreachable with {n} components in [0, {high}]"
        )
    if rng is None:
        rng = np.random.default_rng()
    utils = uunifast(n, total, nsets, rng)
    for _ in range(max_attempts):
        bad = np.flatnonzero((utils > high).any(axis=1))
        if bad.size == 0:
            return utils
        utils[bad] = uunifast(n, total, int(bad.size), rng)
    return project_box_sum(utils, total, low=0.0, high=high)


def project_box_sum(
    values: np.ndarray,
    total: float | np.ndarray,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """Project each row of ``values`` onto
    ``{x ∈ [low, high]^n : Σ x = total}`` by clamping and
    redistributing the clamped mass proportionally to the remaining
    head-room (or slack).  ``total`` may be a scalar (every row shares
    the target sum) or an array broadcastable to the row shape (one
    target per row — the :func:`randfixedsum_batch` case).

    Deterministic and idempotent: rows already inside the box and on
    the target sum are returned bit-for-bit unchanged.  Rows whose sum
    is off redistribute in one proportional pass (plus a float-cleanup
    pass), which cannot push any component back out of ``[low, high]``.
    Degenerate targets at or below ``n·low`` fall back to an even
    ``total / n`` split.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[-1]
    if high <= low:
        raise ValidationError(f"need low < high, got [{low}, {high}]")
    totals = np.broadcast_to(
        np.asarray(total, dtype=float), values.shape[:-1]
    )[..., None]
    if np.any(totals > n * high + 1e-9):
        offender = float(totals[totals > n * high + 1e-9][0])
        raise ValidationError(
            f"sum {offender} unreachable with {n} components in "
            f"[{low}, {high}]"
        )
    degenerate = totals <= n * low
    if degenerate.all():
        return np.broadcast_to(totals / n, values.shape).copy()
    tiny = np.finfo(float).tiny
    tol = 1e-12 * np.maximum(1.0, np.abs(totals))
    out = np.clip(values, low, high)
    for _ in range(2):
        deficit = totals - out.sum(axis=-1, keepdims=True)
        if np.all(np.abs(deficit) <= tol):
            break
        headroom = high - out
        slack = out - low
        up = np.clip(deficit, 0.0, None)
        down = np.clip(-deficit, 0.0, None)
        out = (
            out
            + headroom * (up / np.maximum(headroom.sum(-1, keepdims=True), tiny))
            - slack * (down / np.maximum(slack.sum(-1, keepdims=True), tiny))
        )
    if degenerate.any():
        out = np.where(degenerate, totals / n, out)
    return out
