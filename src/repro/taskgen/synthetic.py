"""The paper's synthetic workload recipe (Sec. IV-B).

Per task-set instance on an ``M``-core platform:

* ``[3M, 10M]`` real-time tasks with periods in ``[10, 1000]`` ms;
* ``[2M, 5M]`` security tasks with desired periods in ``[1000, 3000]``
  ms and ``T_max = 10·T_des``;
* a target total utilisation ``U ∈ {0.025M, …, 0.975M}`` split across
  tasks with Randfixedsum;
* security utilisation capped at 30 % of the real-time utilisation.

The recipe fixes the split at the cap (``U_S = 0.3·U_R``, i.e.
``U_R = U/1.3``), which satisfies the paper's "no more than 30 %"
condition while maximally exercising the security side; the fraction is
configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.model.task import RealTimeTask, SecurityTask, TaskSet
from repro.taskgen.periods import sample_periods
from repro.taskgen.randfixedsum import randfixedsum, randfixedsum_batch
from repro.taskgen.uunifast import project_box_sum, uunifast, uunifast_discard

__all__ = ["SyntheticConfig", "SyntheticWorkload", "UTILIZATION_SPLITS",
           "generate_workload", "generate_workload_batch",
           "utilization_sweep"]

#: Floor for per-task utilisation so WCETs stay strictly positive.
_MIN_TASK_UTIL = 1e-5

#: Accepted ``split`` policies: how a total utilisation is divided
#: across tasks.  ``randfixedsum`` is the paper's recipe; the UUniFast
#: pair back the ``uunifast``/``uunifast-discard`` workload families.
UTILIZATION_SPLITS = ("randfixedsum", "uunifast", "uunifast-discard")


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator, defaulting to the paper's values."""

    rt_tasks_per_core: tuple[int, int] = (3, 10)
    security_tasks_per_core: tuple[int, int] = (2, 5)
    #: Absolute task-count overrides; when set they win over the
    #: per-core ranges (Fig. 3 uses ``security_task_count=(2, 6)``).
    rt_task_count: tuple[int, int] | None = None
    security_task_count: tuple[int, int] | None = None
    rt_period_range: tuple[float, float] = (10.0, 1000.0)
    security_period_des_range: tuple[float, float] = (1000.0, 3000.0)
    period_max_factor: float = 10.0
    security_utilization_fraction: float = 0.3
    period_distribution: str = "log-uniform"
    period_granularity: float | None = None

    def __post_init__(self) -> None:
        for name, bounds in (
            ("rt_tasks_per_core", self.rt_tasks_per_core),
            ("security_tasks_per_core", self.security_tasks_per_core),
            ("rt_task_count", self.rt_task_count),
            ("security_task_count", self.security_task_count),
        ):
            if bounds is None:
                continue
            lo, hi = bounds
            if lo < 1 or hi < lo:
                raise ValidationError(f"invalid {name} range ({lo}, {hi})")
        for name, (lo, hi) in (
            ("rt_period_range", self.rt_period_range),
            ("security_period_des_range", self.security_period_des_range),
        ):
            if lo <= 0 or hi < lo:
                raise ValidationError(f"invalid {name} ({lo}, {hi})")
        if self.period_max_factor < 1.0:
            raise ValidationError(
                f"period_max_factor must be ≥ 1, got {self.period_max_factor}"
            )
        if not (0.0 < self.security_utilization_fraction <= 1.0):
            raise ValidationError(
                "security_utilization_fraction must lie in (0, 1], got "
                f"{self.security_utilization_fraction}"
            )


@dataclass(frozen=True)
class SyntheticWorkload:
    """One generated task-set instance."""

    platform: Platform
    rt_tasks: TaskSet
    security_tasks: TaskSet
    target_utilization: float
    config: SyntheticConfig = field(repr=False, default=SyntheticConfig())

    @property
    def rt_utilization(self) -> float:
        return sum(t.utilization for t in self.rt_tasks)

    @property
    def security_utilization_des(self) -> float:
        return sum(t.utilization_des for t in self.security_tasks)

    @property
    def total_utilization(self) -> float:
        """Total achieved utilisation (security counted at desired rate)."""
        return self.rt_utilization + self.security_utilization_des


def _split_utilization(
    total: float,
    count: int,
    rng: np.random.Generator,
    split: str = "randfixedsum",
    nsets: int = 1,
) -> np.ndarray:
    """Split ``total`` across ``count`` tasks, ``nsets`` vectors at a
    time (shape ``(nsets, count)``).

    Every share ends strictly positive (≥ ``_MIN_TASK_UTIL``) and at
    most full-core load; the box projection redistributes whatever the
    clamp moved, so the vector still sums to ``total`` exactly — the
    raw ``maximum(utils, floor)`` clamp used to drift *above* target by
    up to ``count·1e-5`` at extreme low-utilisation corners.

    .. note:: Cache keys deliberately did not change with this fix
       (golden-pinned compatibility): a result store populated before
       it may hold entries computed with the drifting clamp at those
       corner points.  Draws the clamp never touched — including every
       golden fixture — are bit-identical; clear or ``gc`` old caches
       of extreme low-utilisation sweeps if exactness there matters.
    """
    if count == 0:
        return np.zeros((nsets, 0))
    total = min(total, count * 1.0)
    if split == "randfixedsum":
        utils = randfixedsum(count, total, nsets, rng, low=0.0, high=1.0)
    elif split == "uunifast":
        utils = uunifast(count, total, nsets, rng)
    elif split == "uunifast-discard":
        utils = uunifast_discard(count, total, nsets, rng)
    else:
        raise ValidationError(
            f"unknown utilisation split {split!r}; expected one of "
            f"{UTILIZATION_SPLITS}"
        )
    return project_box_sum(utils, total, low=_MIN_TASK_UTIL, high=1.0)


def _count_bounds(
    config: SyntheticConfig, m: int
) -> tuple[int, int, int, int]:
    """Effective (rt_lo, rt_hi, sec_lo, sec_hi) task-count bounds."""
    if config.rt_task_count is not None:
        nr_lo, nr_hi = config.rt_task_count
    else:
        nr_lo = config.rt_tasks_per_core[0] * m
        nr_hi = config.rt_tasks_per_core[1] * m
    if config.security_task_count is not None:
        ns_lo, ns_hi = config.security_task_count
    else:
        ns_lo = config.security_tasks_per_core[0] * m
        ns_hi = config.security_tasks_per_core[1] * m
    return nr_lo, nr_hi, ns_lo, ns_hi


def _build_tasks(
    rt_utils: np.ndarray,
    rt_periods: np.ndarray,
    sec_utils: np.ndarray,
    sec_periods: np.ndarray,
    config: SyntheticConfig,
) -> tuple[TaskSet, TaskSet]:
    rt_tasks = TaskSet(
        RealTimeTask(
            name=f"rt{i:03d}",
            wcet=float(u * p),
            period=float(p),
        )
        for i, (u, p) in enumerate(zip(rt_utils, rt_periods))
    )
    security_tasks = TaskSet(
        SecurityTask(
            name=f"sec{i:03d}",
            wcet=float(u * p),
            period_des=float(p),
            period_max=float(p * config.period_max_factor),
        )
        for i, (u, p) in enumerate(zip(sec_utils, sec_periods))
    )
    return rt_tasks, security_tasks


def generate_workload(
    platform: Platform | int,
    total_utilization: float,
    rng: np.random.Generator | int | None = None,
    config: SyntheticConfig | None = None,
    split: str = "randfixedsum",
) -> SyntheticWorkload:
    """Generate one synthetic task set per the paper's recipe.

    Parameters
    ----------
    platform:
        The platform (or a plain core count ``M``).
    total_utilization:
        Target combined utilisation (real-time + security-at-desired-rate);
        must lie in ``(0, M]``.
    rng:
        Numpy generator, an integer seed, or ``None`` for a fresh
        generator.
    config:
        Generation knobs; defaults to the paper's parameters.
    split:
        Utilisation-splitting policy (:data:`UTILIZATION_SPLITS`); the
        default Randfixedsum is the paper's recipe, the UUniFast pair
        backs the corresponding :mod:`repro.workloads` families.
    """
    if isinstance(platform, int):
        platform = Platform(platform)
    if config is None:
        config = SyntheticConfig()
    if isinstance(rng, int) or rng is None:
        rng = np.random.default_rng(rng)
    m = platform.num_cores
    if not (0.0 < total_utilization <= m + 1e-9):
        raise ValidationError(
            f"total utilisation {total_utilization} outside (0, {m}]"
        )

    frac = config.security_utilization_fraction
    rt_util = total_utilization / (1.0 + frac)
    sec_util = total_utilization - rt_util

    nr_lo, nr_hi, ns_lo, ns_hi = _count_bounds(config, m)
    nr = int(rng.integers(nr_lo, nr_hi + 1))
    ns = int(rng.integers(ns_lo, ns_hi + 1))

    rt_utils = _split_utilization(rt_util, nr, rng, split)[0]
    rt_periods = sample_periods(
        nr,
        *config.rt_period_range,
        rng=rng,
        distribution=config.period_distribution,
        granularity=config.period_granularity,
    )
    sec_utils = _split_utilization(sec_util, ns, rng, split)[0]
    sec_periods = sample_periods(
        ns,
        *config.security_period_des_range,
        rng=rng,
        distribution=config.period_distribution,
        granularity=config.period_granularity,
    )
    rt_tasks, security_tasks = _build_tasks(
        rt_utils, rt_periods, sec_utils, sec_periods, config
    )

    return SyntheticWorkload(
        platform=platform,
        rt_tasks=rt_tasks,
        security_tasks=security_tasks,
        target_utilization=total_utilization,
        config=config,
    )


def _batch_split(
    totals: Sequence[float],
    counts: np.ndarray,
    rng: np.random.Generator,
    split: str,
) -> list[np.ndarray]:
    """Per-instance utilisation vectors for ``(totals[i], counts[i])``.

    The Randfixedsum route batches at two levels.  Instances sharing a
    ``(count, total)`` pair — every task set of one utilisation point
    that drew the same count — share one *scalar* table build
    (``randfixedsum(count, total, nsets)``).  The remaining instances,
    whose sums are unique within their count, go through the batched
    kernel (:func:`randfixedsum_batch`): one vectorised Stafford table
    build per distinct count across all their *different* sums — on a
    utilisation sweep (every point its own target) this collapses
    hundreds of ``O(n²)`` table builds into one or two dozen.  The
    (cheap, ``O(n)``) UUniFast splitters batch by ``(count, total)``
    pairs only, since their signature fixes one sum per call.  Group
    order is first-appearance order at both levels, so results are
    deterministic for a given stream.
    """
    out: list[np.ndarray] = [np.zeros(0)] * len(counts)
    if split == "randfixedsum":
        by_count: dict[int, dict[float, list[int]]] = {}
        for i, count in enumerate(counts):
            if count:
                total = min(float(totals[i]), float(count))
                by_count.setdefault(int(count), {}).setdefault(
                    total, []
                ).append(i)
        for count, by_total in by_count.items():
            singles: list[tuple[float, int]] = []
            for total, indices in by_total.items():
                if len(indices) == 1:
                    singles.append((total, indices[0]))
                    continue
                rows = randfixedsum(count, total, len(indices), rng)
                rows = project_box_sum(
                    rows, total, low=_MIN_TASK_UTIL, high=1.0
                )
                for row, i in zip(rows, indices):
                    out[i] = row
            if singles:
                sub = np.array([total for total, _ in singles])
                rows = randfixedsum_batch(count, sub, rng)
                rows = project_box_sum(
                    rows, sub, low=_MIN_TASK_UTIL, high=1.0
                )
                for row, (_, i) in zip(rows, singles):
                    out[i] = row
        return out
    groups: dict[tuple[int, float], list[int]] = {}
    for i, (count, total) in enumerate(zip(counts, totals)):
        groups.setdefault((int(count), float(total)), []).append(i)
    for (count, total), indices in groups.items():
        rows = _split_utilization(total, count, rng, split, nsets=len(indices))
        for row, i in zip(rows, indices):
            out[i] = row
    return out


def _batch_periods(
    counts: np.ndarray,
    low: float,
    high: float,
    rng: np.random.Generator,
    config: SyntheticConfig,
) -> list[np.ndarray]:
    """All instances' periods in one draw, split back per instance."""
    flat = sample_periods(
        int(counts.sum()),
        low,
        high,
        rng=rng,
        distribution=config.period_distribution,
        granularity=config.period_granularity,
    )
    return np.split(flat, np.cumsum(counts)[:-1])


def generate_workload_batch(
    platform: Platform | int,
    total_utilizations: Sequence[float],
    rng: np.random.Generator | int | None = None,
    config: SyntheticConfig | None = None,
    split: str = "randfixedsum",
) -> list[SyntheticWorkload]:
    """Generate one task set per entry of ``total_utilizations`` with
    the generation hot path vectorised across the whole batch.

    Semantically equivalent to calling :func:`generate_workload` per
    target — same recipe, same knobs, same invariants — but task
    counts are drawn in two vectorised calls, utilisation splits are
    grouped so repeated ``(count, target)`` pairs (the
    ``tasksets_per_point`` case) share one Randfixedsum table build,
    and all periods of a batch come from a single ``sample_periods``
    draw.  The stream consumption differs from the serial loop, so the
    two paths are *individually* deterministic but not byte-identical
    to each other; callers needing the pinned legacy bytes (the
    no-workload-axis scenario path) keep the per-instance loop.
    """
    if isinstance(platform, int):
        platform = Platform(platform)
    if config is None:
        config = SyntheticConfig()
    if isinstance(rng, int) or rng is None:
        rng = np.random.default_rng(rng)
    m = platform.num_cores
    targets = [float(u) for u in total_utilizations]
    for target in targets:
        if not (0.0 < target <= m + 1e-9):
            raise ValidationError(
                f"total utilisation {target} outside (0, {m}]"
            )
    if not targets:
        return []

    frac = config.security_utilization_fraction
    rt_totals = [u / (1.0 + frac) for u in targets]
    sec_totals = [u - r for u, r in zip(targets, rt_totals)]

    nr_lo, nr_hi, ns_lo, ns_hi = _count_bounds(config, m)
    k = len(targets)
    nr = rng.integers(nr_lo, nr_hi + 1, size=k)
    ns = rng.integers(ns_lo, ns_hi + 1, size=k)

    rt_utils = _batch_split(rt_totals, nr, rng, split)
    rt_periods = _batch_periods(nr, *config.rt_period_range, rng, config)
    sec_utils = _batch_split(sec_totals, ns, rng, split)
    sec_periods = _batch_periods(
        ns, *config.security_period_des_range, rng, config
    )

    workloads = []
    for i, target in enumerate(targets):
        rt_tasks, security_tasks = _build_tasks(
            rt_utils[i], rt_periods[i], sec_utils[i], sec_periods[i], config
        )
        workloads.append(
            SyntheticWorkload(
                platform=platform,
                rt_tasks=rt_tasks,
                security_tasks=security_tasks,
                target_utilization=target,
                config=config,
            )
        )
    return workloads


def utilization_sweep(
    platform: Platform | int,
    step_fraction: float = 0.025,
    start_fraction: float = 0.025,
    stop_fraction: float = 0.975,
) -> Iterator[float]:
    """The paper's utilisation grid: ``0.025M, 0.05M, …, 0.975M``.

    Yields absolute utilisation values for the given platform.
    """
    m = platform.num_cores if isinstance(platform, Platform) else platform
    if not (0.0 < start_fraction <= stop_fraction <= 1.0):
        raise ValidationError("invalid sweep fractions")
    steps = int(round((stop_fraction - start_fraction) / step_fraction)) + 1
    for k in range(steps):
        yield (start_fraction + k * step_fraction) * m
