"""The paper's synthetic workload recipe (Sec. IV-B).

Per task-set instance on an ``M``-core platform:

* ``[3M, 10M]`` real-time tasks with periods in ``[10, 1000]`` ms;
* ``[2M, 5M]`` security tasks with desired periods in ``[1000, 3000]``
  ms and ``T_max = 10·T_des``;
* a target total utilisation ``U ∈ {0.025M, …, 0.975M}`` split across
  tasks with Randfixedsum;
* security utilisation capped at 30 % of the real-time utilisation.

The recipe fixes the split at the cap (``U_S = 0.3·U_R``, i.e.
``U_R = U/1.3``), which satisfies the paper's "no more than 30 %"
condition while maximally exercising the security side; the fraction is
configurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.model.task import RealTimeTask, SecurityTask, TaskSet
from repro.taskgen.periods import sample_periods
from repro.taskgen.randfixedsum import randfixedsum

__all__ = ["SyntheticConfig", "SyntheticWorkload", "generate_workload",
           "utilization_sweep"]

#: Floor for per-task utilisation so WCETs stay strictly positive.
_MIN_TASK_UTIL = 1e-5


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator, defaulting to the paper's values."""

    rt_tasks_per_core: tuple[int, int] = (3, 10)
    security_tasks_per_core: tuple[int, int] = (2, 5)
    #: Absolute task-count overrides; when set they win over the
    #: per-core ranges (Fig. 3 uses ``security_task_count=(2, 6)``).
    rt_task_count: tuple[int, int] | None = None
    security_task_count: tuple[int, int] | None = None
    rt_period_range: tuple[float, float] = (10.0, 1000.0)
    security_period_des_range: tuple[float, float] = (1000.0, 3000.0)
    period_max_factor: float = 10.0
    security_utilization_fraction: float = 0.3
    period_distribution: str = "log-uniform"
    period_granularity: float | None = None

    def __post_init__(self) -> None:
        for name, bounds in (
            ("rt_tasks_per_core", self.rt_tasks_per_core),
            ("security_tasks_per_core", self.security_tasks_per_core),
            ("rt_task_count", self.rt_task_count),
            ("security_task_count", self.security_task_count),
        ):
            if bounds is None:
                continue
            lo, hi = bounds
            if lo < 1 or hi < lo:
                raise ValidationError(f"invalid {name} range ({lo}, {hi})")
        for name, (lo, hi) in (
            ("rt_period_range", self.rt_period_range),
            ("security_period_des_range", self.security_period_des_range),
        ):
            if lo <= 0 or hi < lo:
                raise ValidationError(f"invalid {name} ({lo}, {hi})")
        if self.period_max_factor < 1.0:
            raise ValidationError(
                f"period_max_factor must be ≥ 1, got {self.period_max_factor}"
            )
        if not (0.0 < self.security_utilization_fraction <= 1.0):
            raise ValidationError(
                "security_utilization_fraction must lie in (0, 1], got "
                f"{self.security_utilization_fraction}"
            )


@dataclass(frozen=True)
class SyntheticWorkload:
    """One generated task-set instance."""

    platform: Platform
    rt_tasks: TaskSet
    security_tasks: TaskSet
    target_utilization: float
    config: SyntheticConfig = field(repr=False, default=SyntheticConfig())

    @property
    def rt_utilization(self) -> float:
        return sum(t.utilization for t in self.rt_tasks)

    @property
    def security_utilization_des(self) -> float:
        return sum(t.utilization_des for t in self.security_tasks)

    @property
    def total_utilization(self) -> float:
        """Total achieved utilisation (security counted at desired rate)."""
        return self.rt_utilization + self.security_utilization_des


def _split_utilization(
    total: float,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Randfixedsum split of ``total`` across ``count`` tasks, floored so
    every share is strictly positive and capped at full-core load."""
    if count == 0:
        return np.zeros(0)
    total = min(total, count * 1.0)
    utils = randfixedsum(count, total, 1, rng, low=0.0, high=1.0)[0]
    return np.maximum(utils, _MIN_TASK_UTIL)


def generate_workload(
    platform: Platform | int,
    total_utilization: float,
    rng: np.random.Generator | int | None = None,
    config: SyntheticConfig | None = None,
) -> SyntheticWorkload:
    """Generate one synthetic task set per the paper's recipe.

    Parameters
    ----------
    platform:
        The platform (or a plain core count ``M``).
    total_utilization:
        Target combined utilisation (real-time + security-at-desired-rate);
        must lie in ``(0, M]``.
    rng:
        Numpy generator, an integer seed, or ``None`` for a fresh
        generator.
    config:
        Generation knobs; defaults to the paper's parameters.
    """
    if isinstance(platform, int):
        platform = Platform(platform)
    if config is None:
        config = SyntheticConfig()
    if isinstance(rng, int) or rng is None:
        rng = np.random.default_rng(rng)
    m = platform.num_cores
    if not (0.0 < total_utilization <= m + 1e-9):
        raise ValidationError(
            f"total utilisation {total_utilization} outside (0, {m}]"
        )

    frac = config.security_utilization_fraction
    rt_util = total_utilization / (1.0 + frac)
    sec_util = total_utilization - rt_util

    if config.rt_task_count is not None:
        nr_lo, nr_hi = config.rt_task_count
    else:
        nr_lo = config.rt_tasks_per_core[0] * m
        nr_hi = config.rt_tasks_per_core[1] * m
    if config.security_task_count is not None:
        ns_lo, ns_hi = config.security_task_count
    else:
        ns_lo = config.security_tasks_per_core[0] * m
        ns_hi = config.security_tasks_per_core[1] * m
    nr = int(rng.integers(nr_lo, nr_hi + 1))
    ns = int(rng.integers(ns_lo, ns_hi + 1))

    rt_utils = _split_utilization(rt_util, nr, rng)
    rt_periods = sample_periods(
        nr,
        *config.rt_period_range,
        rng=rng,
        distribution=config.period_distribution,
        granularity=config.period_granularity,
    )
    rt_tasks = TaskSet(
        RealTimeTask(
            name=f"rt{i:03d}",
            wcet=float(u * p),
            period=float(p),
        )
        for i, (u, p) in enumerate(zip(rt_utils, rt_periods))
    )

    sec_utils = _split_utilization(sec_util, ns, rng)
    sec_periods = sample_periods(
        ns,
        *config.security_period_des_range,
        rng=rng,
        distribution=config.period_distribution,
        granularity=config.period_granularity,
    )
    security_tasks = TaskSet(
        SecurityTask(
            name=f"sec{i:03d}",
            wcet=float(u * p),
            period_des=float(p),
            period_max=float(p * config.period_max_factor),
        )
        for i, (u, p) in enumerate(zip(sec_utils, sec_periods))
    )

    return SyntheticWorkload(
        platform=platform,
        rt_tasks=rt_tasks,
        security_tasks=security_tasks,
        target_utilization=total_utilization,
        config=config,
    )


def utilization_sweep(
    platform: Platform | int,
    step_fraction: float = 0.025,
    start_fraction: float = 0.025,
    stop_fraction: float = 0.975,
) -> Iterator[float]:
    """The paper's utilisation grid: ``0.025M, 0.05M, …, 0.975M``.

    Yields absolute utilisation values for the given platform.
    """
    m = platform.num_cores if isinstance(platform, Platform) else platform
    if not (0.0 < start_fraction <= stop_fraction <= 1.0):
        raise ValidationError("invalid sweep fractions")
    steps = int(round((stop_fraction - start_fraction) / step_fraction)) + 1
    for k in range(steps):
        yield (start_fraction + k * step_fraction) * m
