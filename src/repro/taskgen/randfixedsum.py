"""Stafford's Randfixedsum algorithm.

The paper's synthetic experiments generate per-task utilisations "from an
unbiased set of utilization values using the Randfixedsum algorithm"
[Emberson, Stafford & Davis, WATERS 2010].  Randfixedsum draws vectors
uniformly at random from the simplex slice

    { x ∈ [0, 1]^n : Σ x_i = u },

i.e. every admissible utilisation split is equally likely — unlike the
naive normalise-uniforms approach, which biases towards balanced splits.
This is a from-scratch implementation of J. Stafford's dynamic-
programming construction (the same algorithm Emberson's ``taskgen``
tool uses), extended with an affine transform for general per-component
bounds ``[lo, hi]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["randfixedsum", "randfixedsum_batch"]


def _randfixedsum_unit(
    n: int, u: float, nsets: int, rng: np.random.Generator
) -> np.ndarray:
    """Stafford's algorithm on the unit box: ``nsets`` vectors in
    ``[0,1]^n`` each summing to ``u`` (requires ``0 ≤ u ≤ n``)."""
    if n == 1:
        return np.full((nsets, 1), u)

    # The simplex slice decomposes into simplices indexed by how many
    # coordinates exceed their "integer shelf"; w accumulates their
    # (scaled) volumes, t the transition probabilities between shelves.
    k = min(int(u), n - 1)
    s = float(u)
    s1 = s - np.arange(k, k - n, -1.0)
    s2 = np.arange(k + n, k, -1.0) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max

    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[:i] / float(i)
        tmp2 = w[i - 2, 0:i] * s2[n - i : n] / float(i)
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[:i]
        t[i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1.0 - tmp1 / tmp3) * (~tmp4)

    x = np.zeros((n, nsets))
    rt = rng.uniform(size=(n - 1, nsets))  # simplex-type decisions
    rs = rng.uniform(size=(n - 1, nsets))  # position inside the simplex
    sums = np.full(nsets, s)
    j = np.full(nsets, k + 1, dtype=int)
    sm = np.zeros(nsets)
    pr = np.ones(nsets)

    for i in range(n - 1, 0, -1):
        e = (rt[n - i - 1, :] <= t[i - 1, j - 1]).astype(float)
        sx = rs[n - i - 1, :] ** (1.0 / i)
        sm = sm + (1.0 - sx) * pr * sums / (i + 1)
        pr = sx * pr
        x[n - i - 1, :] = sm + pr * e
        sums = sums - e
        j = (j - e).astype(int)
    x[n - 1, :] = sm + pr * sums

    # The recursion filled dimensions in a fixed order; permute each
    # sample so every coordinate is exchangeable.
    for col in range(nsets):
        x[:, col] = x[rng.permutation(n), col]
    return x.T


def _randfixedsum_unit_batch(
    n: int, us: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Stafford's algorithm vectorised across a batch of *different*
    sums: one vector in ``[0,1]^n`` per entry of ``us``.

    The scalar kernel's cost is dominated by the ``O(n²)`` table build,
    which depends on the sum — so grouping identical ``(n, u)`` pairs
    batches almost nothing on a utilisation sweep where every point has
    its own target.  Here the tables of all ``B`` sums are built
    together (``w``/``t`` gain a leading batch axis; the recursion
    stays ``O(n)`` python steps with ``O(B·n)`` work each), and the
    per-sample shuffle is one :meth:`~numpy.random.Generator.permuted`
    call.  Consumes the stream differently from the scalar kernel, but
    deterministically for a given stream.
    """
    us = np.asarray(us, dtype=float)
    if n == 1:
        return us[:, None].copy()
    batch = us.shape[0]
    k = np.minimum(np.floor(us).astype(int), n - 1)
    ar = np.arange(n, dtype=float)
    s1 = us[:, None] - (k[:, None] - ar)
    s2 = (k[:, None] + n - ar) - us[:, None]

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max

    w = np.zeros((batch, n, n + 1))
    w[:, 0, 1] = huge
    t = np.zeros((batch, n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[:, i - 2, 1 : i + 1] * s1[:, :i] / float(i)
        tmp2 = w[:, i - 2, 0:i] * s2[:, n - i : n] / float(i)
        w[:, i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[:, i - 1, 1 : i + 1] + tiny
        tmp4 = s2[:, n - i : n] > s1[:, :i]
        t[:, i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1.0 - tmp1 / tmp3) * (
            ~tmp4
        )

    x = np.zeros((batch, n))
    rt = rng.uniform(size=(n - 1, batch))  # simplex-type decisions
    rs = rng.uniform(size=(n - 1, batch))  # position inside the simplex
    rows = np.arange(batch)
    sums = us.copy()
    j = k + 1
    sm = np.zeros(batch)
    pr = np.ones(batch)

    for i in range(n - 1, 0, -1):
        e = (rt[n - i - 1] <= t[rows, i - 1, j - 1]).astype(float)
        sx = rs[n - i - 1] ** (1.0 / i)
        sm = sm + (1.0 - sx) * pr * sums / (i + 1)
        pr = sx * pr
        x[:, n - i - 1] = sm + pr * e
        sums = sums - e
        j = (j - e).astype(int)
    x[:, n - 1] = sm + pr * sums

    # One vectorised independent shuffle per row, for exchangeability.
    return rng.permuted(x, axis=1)


def randfixedsum_batch(
    n: int,
    totals: np.ndarray,
    rng: np.random.Generator | None = None,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """Draw one vector per entry of ``totals`` from the corresponding
    simplex slices ``{x ∈ [low, high]^n : Σ x = totals[b]}``.

    The batch counterpart of :func:`randfixedsum` for callers that
    need many vectors at *different* sums (a whole utilisation sweep at
    once): one vectorised table build serves the entire batch.  Same
    distribution per row as the scalar kernel, but a different stream
    consumption — the two are individually deterministic, not
    byte-interchangeable.

    Returns an array of shape ``(len(totals), n)``.
    """
    totals = np.asarray(totals, dtype=float)
    if n < 1:
        raise ValidationError(f"n must be ≥ 1, got {n}")
    if totals.ndim != 1 or totals.shape[0] < 1:
        raise ValidationError(
            f"totals must be a non-empty 1-d array, got shape "
            f"{totals.shape}"
        )
    if high <= low:
        raise ValidationError(f"need low < high, got [{low}, {high}]")
    bad = (totals < n * low - 1e-12) | (totals > n * high + 1e-12)
    if bad.any():
        offender = float(totals[bad][0])
        raise ValidationError(
            f"sum {offender} unreachable with {n} components in "
            f"[{low}, {high}]"
        )
    if rng is None:
        rng = np.random.default_rng()
    span = high - low
    unit_totals = np.clip((totals - n * low) / span, 0.0, float(n))
    unit = _randfixedsum_unit_batch(n, unit_totals, rng)
    return low + unit * span


def randfixedsum(
    n: int,
    total: float,
    nsets: int = 1,
    rng: np.random.Generator | None = None,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """Draw ``nsets`` vectors uniformly from
    ``{x ∈ [low, high]^n : Σ x = total}``.

    Parameters
    ----------
    n:
        Number of components per vector.
    total:
        Required sum; must satisfy ``n·low ≤ total ≤ n·high``.
    nsets:
        Number of independent vectors to draw.
    rng:
        Numpy random generator (a fresh default one when omitted).
    low, high:
        Per-component bounds.

    Returns
    -------
    Array of shape ``(nsets, n)``; each row sums to ``total`` (to
    floating-point accuracy) with all entries inside ``[low, high]``.
    """
    if n < 1:
        raise ValidationError(f"n must be ≥ 1, got {n}")
    if nsets < 1:
        raise ValidationError(f"nsets must be ≥ 1, got {nsets}")
    if high <= low:
        raise ValidationError(f"need low < high, got [{low}, {high}]")
    if not (n * low - 1e-12 <= total <= n * high + 1e-12):
        raise ValidationError(
            f"sum {total} unreachable with {n} components in "
            f"[{low}, {high}]"
        )
    if rng is None:
        rng = np.random.default_rng()
    span = high - low
    unit_total = (total - n * low) / span
    unit_total = min(max(unit_total, 0.0), float(n))
    unit = _randfixedsum_unit(n, unit_total, nsets, rng)
    return low + unit * span
