"""The UAV control-system case study (paper Sec. IV-A).

The paper takes its real-time workload from an automated-flight-control
study [18, Atdelzater et al., IEEE TC 2000]: Guidance (reference
trajectory selection), Slow/Fast navigation (sensor reads at two update
rates), Controller (closed-loop control), Missile control and
Reconnaissance (data collection/transmission).  The paper cites but does
not reprint the parameter table, so this module provides a documented
representative parameterisation (DESIGN §5):

* the classic flight-control rate hierarchy — fast inner loops (20 ms)
  through slow mission-level tasks (1000 ms);
* total utilisation ≈ 0.58, high enough that allocation choices matter
  yet low enough that the whole set fits one core (required for the
  SingleCore baseline on a 2-core platform, as in the paper's Fig. 1).

All values are constants below — swap in the original table if it is
available and every experiment continues to work unchanged.
"""

from __future__ import annotations

from repro.model.task import RealTimeTask, TaskSet

__all__ = ["uav_rt_tasks", "UAV_TASK_TABLE"]

#: name → (wcet ms, period ms); representative, see module docstring.
UAV_TASK_TABLE: dict[str, tuple[float, float]] = {
    "fast_navigation": (2.0, 20.0),
    "controller": (5.0, 50.0),
    "slow_navigation": (10.0, 100.0),
    "guidance": (25.0, 250.0),
    "missile_control": (40.0, 500.0),
    "reconnaissance": (100.0, 1000.0),
}


def uav_rt_tasks(scale: float = 1.0) -> TaskSet:
    """The six UAV real-time tasks.

    Parameters
    ----------
    scale:
        Multiplies every WCET; lets experiments stress the platform
        (``scale > 1``) or relax it without touching the rate structure.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return TaskSet(
        RealTimeTask(name=name, wcet=wcet * scale, period=period)
        for name, (wcet, period) in UAV_TASK_TABLE.items()
    )
