"""Period generation policies for synthetic workloads.

The paper bounds real-time periods to ``[10, 1000]`` ms and security
desired periods to ``[1000, 3000]`` ms without naming a distribution;
its companion literature ([22], [23]) samples periods log-uniformly so
that every order of magnitude is equally represented.  Three policies
are provided — log-uniform (default), plain uniform, and harmonic
(power-of-two multiples of the lower bound, so every period divides
every longer one and hyperperiods stay tiny) — plus an optional
rounding grid so simulated hyperperiods stay manageable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["sample_periods"]


def sample_periods(
    n: int,
    low: float,
    high: float,
    rng: np.random.Generator,
    distribution: str = "log-uniform",
    granularity: float | None = None,
) -> np.ndarray:
    """Sample ``n`` periods from ``[low, high]``.

    Parameters
    ----------
    n:
        Number of periods to draw.
    low, high:
        Inclusive range; must be positive with ``low ≤ high``.
    rng:
        Numpy random generator.
    distribution:
        ``"log-uniform"`` (default), ``"uniform"``, or ``"harmonic"``
        (each period is ``low · 2^k`` for a uniformly drawn ``k`` with
        ``low · 2^k ≤ high``).
    granularity:
        When given, round each period *down* to the nearest positive
        multiple of this value (clamped to ``low``); keeps discrete-event
        simulations short by aligning releases.
    """
    if n < 0:
        raise ValidationError(f"n must be ≥ 0, got {n}")
    if low <= 0 or high < low:
        raise ValidationError(f"invalid period range [{low}, {high}]")
    if distribution == "log-uniform":
        values = np.exp(rng.uniform(np.log(low), np.log(high), size=n))
    elif distribution == "uniform":
        values = rng.uniform(low, high, size=n)
    elif distribution == "harmonic":
        k_max = int(np.floor(np.log2(high / low)))
        values = low * np.exp2(rng.integers(0, k_max + 1, size=n))
    else:
        raise ValidationError(
            f"unknown distribution {distribution!r}; expected "
            f"'log-uniform', 'uniform', or 'harmonic'"
        )
    if granularity is not None:
        if granularity <= 0:
            raise ValidationError(
                f"granularity must be positive, got {granularity}"
            )
        values = np.floor(values / granularity) * granularity
        values = np.clip(values, max(low, granularity), high)
    return values
