"""Sharded, append-only columnar result store (cache format v2).

The v1 :class:`~repro.experiments.cache.ResultCache` wrote **one JSON
file per sweep point**.  That is perfectly auditable but falls over at
paper scale: a 10⁴–10⁵-point design-space sweep turns every warm run
into 10⁵ ``open``/``stat`` calls and directory scans start dominating
the actual maths.  This store keeps the same *keys* (the engine's
:meth:`~repro.experiments.parallel.SweepSpec.key_payload` hashed by
:func:`cache_key` — entries are content-addressed exactly as before)
but packs the *values* into per-experiment shards::

    <root>/store.json              # format marker ({"format": 2})
    <root>/<kind>/data.jsonl       # append-only record log (primary)
    <root>/<kind>/index.jsonl      # append-only hash → (offset, length)
    <root>/<kind>/data.<w>.jsonl   # writer <w>'s segment (optional)
    <root>/<kind>/index.<w>.jsonl  # writer <w>'s segment index

Each ``data.jsonl`` record is the canonical JSON
``{"key": <key payload>, "payload": <result>}`` on one line — the
stored key keeps entries auditable and guards against hash collisions,
exactly like v1.  ``index.jsonl`` holds one compact line per record
(``{"h": sha256, "o": offset, "n": length}``); loading a shard reads
only the index, and :meth:`ResultStore.get_many` then serves any
subset of a sweep with one file handle and ``seek``/``read`` pairs.

Crash safety comes from append ordering rather than atomic renames: a
record's index line is written only after its data line, so a killed
run can leave at most a torn *trailing* line in either file — torn
data is unreferenced, torn index lines are skipped on load, and a
missing or stale index is rebuilt by scanning the data log.

Appending is still single-writer — but *per file pair*, not per root.
A process that may share the root with other live writers (the job
service next to a CLI run, several CLI runs against one network
mount) opens the store with a ``writer_id`` and appends to its own
*segment* (``data.<writer>.jsonl``/``index.<writer>.jsonl``) instead
of the primary log; no two well-behaved writers ever append to the
same file, so concurrent runs cannot interleave or tear each other's
records.  Reads always merge the primary log with every segment —
entries are content-addressed, so merge order is irrelevant — and
``repro-hydra cache gc`` folds segments back into the primary log
(deduplicating by digest) and deletes them.  Readers are unrestricted
throughout.

Migration from v1 is automatic and one-shot: opening a root that has
no format marker ingests any ``<kind>/<sha256>.json`` entries into the
shards, deletes the v1 files, and writes the marker so the scan never
runs again.  ``repro-hydra cache stats|migrate|gc`` exposes the same
machinery on the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import CacheError, ValidationError

__all__ = [
    "CACHE_FORMAT",
    "STORE_FORMAT",
    "ExperimentStore",
    "ResultStore",
    "cache_key",
    "write_v1_entry",
]

#: Key-payload format version (part of every key payload).  Unchanged
#: from v1 — the *storage layout* changed, the keys did not, which is
#: what makes v1 entries migratable and golden runs byte-identical.
CACHE_FORMAT = 1

#: On-disk layout version of this module (the v1 layout never wrote a
#: marker, so its absence is what triggers migration).
STORE_FORMAT = 2

_MARKER_NAME = "store.json"
_DATA_NAME = "data.jsonl"
_INDEX_NAME = "index.jsonl"

#: v1 entry filenames were ``<sha256 hex>.json``.
_V1_STEM_LEN = 64
_HEX_DIGITS = set("0123456789abcdef")

#: A ``*.tmp`` atomic-write temporary older than this is an orphan
#: from a crashed writer and safe to reap; anything younger may be
#: another live process's in-flight write (the serve process and the
#: CLI deliberately share one cache dir).
_TMP_STALE_SECONDS = 60.0 * 60.0


def _canonical(payload: Any) -> str:
    """Canonical JSON (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(payload: Mapping[str, Any]) -> str:
    """Content hash of a key payload: sha256 over its canonical JSON."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def _is_v1_entry(path: Path) -> bool:
    stem = path.stem
    return (
        path.suffix == ".json"
        and len(stem) == _V1_STEM_LEN
        and set(stem) <= _HEX_DIGITS
    )


class _Segment:
    """One append-only data/index file pair plus its in-memory index.

    A shard's *primary* segment is ``data.jsonl``/``index.jsonl``;
    writer segments are ``data.<writer>.jsonl``/``index.<writer>.
    jsonl``.  Every append-ordering crash-safety invariant lives at
    this level — a segment is exactly what the whole shard used to be
    before multi-writer support."""

    def __init__(
        self,
        directory: Path,
        data_path: Path,
        index_path: Path,
        readonly: bool = False,
    ) -> None:
        self.directory = directory
        self.readonly = readonly
        self.data_path = data_path
        self.index_path = index_path
        self._index: dict[str, tuple[int, int]] | None = None

    # -- index ---------------------------------------------------------

    @property
    def index(self) -> dict[str, tuple[int, int]]:
        if self._index is None:
            self._index = self._load_index()
        return self._index

    def _data_size(self) -> int:
        try:
            return self.data_path.stat().st_size
        except OSError:
            return 0

    def _tmp_path(self, target: Path) -> Path:
        """The atomic-write temporary for ``target``, unique per
        process — concurrent writers sharing one cache dir (the serve
        process plus a CLI run) must never clobber each other's
        in-flight temporary."""
        return target.with_suffix(f".jsonl.{os.getpid()}.tmp")

    def _clean_stale_tmp(self) -> None:
        """Remove *stale* orphaned atomic-write temporaries.

        :meth:`_write_index` and :meth:`compact` write a pid-suffixed
        ``*.tmp`` and then ``os.replace`` it into place; a crash
        between the two strands the temporary forever (the replace
        never happens again under that name).  Only temporaries older
        than :data:`_TMP_STALE_SECONDS` are reaped — a younger one may
        belong to another live process mid-write, and deleting it
        would make that process's ``os.replace`` fail.  Readonly
        handles skip the cleanup entirely — a readonly store performs
        no writes of any kind.
        """
        if self.readonly:
            return
        cutoff = time.time() - _TMP_STALE_SECONDS
        try:
            candidates = list(self.directory.glob("*.tmp"))
        except OSError:
            return
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
            except OSError:
                pass  # e.g. an unwritable directory: harmless leftover

    def _load_index(self) -> dict[str, tuple[int, int]]:
        self._clean_stale_tmp()
        data_size = self._data_size()
        if data_size == 0:
            return {}
        if not self.index_path.exists():
            return self._rebuild_index()
        index: dict[str, tuple[int, int]] = {}
        damaged = False
        try:
            lines = self.index_path.read_bytes().splitlines()
        except OSError:
            return self._rebuild_index()
        for line in lines:
            try:
                entry = json.loads(line)
                digest = entry["h"]
                offset, length = int(entry["o"]), int(entry["n"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Torn trailing line from a killed run: the record it
                # pointed at (if complete) is recovered by a rebuild.
                damaged = True
                continue
            if offset < 0 or length <= 0 or offset + length > data_size:
                damaged = True
                continue
            index[digest] = (offset, length)
        # The index must also *cover* the data log: a crash between a
        # batch's data flush and its index append leaves well-formed
        # index lines that simply stop short, and the orphaned records
        # would otherwise be invisible (and gc would drop them).  The
        # +1 accounts for each record's trailing newline.
        covered = max(
            (offset + length + 1 for offset, length in index.values()),
            default=0,
        )
        if damaged or covered < data_size:
            return self._rebuild_index()
        return index

    def _rebuild_index(self) -> dict[str, tuple[int, int]]:
        """Re-derive the index by scanning the data log (recovers from
        a lost, torn, or stale ``index.jsonl``).

        The rebuilt index is persisted *best-effort* and never from a
        readonly handle: rebuilding happens on read paths (``get``,
        ``stats``), which must stay pure reads — writing from a
        readonly store is a write-on-read bug, and fails outright on a
        read-only filesystem.  A writable store whose directory turns
        out to be unwritable keeps the rebuilt index in memory; the
        next successful writer persists it.
        """
        index: dict[str, tuple[int, int]] = {}
        if not self.data_path.exists():
            return index
        offset = 0
        with self.data_path.open("rb") as handle:
            for line in handle:
                length = len(line)
                record_len = len(line.rstrip(b"\n"))
                if line.endswith(b"\n") and record_len > 0:
                    try:
                        record = json.loads(line)
                        index[cache_key(record["key"])] = (
                            offset, record_len,
                        )
                    except (json.JSONDecodeError, KeyError, TypeError):
                        pass  # torn or foreign line: unreferenced
                offset += length
        if not self.readonly:
            try:
                self._write_index(index)
            except OSError:
                pass  # read paths must not fail on an unwritable dir
        return index

    def _write_index(self, index: Mapping[str, tuple[int, int]]) -> None:
        tmp = self._tmp_path(self.index_path)
        with tmp.open("w") as handle:
            for digest, (offset, length) in index.items():
                handle.write(
                    _canonical({"h": digest, "o": offset, "n": length})
                    + "\n"
                )
        os.replace(tmp, self.index_path)

    # -- access ----------------------------------------------------------

    def get_many(
        self, requests: Sequence[tuple[str, Mapping[str, Any]]]
    ) -> list[dict[str, Any] | None]:
        """Payloads for ``(digest, key_payload)`` requests (``None`` per
        miss).  One file handle serves the whole batch."""
        results: list[dict[str, Any] | None] = [None] * len(requests)
        index = self.index
        located = [
            (i, digest, key_payload, index[digest])
            for i, (digest, key_payload) in enumerate(requests)
            if digest in index
        ]
        if not located:
            return results
        with self.data_path.open("rb") as handle:
            # Read in offset order: sequential I/O even when the sweep
            # interleaves cached and missing points.
            for i, digest, key_payload, (offset, length) in sorted(
                located, key=lambda item: item[3]
            ):
                handle.seek(offset)
                raw = handle.read(length)
                try:
                    record = json.loads(raw)
                except json.JSONDecodeError:
                    continue  # corrupt region: a miss, recomputed
                if (
                    not isinstance(record, dict)
                    or "payload" not in record
                    # sha256 collision or hand-edited log: recompute.
                    or record.get("key") != json.loads(
                        _canonical(key_payload)
                    )
                ):
                    continue
                results[i] = record["payload"]
        return results

    def append_many(
        self,
        entries: Sequence[tuple[str, Mapping[str, Any], Mapping[str, Any]]],
    ) -> None:
        """Append ``(digest, key_payload, payload)`` records.  Data
        lines land (and are flushed) before their index lines, so a
        crash never leaves the index pointing at torn data."""
        if not entries:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        index = self.index
        positions: list[tuple[str, int, int]] = []
        repair = b""
        if self._data_size() > 0:
            # A torn tail (killed mid-write) must not concatenate with
            # the next record into one unparsable line — terminate it
            # so the line-based index rebuild keeps both readable.
            with self.data_path.open("rb") as handle:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    repair = b"\n"
        with self.data_path.open("ab") as handle:
            if repair:
                handle.write(repair)
            for digest, key_payload, payload in entries:
                line = _canonical(
                    {
                        "key": json.loads(_canonical(key_payload)),
                        "payload": payload,
                    }
                ).encode() + b"\n"
                offset = handle.tell()
                handle.write(line)
                positions.append((digest, offset, len(line) - 1))
            handle.flush()
        with self.index_path.open("ab") as handle:
            for digest, offset, length in positions:
                handle.write(
                    _canonical({"h": digest, "o": offset, "n": length})
                    .encode() + b"\n"
                )
                index[digest] = (offset, length)

    # -- maintenance -------------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Rewrite the log keeping only the live (indexed) records:
        drops superseded duplicates and torn tails.  Returns counts."""
        index = self.index
        old_bytes = self._data_size() + (
            self.index_path.stat().st_size
            if self.index_path.exists() else 0
        )
        records: list[tuple[str, bytes]] = []
        with self.data_path.open("rb") as handle:
            for digest, (offset, length) in index.items():
                handle.seek(offset)
                raw = handle.read(length)
                try:
                    json.loads(raw)
                except json.JSONDecodeError:
                    continue
                records.append((digest, raw))
        tmp = self._tmp_path(self.data_path)
        new_index: dict[str, tuple[int, int]] = {}
        offset = 0
        with tmp.open("wb") as handle:
            for digest, raw in records:
                handle.write(raw + b"\n")
                new_index[digest] = (offset, len(raw))
                offset += len(raw) + 1
        os.replace(tmp, self.data_path)
        self._write_index(new_index)
        self._index = new_index
        new_bytes = self._data_size() + self.index_path.stat().st_size
        return {
            "entries": len(new_index),
            "reclaimed_bytes": max(0, old_bytes - new_bytes),
        }

    def clear(self) -> int:
        removed = len(self.index)
        for path in (self.data_path, self.index_path):
            try:
                path.unlink()
            except OSError:
                pass
        self._index = {}
        return removed


_WRITER_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
)


def _valid_writer_id(writer_id: str) -> bool:
    """Writer ids become filename infixes (``data.<writer>.jsonl``),
    so they must be non-empty and dot/slash-free."""
    return bool(writer_id) and set(writer_id) <= _WRITER_ID_CHARS


class _Shard:
    """One experiment kind's record logs, merged into a single key
    space.

    A shard is a primary segment plus zero or more per-writer
    segments.  Appends go to exactly one segment — the primary when
    the store has no ``writer_id``, that writer's own file pair
    otherwise — while reads merge all of them (content addressing
    makes the merge order irrelevant: two segments holding the same
    digest hold the same record).  :meth:`merge_segments` (run by
    ``cache gc``) folds the writer segments back into the primary
    log and deletes them."""

    def __init__(
        self,
        directory: Path,
        readonly: bool = False,
        writer_id: str | None = None,
    ) -> None:
        self.directory = directory
        self.readonly = readonly
        self.writer_id = writer_id
        self._segments: dict[str | None, _Segment] = {}

    def _segment(self, writer: str | None) -> _Segment:
        if writer not in self._segments:
            if writer is None:
                data = self.directory / _DATA_NAME
                index = self.directory / _INDEX_NAME
            else:
                data = self.directory / f"data.{writer}.jsonl"
                index = self.directory / f"index.{writer}.jsonl"
            self._segments[writer] = _Segment(
                self.directory, data, index, readonly=self.readonly
            )
        return self._segments[writer]

    @property
    def _write_segment(self) -> _Segment:
        return self._segment(self.writer_id)

    @property
    def index(self) -> dict[str, tuple[int, int]]:
        """The write segment's live index (compat surface: the
        single-writer shard exposed exactly this)."""
        return self._write_segment.index

    @property
    def data_path(self) -> Path:
        """The write segment's data log (compat surface)."""
        return self._write_segment.data_path

    def writer_ids(self) -> list[str]:
        """Writer segments present on disk or opened in memory."""
        ids = {writer for writer in self._segments if writer is not None}
        try:
            for path in self.directory.glob("data.*.jsonl"):
                writer = path.name[len("data.") : -len(".jsonl")]
                if _valid_writer_id(writer):
                    ids.add(writer)
        except OSError:
            pass
        return sorted(ids)

    def segments(self) -> list[_Segment]:
        """Primary first, then writer segments in sorted-id order."""
        return [self._segment(None)] + [
            self._segment(writer) for writer in self.writer_ids()
        ]

    def has_data(self) -> bool:
        return any(seg.data_path.exists() for seg in self.segments())

    def distinct_count(self) -> int:
        """Distinct digests across all segments (duplicates across
        writers are one logical entry)."""
        digests: set[str] = set()
        for seg in self.segments():
            digests.update(seg.index)
        return len(digests)

    def data_size(self) -> int:
        return sum(seg._data_size() for seg in self.segments())

    def get_many(
        self, requests: Sequence[tuple[str, Mapping[str, Any]]]
    ) -> list[dict[str, Any] | None]:
        """Merged lookup: each segment serves the keys the previous
        ones missed."""
        results: list[dict[str, Any] | None] = [None] * len(requests)
        for seg in self.segments():
            pending = [i for i, found in enumerate(results) if found is None]
            if not pending:
                break
            if not seg.data_path.exists():
                continue
            found = seg.get_many([requests[i] for i in pending])
            for i, payload in zip(pending, found):
                if payload is not None:
                    results[i] = payload
        return results

    def append_many(
        self,
        entries: Sequence[tuple[str, Mapping[str, Any], Mapping[str, Any]]],
    ) -> None:
        self._write_segment.append_many(entries)

    # -- maintenance -------------------------------------------------------

    def merge_segments(self) -> dict[str, int]:
        """Fold every writer segment into the primary log and delete
        the segment files.

        Records whose digest the primary (or an earlier segment)
        already holds are dropped — content addressing guarantees they
        are byte-identical payloads, so deduplication loses nothing.
        Crash-tolerant by the same append ordering as any write: a
        kill mid-merge leaves the copied records live in the primary
        and the not-yet-deleted segment still intact; the next gc
        simply dedupes them again."""
        primary = self._segment(None)
        merged_entries = 0
        writers = self.writer_ids()
        for writer in writers:
            seg = self._segment(writer)
            records: list[
                tuple[str, Mapping[str, Any], Mapping[str, Any]]
            ] = []
            if seg.index and seg.data_path.exists():
                with seg.data_path.open("rb") as handle:
                    for digest, (offset, length) in seg.index.items():
                        if digest in primary.index:
                            continue
                        handle.seek(offset)
                        raw = handle.read(length)
                        try:
                            record = json.loads(raw)
                        except json.JSONDecodeError:
                            continue  # corrupt region: nothing to keep
                        if (
                            not isinstance(record, dict)
                            or "key" not in record
                            or "payload" not in record
                        ):
                            continue
                        records.append(
                            (digest, record["key"], record["payload"])
                        )
            if records:
                primary.append_many(records)
                merged_entries += len(records)
            seg.clear()
            self._segments.pop(writer, None)
        return {
            "merged_segments": len(writers),
            "merged_entries": merged_entries,
        }

    def compact(self) -> dict[str, int]:
        """Merge writer segments into the primary, then compact it."""
        summary = self.merge_segments()
        summary.update(self._segment(None).compact())
        return summary

    def clear(self) -> int:
        removed = self.distinct_count()
        for seg in self.segments():
            seg.clear()
        self._segments = {}
        return removed


class ResultStore:
    """Directory-backed, sharded store of per-point sweep results.

    Drop-in successor of the v1 ``ResultCache``: same constructor, same
    ``get``/``put``/``hits``/``misses``/``clear`` surface, same content
    hashing — plus the batched :meth:`get_many`/:meth:`put_many` the
    engine uses and the :meth:`migrate`/:meth:`gc`/:meth:`stats`
    maintenance verbs behind ``repro-hydra cache``.

    Parameters
    ----------
    directory:
        Store root; created immediately.  An unusable location raises
        :class:`repro.errors.CacheError` before any point computes.
    migrate:
        Ingest a pre-existing v1 layout on open (default).  Pass
        ``False`` to open without triggering the one-shot migration.
    readonly:
        Open for inspection only (``cache stats`` and the job
        service's result-fetch path do): nothing is created or
        written — no root mkdir, no migration, no stale-tmp cleanup,
        and writes raise :class:`CacheError`.  A missing root reads as
        an empty store.  Readonly stores **never persist rebuilt
        indexes**: a missing or stale ``index.jsonl`` is rebuilt
        in-memory only, so reads work even from a read-only
        filesystem (e.g. a ``chmod 0555`` cache directory).
    writer_id:
        Append to a private per-writer segment
        (``data.<writer_id>.jsonl``) instead of the primary log.
        Pass one whenever another live process may write the same
        root concurrently — each process picks a distinct id (the job
        service uses ``serve<pid>``) and their appends can never
        interleave.  Reads are unaffected (every handle merges all
        segments), and ``gc`` later folds segments back into the
        primary log.  Must be non-empty ``[A-Za-z0-9_-]`` and is
        incompatible with ``readonly``.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        migrate: bool = True,
        readonly: bool = False,
        writer_id: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.readonly = readonly
        if writer_id is not None:
            if readonly:
                raise ValidationError(
                    "writer_id is meaningless on a readonly store"
                )
            if not _valid_writer_id(writer_id):
                raise ValidationError(
                    f"invalid writer_id {writer_id!r}: need non-empty "
                    f"[A-Za-z0-9_-]"
                )
        self.writer_id = writer_id
        if not readonly:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise CacheError(
                    f"cache root {str(self.directory)!r} is unusable: {exc}"
                ) from exc
        self.hits = 0
        self.misses = 0
        self._shards: dict[str, _Shard] = {}
        self._check_marker()
        if migrate and not readonly and not self._marker_path.exists():
            self.migrate()

    # -- format marker ---------------------------------------------------

    @property
    def _marker_path(self) -> Path:
        return self.directory / _MARKER_NAME

    def _check_marker(self) -> None:
        if not self._marker_path.exists():
            return
        try:
            marker = json.loads(self._marker_path.read_text())
            fmt = int(marker["format"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise CacheError(
                f"{self._marker_path} is not a valid store marker: {exc}"
            ) from None
        if fmt != STORE_FORMAT:
            raise CacheError(
                f"{self.directory} holds store format {fmt}; this build "
                f"reads format {STORE_FORMAT}"
            )

    def _write_marker(self) -> None:
        try:
            self._marker_path.write_text(
                json.dumps({"format": STORE_FORMAT}) + "\n"
            )
        except OSError as exc:
            raise CacheError(
                f"cache root {str(self.directory)!r} is unusable: {exc}"
            ) from exc

    # -- shards ----------------------------------------------------------

    def _shard(self, kind: str) -> _Shard:
        if kind not in self._shards:
            if not kind or "/" in kind or kind.startswith("."):
                raise ValidationError(f"invalid experiment kind {kind!r}")
            self._shards[kind] = _Shard(
                self.directory / kind,
                readonly=self.readonly,
                writer_id=self.writer_id,
            )
        return self._shards[kind]

    def _require_writable(self, action: str) -> None:
        if self.readonly:
            raise CacheError(
                f"store {str(self.directory)!r} was opened read-only; "
                f"cannot {action}"
            )

    def _shard_kinds(self) -> list[str]:
        kinds = set(self._shards)
        if self.directory.is_dir():
            for child in self.directory.iterdir():
                if child.is_dir() and (
                    (child / _DATA_NAME).exists()
                    # A kind dir holding only writer segments (its
                    # primary log never materialised) is still a shard.
                    or any(child.glob("data.*.jsonl"))
                ):
                    kinds.add(child.name)
        return sorted(kinds)

    # -- access ------------------------------------------------------------

    def get(
        self, kind: str, key_payload: Mapping[str, Any]
    ) -> dict[str, Any] | None:
        """Stored result for ``key_payload``, or ``None`` on a miss."""
        return self.get_many(kind, [key_payload])[0]

    def get_many(
        self, kind: str, key_payloads: Sequence[Mapping[str, Any]]
    ) -> list[dict[str, Any] | None]:
        """Batched :meth:`get`: one result (or ``None``) per key, in
        order, served from a single pass over the shard."""
        if not key_payloads:
            return []
        shard = self._shard(kind)
        if not shard.has_data():
            self.misses += len(key_payloads)
            return [None] * len(key_payloads)
        results = shard.get_many(
            [(cache_key(k), k) for k in key_payloads]
        )
        found = sum(1 for r in results if r is not None)
        self.hits += found
        self.misses += len(results) - found
        return results

    def put(
        self,
        kind: str,
        key_payload: Mapping[str, Any],
        payload: Mapping[str, Any],
    ) -> None:
        """Persist one ``payload`` under ``key_payload``."""
        self.put_many(kind, [(key_payload, payload)])

    def put_many(
        self,
        kind: str,
        entries: Iterable[
            tuple[Mapping[str, Any], Mapping[str, Any]]
        ],
    ) -> int:
        """Batched :meth:`put`; returns the number of records written.
        The whole batch is appended through one file handle."""
        batch = [
            (cache_key(key_payload), key_payload, payload)
            for key_payload, payload in entries
        ]
        if not batch:
            return 0
        self._require_writable("write entries")
        try:
            self._shard(kind).append_many(batch)
        except OSError as exc:
            raise CacheError(
                f"cannot write to cache shard "
                f"{str(self.directory / kind)!r}: {exc}"
            ) from exc
        return len(batch)

    # -- migration -----------------------------------------------------------

    def _v1_entries(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return [
            path
            for child in sorted(self.directory.iterdir())
            if child.is_dir()
            for path in sorted(child.glob("*.json"))
            if _is_v1_entry(path)
        ]

    def pending_v1_entries(self) -> int:
        """How many v1 JSON-per-point files await migration."""
        return len(self._v1_entries())

    def migrate(self) -> int:
        """Ingest every v1 entry into the shards, delete the v1 files,
        and stamp the format marker.  Idempotent; returns the number of
        entries migrated."""
        self._require_writable("migrate")
        migrated = 0
        by_kind: dict[str, list[tuple[Mapping, Mapping]]] = {}
        ingested: list[Path] = []
        for path in self._v1_entries():
            try:
                entry = json.loads(path.read_text())
                key_payload, payload = entry["key"], entry["payload"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue  # corrupt v1 entry: was a miss then, is now
            if not isinstance(key_payload, Mapping):
                continue
            by_kind.setdefault(path.parent.name, []).append(
                (key_payload, payload)
            )
            ingested.append(path)
        for kind, entries in by_kind.items():
            migrated += self.put_many(kind, entries)
        for path in ingested:
            try:
                path.unlink()
            except OSError:
                pass
        self._write_marker()
        return migrated

    # -- maintenance -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            self._shard(kind).distinct_count()
            for kind in self._shard_kinds()
        )

    def clear(self) -> int:
        """Delete every stored record; returns the number removed."""
        self._require_writable("clear")
        return sum(
            self._shard(kind).clear() for kind in self._shard_kinds()
        )

    def gc(self) -> dict[str, Any]:
        """Compact every shard: fold per-writer segments back into the
        primary log (deduplicating by digest), drop superseded
        duplicates, torn tails, and leftover empty shard directories.
        Returns a summary."""
        self._require_writable("gc")
        shards: dict[str, dict[str, int]] = {}
        reclaimed = 0
        for kind in self._shard_kinds():
            shard = self._shard(kind)
            if shard.distinct_count() == 0:
                shard.clear()
                try:
                    shard.directory.rmdir()
                except OSError:
                    pass
                continue
            summary = shard.compact()
            shards[kind] = summary
            reclaimed += summary["reclaimed_bytes"]
        return {
            "shards": shards,
            "entries": sum(s["entries"] for s in shards.values()),
            "reclaimed_bytes": reclaimed,
            "merged_segments": sum(
                s["merged_segments"] for s in shards.values()
            ),
            "merged_entries": sum(
                s["merged_entries"] for s in shards.values()
            ),
        }

    def stats(self) -> dict[str, Any]:
        """Shape and size of the store (``repro-hydra cache stats``).

        ``entries`` counts *distinct* digests (a record present in the
        primary log and in a writer segment is one logical entry);
        ``segment_files``/``segment_bytes`` total the per-writer
        segment data files awaiting a ``gc`` merge."""
        shards = {}
        segment_files = 0
        segment_bytes = 0
        for kind in self._shard_kinds():
            shard = self._shard(kind)
            segments = {}
            for writer in shard.writer_ids():
                seg = shard._segment(writer)
                if not seg.data_path.exists():
                    continue
                size = seg._data_size()
                segments[writer] = {
                    "entries": len(seg.index),
                    "data_bytes": size,
                }
                segment_files += 1
                segment_bytes += size
            shards[kind] = {
                "entries": shard.distinct_count(),
                "data_bytes": shard.data_size(),
                "segments": segments,
            }
        return {
            "directory": str(self.directory),
            "format": STORE_FORMAT,
            "migrated": self._marker_path.exists(),
            "entries": sum(s["entries"] for s in shards.values()),
            "data_bytes": sum(s["data_bytes"] for s in shards.values()),
            "pending_v1_entries": self.pending_v1_entries(),
            "segment_files": segment_files,
            "segment_bytes": segment_bytes,
            "shards": shards,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultStore({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: Forward-looking alias: the job/service layer talks about "the
#: experiment store"; the class predates that name.
ExperimentStore = ResultStore


# -- v1 compatibility ---------------------------------------------------------


def write_v1_entry(
    directory: str | Path,
    kind: str,
    key_payload: Mapping[str, Any],
    payload: Mapping[str, Any],
) -> Path:
    """Write one entry in the v1 JSON-per-point layout.

    Kept (in this module, not behind the deprecated wrapper) so the
    migration tests and CI fixtures can fabricate genuine v1 cache
    directories without resurrecting the old implementation.
    """
    root = Path(directory) / kind
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{cache_key(key_payload)}.json"
    entry = {
        "key": json.loads(_canonical(key_payload)),
        "payload": payload,
    }
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(entry, sort_keys=True))
    os.replace(tmp, path)
    return path
