"""Monitoring-quality sweep: tightness vs. utilisation (companion study).

Fig. 2 measures only *feasibility* (acceptance ratio).  The paper's
Fig. 1 narrative — "running security tasks in a single core leads to
higher periods and consequently poorer detection time" — implies a
second, quality dimension that the paper only samples through the UAV
case study.  This experiment quantifies it synthetically: for task sets
that **both** schemes accept, compare the mean tightness (η, directly
proportional to achievable monitoring frequency) that each achieves.

Expected shape: equal at very low utilisation (everything reaches
``T_des``); HYDRA increasingly ahead as load grows, until SingleCore
stops accepting anything at all (where Fig. 2 takes over the story).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiments.api import Experiment, RawRun
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_series, format_table
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, utilization_sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepEngine, SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = [
    "QualityPoint",
    "QualityResult",
    "QualityExperiment",
    "quality_sweep_spec",
    "run_quality",
    "format_quality",
]


def quality_sweep_spec(
    scale: ExperimentScale,
    cores: int = 8,
    config: SyntheticConfig | None = None,
) -> "SweepSpec":
    """The quality sweep as an acceptance sweep (shares Fig. 2's cache
    namespace; distinct seed offset keeps its streams independent)."""
    from repro.experiments.parallel import SweepSpec, synthetic_config_to_dict

    platform = Platform(cores)
    utils = utilization_sweep(
        platform,
        step_fraction=scale.utilization_step,
        start_fraction=scale.utilization_start,
        stop_fraction=scale.utilization_stop,
    )
    return SweepSpec(
        kind="acceptance",
        seed=scale.seed + 41,
        points=tuple({"utilization": u} for u in utils),
        params={
            "cores": cores,
            "tasksets_per_point": scale.tasksets_per_point,
            "config": (
                synthetic_config_to_dict(config) if config is not None
                else None
            ),
        },
    )


@dataclass(frozen=True)
class QualityPoint:
    """One utilisation point of the quality sweep."""

    cores: int
    utilization: float
    both_accepted: int
    tasksets: int
    mean_tightness_hydra: float
    mean_tightness_single: float

    @property
    def advantage(self) -> float:
        """HYDRA's mean-tightness advantage (absolute η difference)."""
        return self.mean_tightness_hydra - self.mean_tightness_single


@dataclass(frozen=True)
class QualityResult:
    points: tuple[QualityPoint, ...]
    scale: str
    cores: int


@register_experiment("quality")
class QualityExperiment(Experiment):
    """The monitoring-quality sweep on the unified experiment protocol.

    Defaults to 8 cores: the utilisation band where both schemes accept
    task sets but achieve different tightness is widest there (on 2
    cores SingleCore stops accepting anything almost as soon as the
    quality gap opens).
    """

    name = "quality"
    title = "Monitoring quality — tightness on commonly-accepted task sets"
    description = (
        "For task sets both schemes accept, compare the mean tightness "
        "(achievable monitoring frequency) HYDRA and SingleCore reach."
    )
    version = 1
    tags = ("companion",)
    order = 50
    columns = (
        "cores", "utilization", "both_accepted", "mean_tightness_hydra",
        "mean_tightness_single",
    )

    def __init__(
        self, cores: int = 8, config: SyntheticConfig | None = None
    ) -> None:
        self.cores = cores
        self.config = config

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return [quality_sweep_spec(scale, cores=self.cores, config=self.config)]

    def aggregate_domain(self, raw: RawRun) -> QualityResult:
        from repro.experiments.parallel import acceptance_outcomes

        (result,) = raw.sweeps
        scale = raw.scale
        points: list[QualityPoint] = []
        for point, payload in zip(result.spec.points, result.payloads):
            utilization = float(point["utilization"])
            hydra_sum = single_sum = 0.0
            both = 0
            for outcome in acceptance_outcomes(payload):
                if outcome.hydra_schedulable and outcome.single_schedulable:
                    both += 1
                    hydra_sum += outcome.hydra.mean_tightness()
                    single_sum += outcome.single.mean_tightness()
            points.append(
                QualityPoint(
                    cores=self.cores,
                    utilization=utilization,
                    both_accepted=both,
                    tasksets=scale.tasksets_per_point,
                    mean_tightness_hydra=hydra_sum / both if both else 0.0,
                    mean_tightness_single=single_sum / both if both else 0.0,
                )
            )
        return QualityResult(
            points=tuple(points), scale=scale.name, cores=self.cores
        )

    def encode_data(self, domain: QualityResult) -> dict[str, Any]:
        return {
            "scale": domain.scale,
            "cores": domain.cores,
            "points": [
                {
                    "cores": p.cores,
                    "utilization": p.utilization,
                    "both_accepted": p.both_accepted,
                    "tasksets": p.tasksets,
                    "mean_tightness_hydra": p.mean_tightness_hydra,
                    "mean_tightness_single": p.mean_tightness_single,
                }
                for p in domain.points
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> QualityResult:
        return QualityResult(
            points=tuple(
                QualityPoint(
                    cores=int(p["cores"]),
                    utilization=float(p["utilization"]),
                    both_accepted=int(p["both_accepted"]),
                    tasksets=int(p["tasksets"]),
                    mean_tightness_hydra=float(p["mean_tightness_hydra"]),
                    mean_tightness_single=float(p["mean_tightness_single"]),
                )
                for p in data["points"]
            ),
            scale=str(data["scale"]),
            cores=int(data["cores"]),
        )

    def render_domain(self, domain: QualityResult) -> str:
        return format_quality(domain)

    def table_rows(self, domain: QualityResult) -> list[Sequence[Any]]:
        return [
            (p.cores, p.utilization, p.both_accepted,
             p.mean_tightness_hydra, p.mean_tightness_single)
            for p in domain.points
        ]


def run_quality(
    scale: ExperimentScale | None = None,
    cores: int = 8,
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> QualityResult:
    """Run the tightness-quality sweep on a ``cores``-core platform.

    .. deprecated::
        Thin shim over ``QualityExperiment`` kept for downstream
        callers; prefer ``get_experiment("quality").run(scale, engine)``.

    ``engine`` selects the execution strategy (workers, cache); this
    sweep shares the ``acceptance`` cache namespace with Fig. 2.
    """
    return QualityExperiment(cores=cores, config=config).run_domain(
        scale, engine, pool
    )


def format_quality(result: QualityResult) -> str:
    rows = [
        (
            f"{p.utilization:.3f}",
            p.both_accepted,
            f"{p.mean_tightness_hydra:.3f}" if p.both_accepted else "-",
            f"{p.mean_tightness_single:.3f}" if p.both_accepted else "-",
            f"{p.advantage:+.3f}" if p.both_accepted else "-",
        )
        for p in result.points
    ]
    table = format_table(
        ["U_total", "both accepted", "mean η HYDRA", "mean η SingleCore",
         "advantage"],
        rows,
        title=(
            f"Monitoring quality — mean tightness on commonly-accepted "
            f"task sets ({result.cores} cores, scale={result.scale})"
        ),
    )
    usable = [p for p in result.points if p.both_accepted > 0]
    series = format_series(
        [p.utilization for p in usable],
        [p.advantage for p in usable],
        label="HYDRA tightness advantage vs U ",
    )
    return "\n\n".join([table, series])
