"""Monitoring-quality sweep: tightness vs. utilisation (companion study).

Fig. 2 measures only *feasibility* (acceptance ratio).  The paper's
Fig. 1 narrative — "running security tasks in a single core leads to
higher periods and consequently poorer detection time" — implies a
second, quality dimension that the paper only samples through the UAV
case study.  This experiment quantifies it synthetically: for task sets
that **both** schemes accept, compare the mean tightness (η, directly
proportional to achievable monitoring frequency) that each achieves.

Expected shape: equal at very low utilisation (everything reaches
``T_des``); HYDRA increasingly ahead as load grows, until SingleCore
stops accepting anything at all (where Fig. 2 takes over the story).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import format_series, format_table
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, utilization_sweep

__all__ = ["QualityPoint", "QualityResult", "run_quality", "format_quality"]


@dataclass(frozen=True)
class QualityPoint:
    """One utilisation point of the quality sweep."""

    cores: int
    utilization: float
    both_accepted: int
    tasksets: int
    mean_tightness_hydra: float
    mean_tightness_single: float

    @property
    def advantage(self) -> float:
        """HYDRA's mean-tightness advantage (absolute η difference)."""
        return self.mean_tightness_hydra - self.mean_tightness_single


@dataclass(frozen=True)
class QualityResult:
    points: tuple[QualityPoint, ...]
    scale: str
    cores: int


def run_quality(
    scale: ExperimentScale | None = None,
    cores: int = 8,
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
) -> QualityResult:
    """Run the tightness-quality sweep on a ``cores``-core platform.

    Defaults to 8 cores: the utilisation band where both schemes accept
    task sets but achieve different tightness is widest there (on 2
    cores SingleCore stops accepting anything almost as soon as the
    quality gap opens).  ``engine`` selects the execution strategy
    (workers, cache); this sweep shares the ``acceptance`` cache
    namespace with Fig. 2.
    """
    from repro.experiments.parallel import (
        SweepEngine,
        SweepSpec,
        acceptance_outcomes,
        synthetic_config_to_dict,
    )

    scale = scale or get_scale()
    engine = engine or SweepEngine()
    platform = Platform(cores)
    utils = utilization_sweep(
        platform,
        step_fraction=scale.utilization_step,
        start_fraction=scale.utilization_start,
        stop_fraction=scale.utilization_stop,
    )
    spec = SweepSpec(
        kind="acceptance",
        seed=scale.seed + 41,
        points=tuple({"utilization": u} for u in utils),
        params={
            "cores": cores,
            "tasksets_per_point": scale.tasksets_per_point,
            "config": (
                synthetic_config_to_dict(config) if config is not None
                else None
            ),
        },
    )
    result = engine.run(spec)
    points: list[QualityPoint] = []
    for point, payload in zip(spec.points, result.payloads):
        utilization = float(point["utilization"])
        hydra_sum = single_sum = 0.0
        both = 0
        for outcome in acceptance_outcomes(payload):
            if outcome.hydra_schedulable and outcome.single_schedulable:
                both += 1
                hydra_sum += outcome.hydra.mean_tightness()
                single_sum += outcome.single.mean_tightness()
        points.append(
            QualityPoint(
                cores=cores,
                utilization=utilization,
                both_accepted=both,
                tasksets=scale.tasksets_per_point,
                mean_tightness_hydra=hydra_sum / both if both else 0.0,
                mean_tightness_single=single_sum / both if both else 0.0,
            )
        )
    return QualityResult(points=tuple(points), scale=scale.name, cores=cores)


def format_quality(result: QualityResult) -> str:
    rows = [
        (
            f"{p.utilization:.3f}",
            p.both_accepted,
            f"{p.mean_tightness_hydra:.3f}" if p.both_accepted else "-",
            f"{p.mean_tightness_single:.3f}" if p.both_accepted else "-",
            f"{p.advantage:+.3f}" if p.both_accepted else "-",
        )
        for p in result.points
    ]
    table = format_table(
        ["U_total", "both accepted", "mean η HYDRA", "mean η SingleCore",
         "advantage"],
        rows,
        title=(
            f"Monitoring quality — mean tightness on commonly-accepted "
            f"task sets ({result.cores} cores, scale={result.scale})"
        ),
    )
    usable = [p for p in result.points if p.both_accepted > 0]
    series = format_series(
        [p.utilization for p in usable],
        [p.advantage for p in usable],
        label="HYDRA tightness advantage vs U ",
    )
    return "\n\n".join([table, series])
