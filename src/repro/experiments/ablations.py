"""Ablation studies for the design choices DESIGN §7 calls out.

These go beyond the paper's three figures and quantify *why* HYDRA is
built the way it is:

* :func:`solver_ablation` — the cost of the GP-compatible linearised
  interference bound versus exact RTA, and what joint LP period
  refinement adds on top of greedy periods.
* :func:`core_choice_ablation` — HYDRA's argmax-tightness core rule
  versus cheaper rules (first feasible core, most-slack core).
* :func:`search_ablation` — branch-and-bound versus exhaustive
  enumeration for the OPT baseline (same optimum, fewer LP solves).
* :func:`extension_ablation` — detection-time impact of the paper's §V
  extensions (global migration, non-preemptive security, precedence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.experiments.api import Experiment, RawRun
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.fig1 import build_uav_systems
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_table, percent
from repro.experiments.runner import build_hydra_system
from repro.metrics.cdf import EmpiricalCDF
from repro.model.platform import Platform
from repro.opt.branch_bound import branch_bound_optimal
from repro.opt.exhaustive import exhaustive_optimal
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import detection_times
from repro.sim.runner import simulate_allocation
from repro.taskgen.security_apps import TRIPWIRE_PRECEDENCE
from repro.taskgen.synthetic import SyntheticConfig, generate_workload, \
    utilization_sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepEngine, SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = [
    "AllocatorCell",
    "AllocatorComparison",
    "solver_ablation",
    "core_choice_ablation",
    "SearchAblationResult",
    "search_ablation",
    "ExtensionCell",
    "extension_ablation",
    "partitioning_ablation",
    "format_allocator_comparison",
    "format_search_ablation",
    "format_extension_ablation",
    "SolverAblationExperiment",
    "CoreChoiceAblationExperiment",
    "SearchAblationExperiment",
    "ExtensionAblationExperiment",
    "PartitioningAblationExperiment",
]


@dataclass(frozen=True)
class AllocatorCell:
    """One (allocator, utilisation) cell of an allocator comparison."""

    scheme: str
    utilization: float
    acceptance: float
    mean_tightness: float  # mean over schedulable task sets (ω = 1)


@dataclass(frozen=True)
class AllocatorComparison:
    cells: tuple[AllocatorCell, ...]
    cores: int
    tasksets_per_point: int

    def schemes(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.scheme not in seen:
                seen.append(cell.scheme)
        return seen

    def series(self, scheme: str) -> list[AllocatorCell]:
        return [c for c in self.cells if c.scheme == scheme]


def _sweep_utilizations(scale: ExperimentScale, cores: int) -> list[float]:
    return list(
        utilization_sweep(
            Platform(cores),
            step_fraction=scale.utilization_step,
            start_fraction=scale.utilization_start,
            stop_fraction=scale.utilization_stop,
        )
    )


def _cells_from_payloads(
    spec: "SweepSpec",
    payloads,
    schemes: list[str],
) -> tuple[AllocatorCell, ...]:
    """Decode per-point ``{"cells": {scheme: tallies}}`` payloads."""
    cells: list[AllocatorCell] = []
    for point, payload in zip(spec.points, payloads):
        for scheme in schemes:
            tally = payload["cells"][scheme]
            accepted = int(tally["accepted"])
            cells.append(
                AllocatorCell(
                    scheme=scheme,
                    utilization=float(point["utilization"]),
                    acceptance=(
                        accepted / tally["total"] if tally["total"] else 0.0
                    ),
                    mean_tightness=(
                        tally["tightness_sum"] / accepted if accepted else 0.0
                    ),
                )
            )
    return tuple(cells)


def _allocator_sweep_spec(
    allocator_specs: list[str],
    scale: ExperimentScale,
    cores: int,
    config: SyntheticConfig | None,
    seed_offset: int,
) -> "SweepSpec":
    from repro.experiments.parallel import SweepSpec, synthetic_config_to_dict

    return SweepSpec(
        kind="allocator-comparison",
        seed=scale.seed + seed_offset,
        points=tuple(
            {"utilization": u} for u in _sweep_utilizations(scale, cores)
        ),
        params={
            "cores": cores,
            "tasksets_per_point": scale.tasksets_per_point,
            "allocators": list(allocator_specs),
            "config": (
                synthetic_config_to_dict(config) if config is not None
                else None
            ),
        },
    )


def solver_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 2,
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> AllocatorComparison:
    """Linearised Eq. (5) vs exact RTA vs LP-refined periods.

    .. deprecated::
        Thin shim over ``SolverAblationExperiment``.
    """
    return SolverAblationExperiment(cores=cores, config=config).run_domain(
        scale, engine, pool
    )


def core_choice_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 4,
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> AllocatorComparison:
    """HYDRA's argmax-tightness rule vs cheaper core-selection rules.

    .. deprecated::
        Thin shim over ``CoreChoiceAblationExperiment``.
    """
    return CoreChoiceAblationExperiment(cores=cores, config=config).run_domain(
        scale, engine, pool
    )


@dataclass(frozen=True)
class SearchAblationResult:
    """Exhaustive vs branch-and-bound on identical systems."""

    systems: int
    agreements: int
    exhaustive_lp_solves: int
    bnb_lp_solves: int
    bnb_nodes: int

    @property
    def solve_reduction(self) -> float:
        if self.exhaustive_lp_solves == 0:
            return 0.0
        return (
            (self.exhaustive_lp_solves - self.bnb_lp_solves)
            / self.exhaustive_lp_solves
            * 100.0
        )


def search_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 2,
    utilization_fraction: float = 0.6,
) -> SearchAblationResult:
    """Compare the two optimal searches over sampled systems."""
    scale = scale or get_scale()
    platform = Platform(cores)
    config = SyntheticConfig(security_task_count=(2, 6))
    rng = np.random.default_rng(scale.seed + 71)
    systems = agreements = exhaustive_solves = bnb_solves = nodes = 0
    for _ in range(scale.fig3_tasksets_per_point):
        workload = generate_workload(
            platform, utilization_fraction * cores, rng, config
        )
        system = build_hydra_system(workload)
        if system is None:
            continue
        exhaustive = exhaustive_optimal(system, prune=False)
        bnb, stats = branch_bound_optimal(system)
        systems += 1
        ns = len(system.security_tasks)
        exhaustive_solves += cores**ns
        bnb_solves += stats.leaves_solved
        nodes += stats.nodes
        if exhaustive is None and bnb is None:
            agreements += 1
        elif (
            exhaustive is not None
            and bnb is not None
            and abs(exhaustive.tightness - bnb.tightness) < 1e-6
        ):
            agreements += 1
    return SearchAblationResult(
        systems=systems,
        agreements=agreements,
        exhaustive_lp_solves=exhaustive_solves,
        bnb_lp_solves=bnb_solves,
        bnb_nodes=nodes,
    )


@dataclass(frozen=True)
class ExtensionCell:
    """Detection statistics for one simulator mode."""

    mode: str
    mean_detection: float
    p90_detection: float
    missed_deadlines: int


def extension_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 4,
) -> list[ExtensionCell]:
    """Detection impact of the §V extensions on the UAV case study.

    The ``non-preemptive`` row runs plain HYDRA's allocation with
    non-preemptive security — demonstrating the blocking damage — while
    ``non-preemptive+aware`` re-allocates with the blocking-aware
    :class:`~repro.core.nonpreemptive.NonPreemptiveHydraAllocator`,
    which must bring the real-time deadline misses back to zero.
    """
    from repro.allocators import get_allocator

    scale = scale or get_scale()
    hydra_system, hydra_alloc, _, _ = build_uav_systems(cores)
    surfaces = surfaces_of(hydra_system.security_tasks)
    aware_alloc = get_allocator("hydra[np]").allocate(hydra_system)
    modes: list[tuple[str, object, dict]] = [
        ("partitioned", hydra_alloc, {}),
        ("global", hydra_alloc, {"security_mode": "global"}),
        ("non-preemptive", hydra_alloc, {"preemptible_security": False}),
        ("precedence", hydra_alloc, {"precedence": TRIPWIRE_PRECEDENCE}),
    ]
    if aware_alloc.schedulable:
        modes.append(
            (
                "non-preemptive+aware",
                aware_alloc,
                {"preemptible_security": False},
            )
        )
    cells: list[ExtensionCell] = []
    for mode_name, allocation, kwargs in modes:
        rng = np.random.default_rng(scale.seed + 83)
        result = simulate_allocation(
            hydra_system,
            allocation,
            duration=scale.sim_duration,
            rng=rng,
            **kwargs,
        )
        tail = max(a.period for a in allocation.assignments) * 2.0
        window_end = max(
            scale.sim_duration - tail, scale.sim_duration * 0.25
        )
        attacks = sample_attacks(
            scale.sim_trials, (0.0, window_end), surfaces, rng=rng
        )
        times = detection_times(
            result, attacks, hydra_system.security_tasks
        )
        cdf = EmpiricalCDF(times)
        security_names = set(hydra_system.security_tasks.names)
        rt_misses = [
            m for m in result.misses if m.task not in security_names
        ]
        cells.append(
            ExtensionCell(
                mode=mode_name,
                mean_detection=cdf.mean_detected(),
                p90_detection=cdf.quantile(0.9),
                missed_deadlines=len(rt_misses),
            )
        )
    return cells


def partitioning_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 4,
    config: SyntheticConfig | None = None,
    heuristics: tuple[str, ...] = ("best-fit", "worst-fit", "first-fit"),
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> AllocatorComparison:
    """How the *real-time* partitioning heuristic shapes HYDRA's room.

    The paper fixes best-fit (Sec. IV-B) and treats the partition as
    given; this ablation varies it.  Intuition both ways: best-fit packs
    real-time tasks tightly, leaving some cores nearly empty for
    security (good for tightness); worst-fit balances load, leaving
    moderate slack everywhere (good when many security tasks must
    spread).  Reported per heuristic: HYDRA acceptance and mean
    tightness, with the heuristic name used as the scheme label.

    .. deprecated::
        Thin shim over ``PartitioningAblationExperiment``.
    """
    return PartitioningAblationExperiment(
        cores=cores, config=config, heuristics=heuristics
    ).run_domain(scale, engine, pool)


def _partitioning_sweep_spec(
    scale: ExperimentScale,
    cores: int,
    config: SyntheticConfig | None,
    heuristics: tuple[str, ...],
) -> "SweepSpec":
    from repro.experiments.parallel import SweepSpec, synthetic_config_to_dict

    return SweepSpec(
        kind="partitioning",
        seed=scale.seed + 97,
        points=tuple(
            {"utilization": u} for u in _sweep_utilizations(scale, cores)
        ),
        params={
            "cores": cores,
            "tasksets_per_point": scale.tasksets_per_point,
            "heuristics": list(heuristics),
            "config": (
                synthetic_config_to_dict(config) if config is not None
                else None
            ),
        },
    )


# -- formatting --------------------------------------------------------------


def format_allocator_comparison(
    comparison: AllocatorComparison, title: str
) -> str:
    rows = []
    for cell in comparison.cells:
        rows.append(
            (
                f"{cell.utilization:.3f}",
                cell.scheme,
                f"{cell.acceptance:.3f}",
                f"{cell.mean_tightness:.3f}",
            )
        )
    return format_table(
        ["U_total", "scheme", "acceptance", "mean tightness"],
        rows,
        title=f"{title} ({comparison.cores} cores, "
              f"{comparison.tasksets_per_point} task sets/point)",
    )


def format_search_ablation(result: SearchAblationResult) -> str:
    return format_table(
        ["systems", "agreements", "LP solves (exh)", "LP solves (BnB)",
         "nodes", "solve reduction"],
        [
            (
                result.systems,
                result.agreements,
                result.exhaustive_lp_solves,
                result.bnb_lp_solves,
                result.bnb_nodes,
                percent(result.solve_reduction),
            )
        ],
        title="Optimal search: exhaustive vs branch-and-bound",
    )


# -- experiment-protocol ports ------------------------------------------------


def _comparison_to_data(domain: AllocatorComparison) -> dict[str, Any]:
    return {
        "cores": domain.cores,
        "tasksets_per_point": domain.tasksets_per_point,
        "cells": [
            {
                "scheme": c.scheme,
                "utilization": c.utilization,
                "acceptance": c.acceptance,
                "mean_tightness": c.mean_tightness,
            }
            for c in domain.cells
        ],
    }


def _comparison_from_data(data: Mapping[str, Any]) -> AllocatorComparison:
    return AllocatorComparison(
        cells=tuple(
            AllocatorCell(
                scheme=str(c["scheme"]),
                utilization=float(c["utilization"]),
                acceptance=float(c["acceptance"]),
                mean_tightness=float(c["mean_tightness"]),
            )
            for c in data["cells"]
        ),
        cores=int(data["cores"]),
        tasksets_per_point=int(data["tasksets_per_point"]),
    )


class _ComparisonAblationExperiment(Experiment):
    """Shared machinery for ablations reporting an
    :class:`AllocatorComparison` (solver, core-choice, partitioning)."""

    version = 1
    tags = ("ablation",)
    columns = ("utilization", "scheme", "acceptance", "mean_tightness")
    #: Table title passed to :func:`format_allocator_comparison`.
    comparison_title: str = ""
    #: Scheme labels, in report order.
    schemes: tuple[str, ...] = ()
    #: Default platform size (subclasses override).
    cores: int = 2

    def __init__(
        self,
        cores: int | None = None,
        config: SyntheticConfig | None = None,
    ) -> None:
        if cores is not None:
            self.cores = cores
        self.config = config

    def aggregate_domain(self, raw: RawRun) -> AllocatorComparison:
        (result,) = raw.sweeps
        return AllocatorComparison(
            cells=_cells_from_payloads(
                result.spec, result.payloads, list(self.schemes)
            ),
            cores=int(result.spec.params["cores"]),
            tasksets_per_point=raw.scale.tasksets_per_point,
        )

    def encode_data(self, domain: AllocatorComparison) -> dict[str, Any]:
        return _comparison_to_data(domain)

    def decode_data(self, data: Mapping[str, Any]) -> AllocatorComparison:
        return _comparison_from_data(data)

    def render_domain(self, domain: AllocatorComparison) -> str:
        return format_allocator_comparison(domain, self.comparison_title)

    def table_rows(
        self, domain: AllocatorComparison
    ) -> list[Sequence[Any]]:
        return [
            (c.utilization, c.scheme, c.acceptance, c.mean_tightness)
            for c in domain.cells
        ]


@register_experiment("ablation-solver")
class SolverAblationExperiment(_ComparisonAblationExperiment):
    name = "ablation-solver"
    title = "Ablation: period solver (linearised vs exact RTA vs +LP)"
    description = (
        "Cost of the GP-compatible linearised interference bound versus "
        "exact RTA, and what joint LP period refinement adds."
    )
    comparison_title = "Ablation: period solver"
    schemes = ("hydra", "hydra[exact-rta]", "hydra+lp")
    cores = 2
    order = 60

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return [
            _allocator_sweep_spec(
                list(self.schemes), scale, self.cores, self.config,
                seed_offset=53,
            )
        ]


@register_experiment("ablation-core-choice")
class CoreChoiceAblationExperiment(_ComparisonAblationExperiment):
    name = "ablation-core-choice"
    title = "Ablation: core-selection rule"
    description = (
        "HYDRA's argmax-tightness core rule versus cheaper rules "
        "(first feasible core, most-slack core)."
    )
    comparison_title = "Ablation: core-selection rule"
    schemes = ("hydra", "first-feasible", "slackiest-core")
    cores = 4
    order = 70

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return [
            _allocator_sweep_spec(
                list(self.schemes), scale, self.cores, self.config,
                seed_offset=67,
            )
        ]


@register_experiment("ablation-search")
class SearchAblationExperiment(Experiment):
    """The OPT-search ablation; computes inline (no Monte-Carlo sweep),
    so ``sweeps`` is empty and aggregation does the work."""

    name = "ablation-search"
    title = "Ablation: optimal search (exhaustive vs branch-and-bound)"
    description = (
        "Branch-and-bound versus exhaustive enumeration for the OPT "
        "baseline: same optimum, fewer LP solves."
    )
    version = 1
    tags = ("ablation",)
    order = 80
    columns = (
        "systems", "agreements", "exhaustive_lp_solves", "bnb_lp_solves",
        "bnb_nodes",
    )

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return []

    def aggregate_domain(self, raw: RawRun) -> SearchAblationResult:
        return search_ablation(raw.scale)

    def encode_data(self, domain: SearchAblationResult) -> dict[str, Any]:
        return {
            "systems": domain.systems,
            "agreements": domain.agreements,
            "exhaustive_lp_solves": domain.exhaustive_lp_solves,
            "bnb_lp_solves": domain.bnb_lp_solves,
            "bnb_nodes": domain.bnb_nodes,
        }

    def decode_data(self, data: Mapping[str, Any]) -> SearchAblationResult:
        return SearchAblationResult(
            systems=int(data["systems"]),
            agreements=int(data["agreements"]),
            exhaustive_lp_solves=int(data["exhaustive_lp_solves"]),
            bnb_lp_solves=int(data["bnb_lp_solves"]),
            bnb_nodes=int(data["bnb_nodes"]),
        )

    def render_domain(self, domain: SearchAblationResult) -> str:
        return format_search_ablation(domain)

    def table_rows(
        self, domain: SearchAblationResult
    ) -> list[Sequence[Any]]:
        return [
            (domain.systems, domain.agreements, domain.exhaustive_lp_solves,
             domain.bnb_lp_solves, domain.bnb_nodes)
        ]


@register_experiment("ablation-extension")
class ExtensionAblationExperiment(Experiment):
    """The §V-extensions ablation; simulates the UAV case study inline
    (deterministic per scale), so ``sweeps`` is empty."""

    name = "ablation-extension"
    title = "Ablation: §V extensions — detection impact"
    description = (
        "Detection-time impact of global migration, non-preemptive "
        "security, and precedence constraints on the UAV case study."
    )
    version = 1
    tags = ("ablation",)
    order = 90
    columns = ("mode", "mean_detection", "p90_detection", "missed_deadlines")

    def __init__(self, cores: int = 4) -> None:
        self.cores = cores

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return []

    def aggregate_domain(self, raw: RawRun) -> list[ExtensionCell]:
        return extension_ablation(raw.scale, cores=self.cores)

    def encode_data(self, domain: list[ExtensionCell]) -> dict[str, Any]:
        return {
            "cells": [
                {
                    "mode": c.mode,
                    "mean_detection": c.mean_detection,
                    "p90_detection": c.p90_detection,
                    "missed_deadlines": c.missed_deadlines,
                }
                for c in domain
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> list[ExtensionCell]:
        return [
            ExtensionCell(
                mode=str(c["mode"]),
                mean_detection=float(c["mean_detection"]),
                p90_detection=float(c["p90_detection"]),
                missed_deadlines=int(c["missed_deadlines"]),
            )
            for c in data["cells"]
        ]

    def render_domain(self, domain: list[ExtensionCell]) -> str:
        return format_extension_ablation(domain)

    def table_rows(self, domain: list[ExtensionCell]) -> list[Sequence[Any]]:
        return [
            (c.mode, c.mean_detection, c.p90_detection, c.missed_deadlines)
            for c in domain
        ]


@register_experiment("ablation-partitioning")
class PartitioningAblationExperiment(_ComparisonAblationExperiment):
    name = "ablation-partitioning"
    title = "Ablation: real-time partitioning heuristic"
    description = (
        "How the real-time partitioning heuristic (best/worst/first-fit) "
        "shapes HYDRA's room for security tasks."
    )
    comparison_title = "Ablation: real-time partitioning heuristic"
    schemes = ("best-fit", "worst-fit", "first-fit")
    cores = 4
    order = 100

    def __init__(
        self,
        cores: int | None = None,
        config: SyntheticConfig | None = None,
        heuristics: tuple[str, ...] | None = None,
    ) -> None:
        super().__init__(cores, config)
        if heuristics is not None:
            self.schemes = tuple(heuristics)

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return [
            _partitioning_sweep_spec(
                scale, self.cores, self.config, tuple(self.schemes)
            )
        ]


def format_extension_ablation(cells: list[ExtensionCell]) -> str:
    return format_table(
        ["mode", "mean detection (ms)", "p90 (ms)", "RT deadline misses"],
        [
            (
                c.mode,
                f"{c.mean_detection:.0f}",
                f"{c.p90_detection:.0f}",
                c.missed_deadlines,
            )
            for c in cells
        ],
        title="§V extensions — detection impact (UAV case study, HYDRA)",
    )
