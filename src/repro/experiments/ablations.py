"""Ablation studies for the design choices DESIGN §7 calls out.

These go beyond the paper's three figures and quantify *why* HYDRA is
built the way it is:

* :func:`solver_ablation` — the cost of the GP-compatible linearised
  interference bound versus exact RTA, and what joint LP period
  refinement adds on top of greedy periods.
* :func:`core_choice_ablation` — HYDRA's argmax-tightness core rule
  versus cheaper rules (first feasible core, most-slack core).
* :func:`search_ablation` — branch-and-bound versus exhaustive
  enumeration for the OPT baseline (same optimum, fewer LP solves).
* :func:`extension_ablation` — detection-time impact of the paper's §V
  extensions (global migration, non-preemptive security, precedence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocator import Allocator
from repro.core.hydra import HydraAllocator
from repro.core.variants import (
    FirstFeasibleAllocator,
    LpRefinedHydraAllocator,
    SlackiestCoreAllocator,
)
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.fig1 import build_uav_systems
from repro.experiments.reporting import format_table, percent
from repro.experiments.runner import build_hydra_system, spawn_streams
from repro.metrics.acceptance import AcceptanceCounter
from repro.metrics.cdf import EmpiricalCDF
from repro.model.platform import Platform
from repro.opt.branch_bound import branch_bound_optimal
from repro.opt.exhaustive import exhaustive_optimal
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import detection_times
from repro.sim.runner import simulate_allocation
from repro.taskgen.security_apps import TRIPWIRE_PRECEDENCE
from repro.taskgen.synthetic import SyntheticConfig, generate_workload, \
    utilization_sweep

__all__ = [
    "AllocatorCell",
    "AllocatorComparison",
    "solver_ablation",
    "core_choice_ablation",
    "SearchAblationResult",
    "search_ablation",
    "ExtensionCell",
    "extension_ablation",
    "partitioning_ablation",
    "format_allocator_comparison",
    "format_search_ablation",
    "format_extension_ablation",
]


@dataclass(frozen=True)
class AllocatorCell:
    """One (allocator, utilisation) cell of an allocator comparison."""

    scheme: str
    utilization: float
    acceptance: float
    mean_tightness: float  # mean over schedulable task sets (ω = 1)


@dataclass(frozen=True)
class AllocatorComparison:
    cells: tuple[AllocatorCell, ...]
    cores: int
    tasksets_per_point: int

    def schemes(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.scheme not in seen:
                seen.append(cell.scheme)
        return seen

    def series(self, scheme: str) -> list[AllocatorCell]:
        return [c for c in self.cells if c.scheme == scheme]


def _compare_allocators(
    allocators: list[Allocator],
    scale: ExperimentScale,
    cores: int,
    config: SyntheticConfig | None,
    seed_offset: int,
) -> AllocatorComparison:
    platform = Platform(cores)
    utils = list(
        utilization_sweep(
            platform,
            step_fraction=scale.utilization_step,
            start_fraction=scale.utilization_start,
            stop_fraction=scale.utilization_stop,
        )
    )
    cells: list[AllocatorCell] = []
    streams = spawn_streams(scale.seed + seed_offset, len(utils))
    for utilization, rng in zip(utils, streams):
        counters = {a.name: AcceptanceCounter() for a in allocators}
        tightness_sums = {a.name: 0.0 for a in allocators}
        for _ in range(scale.tasksets_per_point):
            workload = generate_workload(platform, utilization, rng, config)
            system = build_hydra_system(workload)
            for allocator in allocators:
                if system is None:
                    counters[allocator.name].record(False)
                    continue
                allocation = allocator.allocate(system)
                counters[allocator.name].record(allocation.schedulable)
                if allocation.schedulable:
                    tightness_sums[allocator.name] += (
                        allocation.mean_tightness()
                    )
        for allocator in allocators:
            counter = counters[allocator.name]
            cells.append(
                AllocatorCell(
                    scheme=allocator.name,
                    utilization=utilization,
                    acceptance=counter.ratio,
                    mean_tightness=(
                        tightness_sums[allocator.name] / counter.accepted
                        if counter.accepted
                        else 0.0
                    ),
                )
            )
    return AllocatorComparison(
        cells=tuple(cells),
        cores=cores,
        tasksets_per_point=scale.tasksets_per_point,
    )


def solver_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 2,
    config: SyntheticConfig | None = None,
) -> AllocatorComparison:
    """Linearised Eq. (5) vs exact RTA vs LP-refined periods."""
    scale = scale or get_scale()
    return _compare_allocators(
        [
            HydraAllocator(solver="closed-form"),
            HydraAllocator(solver="exact-rta"),
            LpRefinedHydraAllocator(),
        ],
        scale,
        cores,
        config,
        seed_offset=53,
    )


def core_choice_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 4,
    config: SyntheticConfig | None = None,
) -> AllocatorComparison:
    """HYDRA's argmax-tightness rule vs cheaper core-selection rules."""
    scale = scale or get_scale()
    return _compare_allocators(
        [
            HydraAllocator(),
            FirstFeasibleAllocator(),
            SlackiestCoreAllocator(),
        ],
        scale,
        cores,
        config,
        seed_offset=67,
    )


@dataclass(frozen=True)
class SearchAblationResult:
    """Exhaustive vs branch-and-bound on identical systems."""

    systems: int
    agreements: int
    exhaustive_lp_solves: int
    bnb_lp_solves: int
    bnb_nodes: int

    @property
    def solve_reduction(self) -> float:
        if self.exhaustive_lp_solves == 0:
            return 0.0
        return (
            (self.exhaustive_lp_solves - self.bnb_lp_solves)
            / self.exhaustive_lp_solves
            * 100.0
        )


def search_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 2,
    utilization_fraction: float = 0.6,
) -> SearchAblationResult:
    """Compare the two optimal searches over sampled systems."""
    scale = scale or get_scale()
    platform = Platform(cores)
    config = SyntheticConfig(security_task_count=(2, 6))
    rng = np.random.default_rng(scale.seed + 71)
    systems = agreements = exhaustive_solves = bnb_solves = nodes = 0
    for _ in range(scale.fig3_tasksets_per_point):
        workload = generate_workload(
            platform, utilization_fraction * cores, rng, config
        )
        system = build_hydra_system(workload)
        if system is None:
            continue
        exhaustive = exhaustive_optimal(system, prune=False)
        bnb, stats = branch_bound_optimal(system)
        systems += 1
        ns = len(system.security_tasks)
        exhaustive_solves += cores**ns
        bnb_solves += stats.leaves_solved
        nodes += stats.nodes
        if exhaustive is None and bnb is None:
            agreements += 1
        elif (
            exhaustive is not None
            and bnb is not None
            and abs(exhaustive.tightness - bnb.tightness) < 1e-6
        ):
            agreements += 1
    return SearchAblationResult(
        systems=systems,
        agreements=agreements,
        exhaustive_lp_solves=exhaustive_solves,
        bnb_lp_solves=bnb_solves,
        bnb_nodes=nodes,
    )


@dataclass(frozen=True)
class ExtensionCell:
    """Detection statistics for one simulator mode."""

    mode: str
    mean_detection: float
    p90_detection: float
    missed_deadlines: int


def extension_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 4,
) -> list[ExtensionCell]:
    """Detection impact of the §V extensions on the UAV case study.

    The ``non-preemptive`` row runs plain HYDRA's allocation with
    non-preemptive security — demonstrating the blocking damage — while
    ``non-preemptive+aware`` re-allocates with the blocking-aware
    :class:`~repro.core.nonpreemptive.NonPreemptiveHydraAllocator`,
    which must bring the real-time deadline misses back to zero.
    """
    from repro.core.nonpreemptive import NonPreemptiveHydraAllocator

    scale = scale or get_scale()
    hydra_system, hydra_alloc, _, _ = build_uav_systems(cores)
    surfaces = surfaces_of(hydra_system.security_tasks)
    aware_alloc = NonPreemptiveHydraAllocator().allocate(hydra_system)
    modes: list[tuple[str, object, dict]] = [
        ("partitioned", hydra_alloc, {}),
        ("global", hydra_alloc, {"security_mode": "global"}),
        ("non-preemptive", hydra_alloc, {"preemptible_security": False}),
        ("precedence", hydra_alloc, {"precedence": TRIPWIRE_PRECEDENCE}),
    ]
    if aware_alloc.schedulable:
        modes.append(
            (
                "non-preemptive+aware",
                aware_alloc,
                {"preemptible_security": False},
            )
        )
    cells: list[ExtensionCell] = []
    for mode_name, allocation, kwargs in modes:
        rng = np.random.default_rng(scale.seed + 83)
        result = simulate_allocation(
            hydra_system,
            allocation,
            duration=scale.sim_duration,
            rng=rng,
            **kwargs,
        )
        tail = max(a.period for a in allocation.assignments) * 2.0
        window_end = max(
            scale.sim_duration - tail, scale.sim_duration * 0.25
        )
        attacks = sample_attacks(
            scale.sim_trials, (0.0, window_end), surfaces, rng=rng
        )
        times = detection_times(
            result, attacks, hydra_system.security_tasks
        )
        cdf = EmpiricalCDF(times)
        security_names = set(hydra_system.security_tasks.names)
        rt_misses = [
            m for m in result.misses if m.task not in security_names
        ]
        cells.append(
            ExtensionCell(
                mode=mode_name,
                mean_detection=cdf.mean_detected(),
                p90_detection=cdf.quantile(0.9),
                missed_deadlines=len(rt_misses),
            )
        )
    return cells


def partitioning_ablation(
    scale: ExperimentScale | None = None,
    cores: int = 4,
    config: SyntheticConfig | None = None,
    heuristics: tuple[str, ...] = ("best-fit", "worst-fit", "first-fit"),
) -> AllocatorComparison:
    """How the *real-time* partitioning heuristic shapes HYDRA's room.

    The paper fixes best-fit (Sec. IV-B) and treats the partition as
    given; this ablation varies it.  Intuition both ways: best-fit packs
    real-time tasks tightly, leaving some cores nearly empty for
    security (good for tightness); worst-fit balances load, leaving
    moderate slack everywhere (good when many security tasks must
    spread).  Reported per heuristic: HYDRA acceptance and mean
    tightness, with the heuristic name used as the scheme label.
    """
    from repro.core.hydra import HydraAllocator

    scale = scale or get_scale()
    platform = Platform(cores)
    utils = list(
        utilization_sweep(
            platform,
            step_fraction=scale.utilization_step,
            start_fraction=scale.utilization_start,
            stop_fraction=scale.utilization_stop,
        )
    )
    allocator = HydraAllocator()
    cells: list[AllocatorCell] = []
    streams = spawn_streams(scale.seed + 97, len(utils))
    for utilization, rng in zip(utils, streams):
        counters = {h: AcceptanceCounter() for h in heuristics}
        tightness_sums = {h: 0.0 for h in heuristics}
        for _ in range(scale.tasksets_per_point):
            workload = generate_workload(platform, utilization, rng, config)
            for heuristic in heuristics:
                system = build_hydra_system(workload, heuristic=heuristic)
                if system is None:
                    counters[heuristic].record(False)
                    continue
                allocation = allocator.allocate(system)
                counters[heuristic].record(allocation.schedulable)
                if allocation.schedulable:
                    tightness_sums[heuristic] += allocation.mean_tightness()
        for heuristic in heuristics:
            counter = counters[heuristic]
            cells.append(
                AllocatorCell(
                    scheme=heuristic,
                    utilization=utilization,
                    acceptance=counter.ratio,
                    mean_tightness=(
                        tightness_sums[heuristic] / counter.accepted
                        if counter.accepted
                        else 0.0
                    ),
                )
            )
    return AllocatorComparison(
        cells=tuple(cells),
        cores=cores,
        tasksets_per_point=scale.tasksets_per_point,
    )


# -- formatting --------------------------------------------------------------


def format_allocator_comparison(
    comparison: AllocatorComparison, title: str
) -> str:
    rows = []
    for cell in comparison.cells:
        rows.append(
            (
                f"{cell.utilization:.3f}",
                cell.scheme,
                f"{cell.acceptance:.3f}",
                f"{cell.mean_tightness:.3f}",
            )
        )
    return format_table(
        ["U_total", "scheme", "acceptance", "mean tightness"],
        rows,
        title=f"{title} ({comparison.cores} cores, "
              f"{comparison.tasksets_per_point} task sets/point)",
    )


def format_search_ablation(result: SearchAblationResult) -> str:
    return format_table(
        ["systems", "agreements", "LP solves (exh)", "LP solves (BnB)",
         "nodes", "solve reduction"],
        [
            (
                result.systems,
                result.agreements,
                result.exhaustive_lp_solves,
                result.bnb_lp_solves,
                result.bnb_nodes,
                percent(result.solve_reduction),
            )
        ],
        title="Optimal search: exhaustive vs branch-and-bound",
    )


def format_extension_ablation(cells: list[ExtensionCell]) -> str:
    return format_table(
        ["mode", "mean detection (ms)", "p90 (ms)", "RT deadline misses"],
        [
            (
                c.mode,
                f"{c.mean_detection:.0f}",
                f"{c.p90_detection:.0f}",
                c.missed_deadlines,
            )
            for c in cells
        ],
        title="§V extensions — detection impact (UAV case study, HYDRA)",
    )
