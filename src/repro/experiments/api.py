"""The unified experiment API: protocol, spec, and structured results.

The paper's evaluation is a fixed menu of figures and tables; the seed
code mirrored that as hard-coded ``run_X``/``format_X`` function pairs
wired into the CLI by hand.  This module replaces that with one
declarative surface every consumer (CLI, :class:`SweepEngine`, result
cache, golden-fixture machinery) speaks:

* :class:`Experiment` — the protocol/ABC a driver implements:
  ``spec()`` (identity + metadata), ``sweeps(scale)`` (the
  :class:`~repro.experiments.parallel.SweepSpec` grid), ``points(scale)``
  / ``run_point(point, stream)`` (the unit of cached, parallel work),
  ``aggregate(raw)`` (payloads → :class:`ExperimentResult`) and
  ``render(result)`` (result → report text).
* :class:`ExperimentSpec` — declarative identity: name, title,
  description, schema version, tags.
* :class:`ExperimentResult` — a typed, versioned result container with
  ``to_json``/``from_json`` round-tripping and ``to_csv`` export.  The
  ``spec_hash`` field fingerprints everything that determined the
  result (experiment spec + the exact sweep specs), so two results are
  comparable iff their hashes match.

Cache keys are *not* derived from this layer: they keep coming from
:meth:`SweepSpec.key_payload`, which the port onto this API leaves
byte-identical — per-point cache entries written before the refactor
stay valid after it.

Experiments register themselves with
:func:`repro.experiments.registry.register_experiment`; see the README
section "Writing a new experiment".
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import ValidationError
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.parallel import (
    SweepEngine,
    SweepResult,
    SweepSpec,
    execute_point,
    get_point_runner,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.experiments.pool import WorkerPool

__all__ = [
    "RESULT_FORMAT",
    "ExperimentSpec",
    "Point",
    "RawRun",
    "ExperimentResult",
    "Experiment",
    "GoldenFixture",
    "spec_hash",
]

#: Bump when the :class:`ExperimentResult` serialisation layout changes
#: incompatibly; ``from_json`` then rejects stale files loudly instead
#: of misreading them.
RESULT_FORMAT = 1


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _json_scalar(value: Any) -> Any:
    """Coerce one table cell to a JSON-native scalar (numpy included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # numpy scalars expose .item(); anything else falls back to str.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative identity of one experiment.

    Attributes
    ----------
    name:
        Registry name — what the CLI subcommand is called.
    title:
        One-line human title (``repro-hydra list`` shows it).
    description:
        What the experiment measures / which paper artifact it
        regenerates.
    version:
        Result-schema version of the experiment's ``data`` payload.
    tags:
        Free-form labels (``"paper"``, ``"ablation"``, ``"scenario"``).
    """

    name: str
    title: str
    description: str = ""
    version: int = 1
    tags: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "version": self.version,
            "tags": list(self.tags),
        }


def spec_hash(spec: ExperimentSpec, sweeps: Sequence[SweepSpec]) -> str:
    """Fingerprint of everything that determines an experiment's result:
    the experiment spec plus the exact sweep specs it will run."""
    payload = {
        "experiment": spec.to_dict(),
        "sweeps": [s.to_dict() for s in sweeps],
    }
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


@dataclass(frozen=True)
class Point:
    """One unit of cached, parallel work: index ``index`` of ``sweep``."""

    sweep: SweepSpec
    index: int

    @property
    def params(self) -> Mapping[str, Any]:
        """The point's own parameter dict (e.g. ``{"utilization": 1.3}``)."""
        return self.sweep.points[self.index]

    def stream(self) -> "np.random.Generator":
        """The point's deterministic RNG stream (serial ≡ parallel)."""
        return self.sweep.rng_for(self.index)


@dataclass(frozen=True)
class RawRun:
    """What :meth:`Experiment.aggregate` receives: the ordered sweep
    results plus the scale they were produced at."""

    sweeps: tuple[SweepResult, ...]
    scale: ExperimentScale

    @property
    def payloads(self) -> list[Mapping[str, Any]]:
        """All per-point payloads, flattened across sweeps in order."""
        return [p for result in self.sweeps for p in result.payloads]


@dataclass(frozen=True)
class ExperimentResult:
    """Typed, versioned, serialisable result of one experiment run.

    ``data`` holds the experiment-specific structured payload (plain
    JSON types only — the producing :class:`Experiment` knows how to
    decode it back into its domain dataclasses); ``columns``/``rows``
    hold the flat tabular view used for CSV export.
    """

    experiment: str
    scale: str
    spec_hash: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    data: Mapping[str, Any]
    version: int = 1
    format: int = RESULT_FORMAT

    # -- serialisation ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": self.format,
            "experiment": self.experiment,
            "version": self.version,
            "scale": self.scale,
            "spec_hash": self.spec_hash,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        fmt = int(data.get("format", -1))
        if fmt != RESULT_FORMAT:
            raise ValidationError(
                f"unsupported result format {fmt}; this build reads "
                f"format {RESULT_FORMAT}"
            )
        return cls(
            experiment=str(data["experiment"]),
            version=int(data["version"]),
            scale=str(data["scale"]),
            spec_hash=str(data["spec_hash"]),
            columns=tuple(data["columns"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            data=dict(data["data"]),
            format=fmt,
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"not a result JSON document: {exc}") from None
        if not isinstance(data, dict):
            raise ValidationError("result JSON must be an object")
        return cls.from_dict(data)

    def to_csv(self) -> str:
        """The tabular view as CSV text (header + one line per row)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(list(row))
        return buffer.getvalue()


class Experiment(ABC):
    """Protocol/ABC every experiment driver implements.

    Subclasses declare identity via class attributes (``name``,
    ``title``, ``description``, ``version``, ``tags``) and implement
    the four hooks marked abstract below.  Everything else — flattening
    sweeps into :class:`Point` units, executing a point, running the
    whole experiment through a :class:`SweepEngine`, encoding the
    result — is provided generically so the CLI, cache, and golden
    machinery never special-case an experiment.

    The split between ``aggregate_domain``/``encode_data``/
    ``decode_data`` keeps the domain dataclasses (``Fig2Result`` …) as
    the primary objects: ``aggregate`` wraps them into a serialisable
    :class:`ExperimentResult` and ``render`` decodes back before
    formatting, so a result loaded with
    :meth:`ExperimentResult.from_json` renders identically to a fresh
    run.
    """

    #: Registry name; also the CLI subcommand.
    name: str = ""
    #: One-line title for ``repro-hydra list``.
    title: str = ""
    #: Longer description (subcommand help).
    description: str = ""
    #: Result-schema version (bump on incompatible ``data`` changes).
    version: int = 1
    #: Free-form labels.
    tags: tuple[str, ...] = ()
    #: CSV column names of the tabular view (empty → no CSV export).
    columns: tuple[str, ...] = ()
    #: Report/listing sort key (``repro-hydra all`` section order);
    #: ties break by registration order.  Plugins default to the end.
    order: int = 1000

    # -- identity --------------------------------------------------------

    def spec(self) -> ExperimentSpec:
        """The experiment's declarative spec."""
        return ExperimentSpec(
            name=self.name,
            title=self.title,
            description=self.description,
            version=self.version,
            tags=tuple(self.tags),
        )

    # -- the four experiment-specific hooks -------------------------------

    @abstractmethod
    def sweeps(self, scale: ExperimentScale) -> Sequence[SweepSpec]:
        """The sweep specs this experiment runs at ``scale`` (may be
        empty for experiments that compute inline, e.g. the search
        ablation)."""

    @abstractmethod
    def aggregate_domain(self, raw: RawRun) -> Any:
        """Fold the raw per-point payloads into the experiment's domain
        result object (``Fig2Result``, ``AllocatorComparison``, …)."""

    @abstractmethod
    def encode_data(self, domain: Any) -> dict[str, Any]:
        """Domain result → plain-JSON ``data`` payload (lists, dicts,
        scalars only — it must survive a JSON round trip unchanged)."""

    @abstractmethod
    def decode_data(self, data: Mapping[str, Any]) -> Any:
        """Inverse of :meth:`encode_data`."""

    @abstractmethod
    def render_domain(self, domain: Any) -> str:
        """Domain result → the report text the CLI prints."""

    # -- optional hooks ----------------------------------------------------

    def table_rows(self, domain: Any) -> Iterable[Sequence[Any]]:
        """Rows of the flat tabular (CSV) view; pairs with ``columns``."""
        return ()

    def golden_fixture(self) -> "GoldenFixture | None":
        """A small fixed-seed sweep pinning this experiment's behaviour
        (``None`` → no golden fixture)."""
        return None

    # -- generic machinery -------------------------------------------------

    def points(self, scale: ExperimentScale) -> list[Point]:
        """Every unit of work at ``scale``, flattened across sweeps."""
        return [
            Point(sweep=spec, index=index)
            for spec in self.sweeps(scale)
            for index in range(len(spec.points))
        ]

    def run_point(
        self, point: Point, stream: "np.random.Generator | None" = None
    ) -> dict[str, Any]:
        """Execute one :class:`Point` in-process.

        ``stream`` overrides the point's deterministic RNG stream;
        leave it ``None`` to reproduce exactly what the engine (serial,
        parallel, or cached) would compute.
        """
        if stream is None:
            return execute_point(point.sweep, point.index)
        runner = get_point_runner(point.sweep.kind)
        payload = runner(
            dict(point.params), dict(point.sweep.params), stream
        )
        return dict(payload)

    def spec_hash(self, scale: ExperimentScale) -> str:
        """Fingerprint of this experiment's full configuration at
        ``scale`` (see :func:`spec_hash`)."""
        return spec_hash(self.spec(), self.sweeps(scale))

    def aggregate(self, raw: RawRun) -> ExperimentResult:
        """Raw sweep results → a serialisable :class:`ExperimentResult`."""
        domain = self.aggregate_domain(raw)
        rows = tuple(
            tuple(_json_scalar(cell) for cell in row)
            for row in self.table_rows(domain)
        )
        return ExperimentResult(
            experiment=self.name,
            version=self.version,
            scale=raw.scale.name,
            spec_hash=self.spec_hash(raw.scale),
            columns=tuple(self.columns),
            rows=rows,
            data=self.encode_data(domain),
        )

    def check_result(self, result: ExperimentResult) -> None:
        """Reject results that belong to another experiment or schema."""
        if result.experiment != self.name:
            raise ValidationError(
                f"result belongs to experiment {result.experiment!r}, "
                f"not {self.name!r}"
            )
        if result.version != self.version:
            raise ValidationError(
                f"result schema v{result.version} does not match "
                f"{self.name} v{self.version}"
            )

    def render(self, result: ExperimentResult) -> str:
        """Render a (possibly deserialised) result as report text."""
        self.check_result(result)
        return self.render_domain(self.decode_data(result.data))

    def run_domain(
        self,
        scale: ExperimentScale | None = None,
        engine: SweepEngine | None = None,
        pool: "WorkerPool | None" = None,
    ) -> Any:
        """Run the experiment and return the *domain* result object
        (what the deprecated ``run_X`` shims hand back)."""
        scale = scale or get_scale()
        engine = engine or SweepEngine(pool=pool)
        results = tuple(engine.run(spec) for spec in self.sweeps(scale))
        return self.aggregate_domain(RawRun(sweeps=results, scale=scale))

    def run(
        self,
        scale: ExperimentScale | None = None,
        engine: SweepEngine | None = None,
        pool: "WorkerPool | None" = None,
    ) -> ExperimentResult:
        """Run the experiment end to end at ``scale`` through ``engine``.

        ``pool`` is a convenience for the engine-less call form: a
        :class:`~repro.experiments.pool.WorkerPool` to fan sweeps over
        (its creator keeps ownership — the experiment never shuts it
        down).  Ignored when ``engine`` is given, since an engine
        already carries its execution strategy.
        """
        scale = scale or get_scale()
        engine = engine or SweepEngine(pool=pool)
        results = tuple(engine.run(spec) for spec in self.sweeps(scale))
        return self.aggregate(RawRun(sweeps=results, scale=scale))


@dataclass(frozen=True)
class GoldenFixture:
    """A small fixed-seed sweep whose summary is pinned on disk.

    ``build_spec`` returns the (deliberately tiny) sweep spec;
    ``summarize`` folds the per-point payloads into the
    human-reviewable ``points`` list stored in the fixture JSON (the
    full payloads are additionally pinned via sha256 — see
    :mod:`repro.experiments.golden`).
    """

    name: str
    build_spec: Any  # Callable[[], SweepSpec]
    summarize: Any  # Callable[[SweepSpec, Sequence[Mapping]], list]
