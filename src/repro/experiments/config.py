"""Experiment scaling presets.

The paper's full evaluation (250 task sets × 39 utilisation points ×
3 core counts, 500 s schedules) is hours of compute; tests and default
bench runs need seconds-to-minutes.  Every experiment driver therefore
takes an :class:`ExperimentScale`:

* ``smoke`` — seconds; used by the integration tests.
* ``default`` — minutes; the pytest-benchmark default.
* ``paper`` — the paper's full parameters.

Select globally with the ``REPRO_SCALE`` environment variable (e.g.
``REPRO_SCALE=paper pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ValidationError

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the experiment drivers.

    Attributes
    ----------
    name:
        Preset label.
    tasksets_per_point:
        Synthetic task sets per utilisation point (paper: 250).
    utilization_step:
        Sweep step as a fraction of ``M`` (paper: 0.025).
    utilization_start, utilization_stop:
        Sweep endpoints as fractions of ``M`` (paper: 0.025 … 0.975).
    core_counts:
        Platforms to evaluate (paper: 2, 4, 8).
    sim_trials:
        Attack observations per (scheme, platform) for Fig. 1.
    sim_duration:
        Simulated horizon in ms (paper: 500 000).
    fig3_tasksets_per_point:
        Task sets per point for the (exponential-cost) OPT comparison.
    seed:
        Base RNG seed; every driver derives per-point streams from it.
    """

    name: str
    tasksets_per_point: int
    utilization_step: float
    core_counts: tuple[int, ...]
    sim_trials: int
    sim_duration: float
    fig3_tasksets_per_point: int
    utilization_start: float = 0.025
    utilization_stop: float = 0.975
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.tasksets_per_point < 1 or self.fig3_tasksets_per_point < 1:
            raise ValidationError("need at least one task set per point")
        if not (0 < self.utilization_step <= 1):
            raise ValidationError("utilization_step must lie in (0, 1]")
        if self.sim_trials < 1 or self.sim_duration <= 0:
            raise ValidationError("invalid simulation scale")
        if not self.core_counts:
            raise ValidationError("need at least one core count")

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        tasksets_per_point=6,
        utilization_step=0.25,
        utilization_start=0.25,
        utilization_stop=0.75,
        core_counts=(2,),
        sim_trials=8,
        sim_duration=30_000.0,
        fig3_tasksets_per_point=3,
    ),
    "default": ExperimentScale(
        name="default",
        tasksets_per_point=40,
        utilization_step=0.1,
        utilization_start=0.05,
        utilization_stop=0.95,
        core_counts=(2, 4, 8),
        sim_trials=60,
        sim_duration=120_000.0,
        fig3_tasksets_per_point=12,
    ),
    "paper": ExperimentScale(
        name="paper",
        tasksets_per_point=250,
        utilization_step=0.025,
        core_counts=(2, 4, 8),
        sim_trials=250,
        sim_duration=500_000.0,
        fig3_tasksets_per_point=50,
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, falling back to ``$REPRO_SCALE`` and then
    to ``default``."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "default")
    try:
        return SCALES[name]
    except KeyError:
        raise ValidationError(
            f"unknown scale {name!r}; expected one of {sorted(SCALES)}"
        ) from None
