"""Parallel, cached, resumable sweep engine for the experiments.

The paper's evaluation is a Monte-Carlo sweep: thousands of synthetic
task sets spread over a grid of utilisation points (Figs. 2–3) or a
handful of platform sizes (Fig. 1, Table I).  The seed code ran every
trial serially; this module makes the *utilisation point* the unit of
work and fans points out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is the design anchor:

* every point ``i`` of a sweep draws its randomness from the
  :class:`numpy.random.SeedSequence` child ``spawn(i)`` of the sweep
  seed — exactly the streams the serial code used via
  :func:`repro.experiments.runner.spawn_streams` — so serial and
  parallel runs produce **identical** trial sequences;
* every point's result is a plain-JSON payload, which makes results
  byte-comparable across worker counts and cacheable on disk
  (:class:`repro.experiments.store.ResultStore`): re-runs and extended
  sweeps only compute the points that are missing.

Experiment kinds are *registered point runners* — top-level functions
(picklable by name) taking ``(point, params, rng)`` and returning a
JSON payload.  The figure drivers build :class:`SweepSpec` objects and
feed them through a shared :class:`SweepEngine`.

The engine owns neither executors nor storage: parallel points fan out
over a reusable :class:`~repro.experiments.pool.WorkerPool` (by
default the process-wide shared pool, spawned lazily once and reused
across every sweep of a CLI invocation or pytest session), and cached
points are read/written in batches through the sharded
:class:`~repro.experiments.store.ResultStore`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from itertools import repeat
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from repro.errors import SweepCancelled, ValidationError
from repro.experiments.pool import WorkerPool, get_shared_pool
from repro.experiments.runner import TrialOutcome, run_acceptance_trial
from repro.experiments.store import CACHE_FORMAT, ResultStore
from repro.io import allocation_from_dict, allocation_to_dict
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executors.api import Executor

__all__ = [
    "SweepSpec",
    "SweepStats",
    "SweepResult",
    "SweepEngine",
    "register_point_runner",
    "get_point_runner",
    "execute_point",
    "outcome_to_dict",
    "outcome_from_dict",
    "synthetic_config_to_dict",
    "synthetic_config_from_dict",
    "build_allocator",
]


# -- serialisation helpers ---------------------------------------------------


def outcome_to_dict(outcome: TrialOutcome) -> dict[str, Any]:
    """JSON form of one :class:`TrialOutcome` (both schemes' verdicts)."""
    return {
        "utilization": outcome.utilization,
        "hydra": (
            allocation_to_dict(outcome.hydra)
            if outcome.hydra is not None
            else None
        ),
        "single": (
            allocation_to_dict(outcome.single)
            if outcome.single is not None
            else None
        ),
    }


def outcome_from_dict(data: Mapping[str, Any]) -> TrialOutcome:
    """Inverse of :func:`outcome_to_dict`."""
    return TrialOutcome(
        utilization=float(data["utilization"]),
        hydra=(
            allocation_from_dict(data["hydra"])
            if data.get("hydra") is not None
            else None
        ),
        single=(
            allocation_from_dict(data["single"])
            if data.get("single") is not None
            else None
        ),
    )


def synthetic_config_to_dict(config: SyntheticConfig) -> dict[str, Any]:
    """JSON form of a :class:`SyntheticConfig` (tuples become lists)."""
    return dataclasses.asdict(config)


def synthetic_config_from_dict(data: Mapping[str, Any]) -> SyntheticConfig:
    """Inverse of :func:`synthetic_config_to_dict`."""
    kwargs: dict[str, Any] = dict(data)
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(value)
    return SyntheticConfig(**kwargs)


def _config_from_params(params: Mapping[str, Any]) -> SyntheticConfig | None:
    raw = params.get("config")
    return synthetic_config_from_dict(raw) if raw is not None else None


# -- allocator lookup --------------------------------------------------------


def build_allocator(spec: str):
    """Instantiate an allocation scheme from its spec string.

    .. deprecated::
        Thin shim over :func:`repro.allocators.get_allocator`, the
        process-wide allocator registry (every registered strategy is
        accepted, not just the original five ablation specs).
    """
    from repro.allocators import get_allocator

    return get_allocator(spec)


# -- sweep specification -----------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A deterministic, JSON-serialisable description of one sweep.

    Attributes
    ----------
    kind:
        Registered point-runner name (e.g. ``"acceptance"``).
    seed:
        Sweep seed; point ``i`` uses SeedSequence child ``spawn(i)``.
    points:
        Per-point parameter dicts (JSON values only), e.g.
        ``{"utilization": 1.3}``.  Appending points to a sweep keeps
        the earlier points' streams — and cache entries — valid.
    params:
        Parameters shared by every point (JSON values only).
    """

    kind: str
    seed: int
    points: tuple[Mapping[str, Any], ...]
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.points:
            raise ValidationError("a sweep needs at least one point")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "seed": self.seed,
            "points": [dict(p) for p in self.points],
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        return cls(
            kind=data["kind"],
            seed=int(data["seed"]),
            points=tuple(dict(p) for p in data["points"]),
            params=dict(data.get("params", {})),
        )

    def key_payload(self, index: int) -> dict[str, Any]:
        """Everything that determines point ``index``'s result.

        Deliberately excludes the *number* of points: SeedSequence
        children depend only on the child index, so extending a sweep
        with more points leaves existing entries reusable.
        """
        return {
            "format": CACHE_FORMAT,
            "kind": self.kind,
            "seed": self.seed,
            "index": index,
            "point": dict(self.points[index]),
            "params": dict(self.params),
        }

    def rng_for(self, index: int) -> np.random.Generator:
        """The deterministic stream of point ``index`` (serial ≡ parallel)."""
        children = np.random.SeedSequence(self.seed).spawn(index + 1)
        return np.random.default_rng(children[index])


# -- point-runner registry ---------------------------------------------------

#: ``runner(point, params, rng) -> JSON payload``.
PointRunner = Callable[
    [Mapping[str, Any], Mapping[str, Any], np.random.Generator],
    Mapping[str, Any],
]

_POINT_RUNNERS: dict[str, PointRunner] = {}


def register_point_runner(
    kind: str,
) -> Callable[[PointRunner], PointRunner]:
    """Register a point runner under ``kind`` (decorator).

    Runners must be top-level functions: worker processes look them up
    by kind, so they need to be importable, and their payloads must be
    plain JSON so results cache and compare byte-identically.
    """

    def decorate(fn: PointRunner) -> PointRunner:
        if kind in _POINT_RUNNERS:
            raise ValidationError(f"point runner {kind!r} already registered")
        _POINT_RUNNERS[kind] = fn
        return fn

    return decorate


#: Modules whose import registers further built-in point runners.  A
#: worker process only imports *this* module (the pool pickles
#: ``_execute_point_job`` by reference), so runners living elsewhere —
#: e.g. the ``scenario`` runner — are resolved by importing their home
#: module on the first miss.
_RUNNER_MODULES = (
    "repro.experiments.scenario",
    "repro.experiments.detection",
    "repro.workloads.sample",
)


def get_point_runner(kind: str) -> PointRunner:
    if kind not in _POINT_RUNNERS:
        from importlib import import_module

        for module in _RUNNER_MODULES:
            import_module(module)
    try:
        return _POINT_RUNNERS[kind]
    except KeyError:
        raise ValidationError(
            f"unknown sweep kind {kind!r}; expected one of "
            f"{sorted(_POINT_RUNNERS)}"
        ) from None


def execute_point(spec: SweepSpec, index: int) -> dict[str, Any]:
    """Compute point ``index`` of ``spec`` (in-process)."""
    runner = get_point_runner(spec.kind)
    payload = runner(dict(spec.points[index]), dict(spec.params),
                     spec.rng_for(index))
    return dict(payload)


def _execute_point_job(spec_dict: dict[str, Any], index: int) -> dict[str, Any]:
    """Worker-side entry: rebuild the spec from JSON and run one point."""
    return execute_point(SweepSpec.from_dict(spec_dict), index)


# -- built-in point runners --------------------------------------------------


@register_point_runner("calibration")
def run_calibration_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """A near-zero-cost point: a single draw from the point's stream.

    Exists so the engine's own dispatch costs — pool fan-out, cache
    round-trips — can be measured and regression-gated with the actual
    mathematics factored out (see ``benchmarks/test_bench_parallel.py``
    and ``tools/check_bench.py``).  Deterministic like any other
    runner: the draw comes from the point's SeedSequence stream.
    """
    return {"point": dict(point), "value": float(rng.random())}


@register_point_runner("acceptance")
def run_acceptance_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """``tasksets_per_point`` HYDRA-vs-SingleCore trials at one
    utilisation (the Fig. 2 / quality-sweep workhorse)."""
    platform = Platform(int(params["cores"]))
    config = _config_from_params(params)
    outcomes = []
    for _ in range(int(params["tasksets_per_point"])):
        outcome = run_acceptance_trial(
            platform,
            float(point["utilization"]),
            rng,
            config=config,
            heuristic=params.get("heuristic", "best-fit"),
            admission=params.get("admission", "rta"),
        )
        outcomes.append(outcome_to_dict(outcome))
    return {"outcomes": outcomes}


def acceptance_outcomes(payload: Mapping[str, Any]) -> list[TrialOutcome]:
    """Decode an ``acceptance`` payload back into trial outcomes."""
    return [outcome_from_dict(d) for d in payload["outcomes"]]


@register_point_runner("fig3-gap")
def run_fig3_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """HYDRA-vs-OPT tightness gaps at one utilisation (Fig. 3)."""
    from repro.allocators import get_allocator
    from repro.experiments.runner import build_hydra_system
    from repro.metrics.improvement import tightness_gap
    from repro.taskgen.synthetic import generate_workload

    platform = Platform(int(params["cores"]))
    config = _config_from_params(params)
    hydra = get_allocator("hydra")
    search = params.get("search", "branch-bound")
    optimal = get_allocator(
        "optimal" if search == "exhaustive" else f"optimal[{search}]"
    )
    gaps: list[float] = []
    hydra_failures = 0
    for _ in range(int(params["tasksets_per_point"])):
        workload = generate_workload(
            platform, float(point["utilization"]), rng, config
        )
        system = build_hydra_system(workload)
        if system is None:
            continue  # unschedulable for both: nothing to compare
        opt_alloc = optimal.allocate(system)
        if not opt_alloc.schedulable:
            continue
        eta_opt = opt_alloc.cumulative_tightness()
        hydra_alloc = hydra.allocate(system)
        if not hydra_alloc.schedulable:
            gaps.append(100.0)
            hydra_failures += 1
            continue
        gaps.append(tightness_gap(eta_opt, hydra_alloc.cumulative_tightness()))
    return {"gaps": gaps, "hydra_failures": hydra_failures}


@register_point_runner("uav-detection")
def run_uav_detection_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """Simulated attack-detection times for one core count (Fig. 1).

    Ignores the engine-provided stream: Fig. 1's RNG is historically
    derived as ``default_rng(seed + 100 + cores)`` shared across both
    schemes, and keeping that derivation preserves the seed results
    bit-for-bit.
    """
    from repro.experiments.fig1 import build_uav_systems, observe_detections

    cores = int(point["cores"])
    hydra_system, hydra_alloc, single_system, single_alloc = (
        build_uav_systems(cores)
    )
    fig1_rng = np.random.default_rng(int(params["seed"]) + 100 + cores)
    observe = dict(
        sim_duration=float(params["sim_duration"]),
        sim_trials=int(params["sim_trials"]),
        policy=params.get("policy", "release-after"),
        release_jitter=float(params.get("release_jitter", 0.0)),
    )
    hydra_times, hydra_censored, _ = observe_detections(
        hydra_system, hydra_alloc, rng=fig1_rng, **observe
    )
    single_times, single_censored, _ = observe_detections(
        single_system, single_alloc, rng=fig1_rng, **observe
    )
    # Every Table I surface is monitored, so undetected == censored by
    # the horizon here; the counts make that explicit in the payload.
    return {
        "cores": cores,
        "hydra_times": list(hydra_times),
        "hydra_censored": hydra_censored,
        "single_times": list(single_times),
        "single_censored": single_censored,
    }


@register_point_runner("table1")
def run_table1_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """The extended Table I rows for one UAV platform size."""
    from repro.experiments.fig1 import build_uav_systems
    from repro.taskgen.security_apps import TABLE1_SPECS

    _, hydra_alloc, _, single_alloc = build_uav_systems(int(point["cores"]))
    rows = []
    for spec in TABLE1_SPECS:
        hydra_assignment = hydra_alloc.assignment_for(spec.name)
        single_assignment = single_alloc.assignment_for(spec.name)
        rows.append(
            {
                "name": spec.name,
                "application": spec.application,
                "function": spec.function,
                "surface": spec.surface,
                "wcet": spec.wcet,
                "period_des": spec.period_des,
                "period_max": spec.period_max,
                "hydra_core": hydra_assignment.core,
                "hydra_period": hydra_assignment.period,
                "single_period": single_assignment.period,
            }
        )
    return {"rows": rows}


@register_point_runner("allocator-comparison")
def run_allocator_comparison_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """Acceptance/tightness of several allocators on shared task sets
    at one utilisation (solver and core-choice ablations)."""
    from repro.experiments.runner import build_hydra_system
    from repro.taskgen.synthetic import generate_workload

    platform = Platform(int(params["cores"]))
    config = _config_from_params(params)
    allocators = [build_allocator(s) for s in params["allocators"]]
    cells = {
        a.name: {"accepted": 0, "total": 0, "tightness_sum": 0.0}
        for a in allocators
    }
    for _ in range(int(params["tasksets_per_point"])):
        workload = generate_workload(
            platform, float(point["utilization"]), rng, config
        )
        system = build_hydra_system(workload)
        for allocator in allocators:
            cell = cells[allocator.name]
            cell["total"] += 1
            if system is None:
                continue
            allocation = allocator.allocate(system)
            if allocation.schedulable:
                cell["accepted"] += 1
                cell["tightness_sum"] += allocation.mean_tightness()
    return {"cells": cells}


@register_point_runner("partitioning")
def run_partitioning_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """HYDRA acceptance/tightness under different real-time
    partitioning heuristics on shared task sets (partitioning
    ablation)."""
    from repro.allocators import get_allocator
    from repro.experiments.runner import build_hydra_system
    from repro.taskgen.synthetic import generate_workload

    platform = Platform(int(params["cores"]))
    config = _config_from_params(params)
    heuristics = list(params["heuristics"])
    allocator = get_allocator(params.get("allocator", "hydra"))
    cells = {
        h: {"accepted": 0, "total": 0, "tightness_sum": 0.0}
        for h in heuristics
    }
    for _ in range(int(params["tasksets_per_point"])):
        workload = generate_workload(
            platform, float(point["utilization"]), rng, config
        )
        for heuristic in heuristics:
            cell = cells[heuristic]
            cell["total"] += 1
            system = build_hydra_system(workload, heuristic=heuristic)
            if system is None:
                continue
            allocation = allocator.allocate(system)
            if allocation.schedulable:
                cell["accepted"] += 1
                cell["tightness_sum"] += allocation.mean_tightness()
    return {"cells": cells}


# -- the engine --------------------------------------------------------------


@dataclass
class SweepStats:
    """Where a sweep's points came from."""

    computed_points: int = 0
    cached_points: int = 0

    @property
    def total_points(self) -> int:
        return self.computed_points + self.cached_points


@dataclass(frozen=True)
class SweepResult:
    """Ordered per-point payloads of one sweep."""

    spec: SweepSpec
    payloads: tuple[Mapping[str, Any], ...]
    stats: SweepStats

    def __len__(self) -> int:
        return len(self.payloads)


class SweepEngine:
    """Runs :class:`SweepSpec` sweeps — serially or over a worker pool,
    optionally backed by an on-disk :class:`ResultStore`.

    The engine does not own an executor: parallel points go through a
    :class:`~repro.experiments.pool.WorkerPool` that outlives any one
    sweep.  Pass one explicitly to control its lifetime; otherwise a
    ``workers > 1`` engine lazily attaches to the process-wide shared
    pool (:func:`~repro.experiments.pool.get_shared_pool`), so chained
    sweeps — all panels of ``repro-hydra all``, a whole pytest session
    — fan out over the *same* processes instead of re-forking per
    sweep.

    Parameters
    ----------
    workers:
        ``None``/``0``/``1`` → serial in-process execution; ``n > 1`` →
        fan points over ``n`` pooled workers.  Results are identical
        either way (per-point SeedSequence streams).
    cache:
        A :class:`ResultStore` (or the deprecated ``ResultCache``
        alias), a directory path, or ``None`` to disable caching.
        Paths open a sharded v2 store, migrating any v1 entries found
        there.  Lookups and writes are batched per sweep
        (``get_many``/``put_many``).
    on_point_computed:
        Optional hook called (in the parent process) with the point
        index after each point is *computed* — cache hits do not fire
        it.  The determinism tests use it to prove warm runs recompute
        nothing.
    pool:
        A :class:`~repro.experiments.pool.WorkerPool` to fan out over.
        The engine never shuts it down — the creator owns its
        lifecycle.  When given, it also defaults ``workers`` to the
        pool's size.
    should_cancel:
        Optional cooperative-cancellation hook (the
        :class:`~repro.jobs.JobRunner` sets it).  When given, missing
        points are computed — and cached — in pool-sized batches with
        the hook checked between batches; a pending cancellation
        raises :class:`~repro.errors.SweepCancelled` mid-sweep, and
        the batches already computed stay cached so a resubmission
        resumes instead of restarting.  ``None`` (the default) keeps
        the single-shot compute path.
    executor:
        An execution backend — an :class:`~repro.executors.Executor`
        instance or a registry name (``"serial"``, ``"pool"``,
        ``"subprocess-workers"``, any plugin) — that replaces the
        engine's built-in serial/pool dispatch for every computed
        point.  ``None`` (the default) keeps the historic behaviour
        exactly: serial for ``workers <= 1``, the shared pool
        otherwise.  Backends are payload-identical by contract, so
        the choice never changes a result byte (and is therefore not
        part of any cache key).  The engine never closes an executor
        it was handed — the creator owns its lifecycle (a name is
        resolved once, and the instance is cleaned up at interpreter
        exit if nothing closes it earlier).
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: ResultStore | str | None = None,
        on_point_computed: Callable[[int], None] | None = None,
        pool: WorkerPool | None = None,
        should_cancel: Callable[[], bool] | None = None,
        executor: "Executor | str | None" = None,
    ) -> None:
        if workers is not None and workers < 0:
            raise ValidationError(f"workers must be >= 0, got {workers}")
        if isinstance(executor, str):
            from repro.executors import get_executor

            executor = get_executor(executor, workers=workers)
        self.executor = executor
        if workers is None and executor is not None:
            self.workers = max(1, executor.workers)
        elif workers is None and pool is not None:
            self.workers = pool.max_workers
        else:
            self.workers = max(1, int(workers or 1))
        if cache is not None and not isinstance(cache, ResultStore):
            cache = ResultStore(cache)
        self.cache = cache
        self.on_point_computed = on_point_computed
        self.should_cancel = should_cancel
        self._injected_pool = pool
        self._attached_pool: WorkerPool | None = None

    @property
    def pool(self) -> WorkerPool | None:
        """The pool this engine fans out over (``None`` until a
        parallel engine first needs one)."""
        return self._injected_pool or self._attached_pool

    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute ``spec``, returning per-point payloads in order."""
        # Consult the cancel hook before doing anything — including
        # the cache probe: a job cancelled while queued must report
        # cancelled even when a warm cache could have served every
        # point without computing.
        if self.should_cancel is not None and self.should_cancel():
            raise SweepCancelled(
                f"sweep {spec.kind!r} cancelled before it started"
            )
        stats = SweepStats()
        payloads: list[Mapping[str, Any] | None] = [None] * len(spec.points)

        missing: list[int] = []
        key_payloads: list[dict[str, Any]] = []
        if self.cache is not None:
            key_payloads = [
                spec.key_payload(index) for index in range(len(spec.points))
            ]
            for index, cached in enumerate(
                self.cache.get_many(spec.kind, key_payloads)
            ):
                if cached is not None:
                    payloads[index] = cached
                    stats.cached_points += 1
                else:
                    missing.append(index)
        else:
            missing = list(range(len(spec.points)))

        if missing:
            if self.should_cancel is None:
                batches: Sequence[Sequence[int]] = (missing,)
            else:
                # Cancellable runs compute in pool-sized batches so the
                # hook is consulted mid-sweep; each batch is cached as
                # it lands, making a cancelled job resumable.
                chunk = max(1, self.workers)
                batches = [
                    missing[start:start + chunk]
                    for start in range(0, len(missing), chunk)
                ]
            for batch in batches:
                if self.should_cancel is not None and self.should_cancel():
                    raise SweepCancelled(
                        f"sweep {spec.kind!r} cancelled after "
                        f"{stats.computed_points} of {len(missing)} "
                        f"pending points"
                    )
                computed = self._compute(spec, batch)
                if self.cache is not None:
                    self.cache.put_many(
                        spec.kind,
                        [(key_payloads[i], p) for i, p in computed],
                    )
                for index, payload in computed:
                    payloads[index] = payload
                    stats.computed_points += 1
                    if self.on_point_computed is not None:
                        self.on_point_computed(index)

        return SweepResult(
            spec=spec,
            payloads=tuple(payloads),  # type: ignore[arg-type]
            stats=stats,
        )

    def _compute(
        self, spec: SweepSpec, indices: Sequence[int]
    ) -> list[tuple[int, dict[str, Any]]]:
        if self.executor is not None:
            return self.executor.run_points(spec, list(indices))
        pool = self._resolve_pool(len(indices))
        if pool is None:
            return [(i, execute_point(spec, i)) for i in indices]
        spec_dict = spec.to_dict()
        # One utilisation point per task keeps the pool busy even
        # though per-point cost grows steeply with utilisation; the
        # limit keeps a wider shared pool to this engine's requested
        # parallelism.
        computed = pool.map(
            _execute_point_job, repeat(spec_dict), indices,
            limit=self.workers,
        )
        return list(zip(indices, computed))

    def _resolve_pool(self, pending: int) -> WorkerPool | None:
        """The pool to fan ``pending`` points over (``None`` → serial).

        An injected pool is used as-is (its own size 1 already means
        serial).  A pool-less parallel engine asks for the *current*
        shared pool on every compute — deliberately not cached, so a
        shared pool that was grown or shut down between sweeps is never
        revived as an orphan — which means merely *constructing*
        engines never touches process machinery.
        """
        if pending == 1:
            return None
        pool = self._injected_pool
        if pool is None and self.workers > 1:
            pool = self._attached_pool = get_shared_pool(self.workers)
        if pool is None or pool.max_workers == 1:
            return None
        return pool
