"""User-defined scenario sweeps: TOML in, experiment out.

The paper evaluates one design point (best-fit partitioning,
utilisation ordering, exact-RTA admission).  The design *space* is a
grid — placement heuristic × task ordering × admission test × core
count — and exploring it should not require writing a driver.  This
module turns a small declarative TOML document into a first-class
:class:`~repro.experiments.api.Experiment` that runs through the same
engine (parallel, cached, byte-deterministic) as the paper figures::

    [sweep]
    name = "bf-vs-wf"
    # optional overrides; defaults come from the --scale preset
    # seed = 2018
    # tasksets_per_point = 12
    # utilization = { start = 0.25, stop = 0.75, step = 0.25 }

    [grid]
    cores = [4, 8]
    heuristic = ["best-fit", "worst-fit"]
    ordering = ["rm", "utilization"]
    admission = ["rta"]
    # optional: sweep the *allocation strategy* itself — any spec
    # registered in repro.allocators (see 'repro-hydra allocators')
    allocator = ["hydra", "optimal[branch-bound]", "binpack-best-fit"]
    # optional: sweep the *workload family* too — any spec registered
    # in repro.workloads (see 'repro-hydra workloads')
    workload = ["paper-synthetic", "uunifast", "heavy-security"]

Run it with ``repro-hydra sweep --config scenario.toml``.  Each grid
cell is labelled ``heuristic/ordering/admission`` (prefixed with the
allocator spec when an ``allocator`` axis is present, and with
``workload::`` when a ``workload`` axis is) and reported as an
acceptance + mean-tightness comparison per core count.  Every
combination evaluates the *same* generated task sets at each
utilisation point, so cells are directly comparable.  The ``allocator``
axis is the design space the paper is about: without it the sweep runs
HYDRA (the paper's fixed choice); with it, every named strategy —
heuristics, LP/GP-backed solvers, optimal searches — competes on
identical workloads.  The ``workload`` axis varies the *supply side*:
without it every cell generates with the paper's Sec. IV-B recipe
(labels and cache keys byte-identical to earlier releases); with it,
each named family — UUniFast splitters, period regimes, the
heavy-security profile, the fixed case studies — generates its own
shared task sets per point.  The ``singlecore`` strategy implies its
own real-time packing (M−1 cores + a dedicated security core) and the
runner prepares that system automatically.

Scenario sweeps ride the same execution/storage layer as the paper
figures: chained ``sweep --config`` runs in one CLI invocation reuse
the shared persistent :class:`~repro.experiments.pool.WorkerPool`
(one fork total), and ``--cache-dir`` shards land in the same
:class:`~repro.experiments.store.ResultStore`, so a grid can be
extended axis by axis with only the new cells computing.
"""

from __future__ import annotations

import dataclasses
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.analysis.schedulability import ADMISSION_TESTS as _ADMISSIONS
from repro.errors import ValidationError
from repro.experiments.ablations import (
    AllocatorComparison,
    _cells_from_payloads,
    _comparison_from_data,
    _comparison_to_data,
    format_allocator_comparison,
)
from repro.experiments.api import Experiment, RawRun
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel import register_point_runner
from repro.model.platform import Platform
from repro.partition.heuristics import HEURISTICS, ORDERINGS
from repro.taskgen.synthetic import utilization_sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepSpec

__all__ = [
    "ScenarioConfig",
    "ScenarioPanel",
    "ScenarioResult",
    "ScenarioExperiment",
    "SCENARIO_KINDS",
    "load_scenario",
    "parse_scenario",
    "build_scenario_experiment",
    "combo_label",
]

#: Result families a TOML scenario can request via ``[sweep] kind``.
#: ``"acceptance"`` is the classic acceptance/tightness comparison;
#: ``"detection-latency"`` simulates attack injection and reports
#: detection-time distributions (see repro.experiments.detection).
SCENARIO_KINDS = ("acceptance", "detection-latency")


def combo_label(
    heuristic: str,
    ordering: str,
    admission: str,
    allocator: str | None = None,
    workload: str | None = None,
    policy: str | None = None,
) -> str:
    """Scheme label of one grid cell, e.g. ``best-fit/rm/rta`` —
    prefixed ``hydra|…`` when the sweep has an allocator axis,
    ``uunifast::…`` when it has a workload axis, and suffixed
    ``…@release-after`` when a detection-latency sweep has a policy
    axis."""
    label = f"{heuristic}/{ordering}/{admission}"
    if allocator is not None:
        label = f"{allocator}|{label}"
    if workload is not None:
        label = f"{workload}::{label}"
    if policy is not None:
        label = f"{label}@{policy}"
    return label


@dataclass(frozen=True)
class ScenarioConfig:
    """Validated scenario description (the parsed TOML document).

    ``utilization_*`` and ``tasksets_per_point``/``seed`` of ``None``
    mean "inherit from the scale preset".
    """

    name: str
    cores: tuple[int, ...]
    heuristics: tuple[str, ...]
    orderings: tuple[str, ...]
    admissions: tuple[str, ...]
    #: Allocation strategies (registry specs).  ``allocator_axis`` is
    #: ``False`` when the config never named an ``allocator`` axis: the
    #: sweep then runs HYDRA exactly as before, with unchanged cell
    #: labels and cache keys.
    allocators: tuple[str, ...] = ("hydra",)
    allocator_axis: bool = False
    #: Workload families (registry specs).  ``workload_axis`` is
    #: ``False`` when the config never named a ``workload`` axis: the
    #: sweep then generates with the paper recipe exactly as before,
    #: with unchanged cell labels and cache keys.
    workloads: tuple[str, ...] = ("paper-synthetic",)
    workload_axis: bool = False
    #: Result family: ``"acceptance"`` (default, unchanged labels and
    #: cache keys) or ``"detection-latency"`` (attack-injection
    #: simulation; see repro.experiments.detection).
    kind: str = "acceptance"
    #: Detection policies (``sim.detection.DETECTION_POLICIES`` specs).
    #: ``policy_axis`` is ``False`` when the config never named a
    #: ``policy`` axis; only meaningful for the detection kind.
    policies: tuple[str, ...] = ("release-after",)
    policy_axis: bool = False
    #: Simulation overrides for the detection kind; ``None`` inherits
    #: ``sim_trials`` (attacks per task set) and ``sim_duration_ms``
    #: from the scale preset.
    sim_trials: int | None = None
    sim_duration: float | None = None
    seed: int | None = None
    tasksets_per_point: int | None = None
    utilization_start: float | None = None
    utilization_stop: float | None = None
    utilization_step: float | None = None
    title: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValidationError(
                f"invalid scenario config: unknown kind {self.kind!r}; "
                f"expected one of {list(SCENARIO_KINDS)}"
            )
        # SingleCore dedicates one core to security, so it needs M ≥ 2;
        # reject the combination at config time (both the TOML path and
        # the --allocator override construct a ScenarioConfig) instead
        # of letting build_singlecore_system raise mid-sweep.
        if "singlecore" in self.allocators:
            bad = [c for c in self.cores if c < 2]
            if bad:
                raise ValidationError(
                    f"invalid scenario config: allocator 'singlecore' "
                    f"needs at least 2 cores (one is dedicated to "
                    f"security tasks), but the cores axis includes {bad}"
                )

    @property
    def combos(self) -> list[dict[str, str]]:
        """All grid cells, in grid order.

        Each cell is a ``{heuristic, ordering, admission}`` dict, with
        an ``allocator`` key when the sweep has an allocator axis and a
        ``workload`` key when it has a workload axis.
        """
        cells = []
        for wl in self.workloads:
            for alloc in self.allocators:
                for h in self.heuristics:
                    for o in self.orderings:
                        for a in self.admissions:
                            for p in self.policies:
                                cell = {
                                    "heuristic": h, "ordering": o,
                                    "admission": a,
                                }
                                if self.allocator_axis:
                                    cell = {"allocator": alloc, **cell}
                                if self.workload_axis:
                                    cell = {"workload": wl, **cell}
                                if self.policy_axis:
                                    cell = {**cell, "policy": p}
                                cells.append(cell)
                                if not self.policy_axis:
                                    break
        return cells

    def with_allocators(self, allocators: Sequence[str]) -> "ScenarioConfig":
        """A copy sweeping ``allocators`` (the ``--allocator`` override).

        Validates like the TOML axis: every spec must be registered
        (unknown names raise the registry's typed error listing what is
        known) and duplicates are rejected, not silently double-counted.
        """
        from repro.allocators import get_allocator_info

        seen: set[str] = set()
        for spec in allocators:
            get_allocator_info(spec)
            if spec in seen:
                raise ValidationError(
                    f"invalid scenario config: --allocator {spec!r} "
                    f"given more than once"
                )
            seen.add(spec)
        return dataclasses.replace(
            self, allocators=tuple(allocators), allocator_axis=True
        )

    def with_workloads(self, workloads: Sequence[str]) -> "ScenarioConfig":
        """A copy sweeping ``workloads`` (the ``--workload`` override).

        Validates like the TOML axis: every spec must be registered
        (unknown names raise the registry's typed
        :class:`~repro.workloads.UnknownWorkloadError` listing what is
        known) and duplicates are rejected, not silently
        double-counted.
        """
        from repro.workloads import get_workload_info

        seen: set[str] = set()
        for spec in workloads:
            get_workload_info(spec)
            if spec in seen:
                raise ValidationError(
                    f"invalid scenario config: --workload {spec!r} "
                    f"given more than once"
                )
            seen.add(spec)
        return dataclasses.replace(
            self, workloads=tuple(workloads), workload_axis=True
        )


def _require(
    condition: bool, message: str
) -> None:
    if not condition:
        raise ValidationError(f"invalid scenario config: {message}")


def parse_scenario(document: Mapping[str, Any]) -> ScenarioConfig:
    """Validate a parsed TOML document into a :class:`ScenarioConfig`.

    Every rejection names the offending key and the accepted values, so
    a typo in a config fails before any compute is spent.
    """
    _require(isinstance(document, Mapping), "top level must be a table")
    unknown = set(document) - {"sweep", "grid"}
    _require(
        not unknown,
        f"unknown top-level section(s) {sorted(unknown)}; expected "
        f"[sweep] and [grid]",
    )
    sweep = document.get("sweep", {})
    grid = document.get("grid")
    _require(isinstance(sweep, Mapping), "[sweep] must be a table")
    _require(
        isinstance(grid, Mapping) and len(grid) > 0,
        "missing [grid] section (cores/heuristic/ordering/admission axes)",
    )

    known_sweep = {
        "name", "title", "description", "seed", "tasksets_per_point",
        "utilization", "kind", "sim_trials", "sim_duration",
    }
    unknown = set(sweep) - known_sweep
    _require(
        not unknown,
        f"unknown [sweep] key(s) {sorted(unknown)}; expected "
        f"{sorted(known_sweep)}",
    )
    known_grid = {
        "cores", "heuristic", "ordering", "admission", "allocator",
        "workload", "policy",
    }
    unknown = set(grid) - known_grid
    _require(
        not unknown,
        f"unknown [grid] key(s) {sorted(unknown)}; expected "
        f"{sorted(known_grid)}",
    )

    kind = sweep.get("kind", "acceptance")
    _require(
        kind in SCENARIO_KINDS,
        f"[sweep] kind must be one of {list(SCENARIO_KINDS)}, "
        f"got {kind!r}",
    )
    for key in ("sim_trials", "sim_duration", ):
        _require(
            kind == "detection-latency" or sweep.get(key) is None,
            f"[sweep] {key} is only valid with "
            f"kind = 'detection-latency'",
        )
    _require(
        kind == "detection-latency" or "policy" not in grid,
        "[grid] policy axis requires [sweep] kind = 'detection-latency'",
    )
    sim_trials = sweep.get("sim_trials")
    _require(
        sim_trials is None
        or (isinstance(sim_trials, int) and sim_trials >= 1),
        "[sweep] sim_trials must be an integer >= 1",
    )
    sim_duration = sweep.get("sim_duration")
    _require(
        sim_duration is None
        or (isinstance(sim_duration, (int, float)) and sim_duration > 0),
        "[sweep] sim_duration must be a positive number (milliseconds)",
    )

    def axis(key: str, allowed: Sequence[str] | None) -> tuple:
        values = grid.get(key)
        _require(
            isinstance(values, list) and len(values) > 0,
            f"[grid] {key} must be a non-empty list",
        )
        if allowed is not None:
            bad = [v for v in values if v not in allowed]
            _require(
                not bad,
                f"[grid] {key} has unknown value(s) {bad}; expected a "
                f"subset of {list(allowed)}",
            )
        _require(
            len(set(values)) == len(values),
            f"[grid] {key} has duplicate values",
        )
        return tuple(values)

    cores_values = grid.get("cores")
    _require(
        isinstance(cores_values, list) and len(cores_values) > 0,
        "[grid] cores must be a non-empty list of core counts",
    )
    _require(
        all(isinstance(c, int) and c >= 1 for c in cores_values),
        "[grid] cores entries must be integers >= 1",
    )
    _require(
        len(set(cores_values)) == len(cores_values),
        "[grid] cores has duplicate values",
    )

    name = sweep.get("name", "custom-sweep")
    _require(
        isinstance(name, str) and name != "",
        "[sweep] name must be a non-empty string",
    )
    seed = sweep.get("seed")
    _require(
        seed is None or isinstance(seed, int),
        "[sweep] seed must be an integer",
    )
    tasksets = sweep.get("tasksets_per_point")
    _require(
        tasksets is None or (isinstance(tasksets, int) and tasksets >= 1),
        "[sweep] tasksets_per_point must be an integer >= 1",
    )

    util = sweep.get("utilization", {})
    _require(
        isinstance(util, Mapping),
        "[sweep] utilization must be a table of start/stop/step",
    )
    unknown = set(util) - {"start", "stop", "step"}
    _require(
        not unknown,
        f"unknown [sweep] utilization key(s) {sorted(unknown)}; expected "
        f"start/stop/step",
    )
    for key in ("start", "stop", "step"):
        value = util.get(key)
        _require(
            value is None or (
                isinstance(value, (int, float)) and 0 < float(value) <= 1
            ),
            f"[sweep] utilization {key} must lie in (0, 1]",
        )
    if util.get("start") is not None and util.get("stop") is not None:
        _require(
            float(util["start"]) <= float(util["stop"]),
            "[sweep] utilization start must not exceed stop",
        )

    allocator_axis = "allocator" in grid
    if allocator_axis:
        from repro.allocators import allocator_names

        allocators = axis("allocator", allocator_names())
    else:
        allocators = ("hydra",)

    workload_axis = "workload" in grid
    if workload_axis:
        from repro.workloads import workload_names

        workloads = axis("workload", workload_names())
    else:
        workloads = ("paper-synthetic",)

    policy_axis = "policy" in grid
    if policy_axis:
        from repro.sim.detection import DETECTION_POLICIES

        policies = axis("policy", DETECTION_POLICIES)
    else:
        policies = ("release-after",)

    return ScenarioConfig(
        name=name,
        title=str(sweep.get("title", "")),
        description=str(sweep.get("description", "")),
        cores=tuple(int(c) for c in cores_values),
        heuristics=axis("heuristic", HEURISTICS),
        orderings=axis("ordering", ORDERINGS),
        admissions=axis("admission", _ADMISSIONS),
        allocators=allocators,
        allocator_axis=allocator_axis,
        workloads=workloads,
        workload_axis=workload_axis,
        kind=kind,
        policies=policies,
        policy_axis=policy_axis,
        sim_trials=sim_trials,
        sim_duration=(
            float(sim_duration) if sim_duration is not None else None
        ),
        seed=seed,
        tasksets_per_point=tasksets,
        utilization_start=(
            float(util["start"]) if util.get("start") is not None else None
        ),
        utilization_stop=(
            float(util["stop"]) if util.get("stop") is not None else None
        ),
        utilization_step=(
            float(util["step"]) if util.get("step") is not None else None
        ),
    )


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Parse and validate a scenario TOML file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ValidationError(f"cannot read scenario config: {exc}") from None
    try:
        document = tomllib.loads(raw.decode())
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
        raise ValidationError(
            f"{path} is not valid TOML: {exc}"
        ) from None
    return parse_scenario(document)


# -- point runner ------------------------------------------------------------


@register_point_runner("scenario")
def run_scenario_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """Acceptance/tightness for every grid combo — (allocator,)
    heuristic, ordering, admission — on shared task sets at one
    utilisation point.

    The allocation strategy is resolved through the
    :mod:`repro.allocators` registry (``"hydra"`` when the sweep has no
    allocator axis) and the task-set generator through the
    :mod:`repro.workloads` registry (``"paper-synthetic"`` — the
    legacy recipe, byte-identical — when the sweep has no workload
    axis).  Every combo sharing a workload family evaluates the *same*
    generated task sets.  With a workload axis, each family generates
    its whole point batch in one vectorised
    :meth:`~repro.workloads.api.WorkloadGenerator.generate_batch`
    call, families in grid order from the point's single stream —
    *appending* a family to the axis therefore never perturbs the
    earlier families' task sets (mirroring how appending utilisation
    points keeps earlier streams valid).  Without the axis the runner
    keeps the legacy per-instance loop, byte-identical to the
    pre-workload-axis payloads.  The ``singlecore`` strategy
    implies its own system shape — real-time tasks packed onto ``M−1``
    cores, the last core dedicated to security — so it is prepared via
    :func:`~repro.core.singlecore.build_singlecore_system` with the
    combo's heuristic/ordering/admission; every other strategy runs on
    the all-cores partition.
    """
    from repro.allocators import get_allocator
    from repro.core.singlecore import build_singlecore_system
    from repro.model.system import SystemModel
    from repro.partition.heuristics import try_partition_tasks
    from repro.workloads import get_workload

    platform = Platform(int(params["cores"]))
    combos = [dict(c) for c in params["combos"]]
    allocators = {
        spec: get_allocator(spec)
        for spec in {c.get("allocator", "hydra") for c in combos}
    }
    workload_specs: list[str] = []
    for combo in combos:
        spec = combo.get("workload", "paper-synthetic")
        if spec not in workload_specs:
            workload_specs.append(spec)
    generators = {spec: get_workload(spec) for spec in workload_specs}
    cells = {
        combo_label(**c): {"accepted": 0, "total": 0, "tightness_sum": 0.0}
        for c in combos
    }
    tasksets = int(params["tasksets_per_point"])
    utilization = float(point["utilization"])
    workload_axis = any("workload" in c for c in combos)
    if workload_axis:
        batches = {
            spec: generators[spec].generate_batch(
                platform, [utilization] * tasksets, rng
            )
            for spec in workload_specs
        }
    for index in range(tasksets):
        for wl_spec in workload_specs:
            if workload_axis:
                workload = batches[wl_spec][index]
            else:
                workload = generators[wl_spec].generate(
                    platform, utilization, rng
                )
            for combo in combos:
                if combo.get("workload", "paper-synthetic") != wl_spec:
                    continue
                cell = cells[combo_label(**combo)]
                cell["total"] += 1
                spec = combo.get("allocator", "hydra")
                if spec == "singlecore":
                    system = build_singlecore_system(
                        platform,
                        workload.rt_tasks,
                        workload.security_tasks,
                        heuristic=combo["heuristic"],
                        admission=combo["admission"],
                        ordering=combo["ordering"],
                    )
                    if system is None:
                        continue
                else:
                    partition = try_partition_tasks(
                        workload.rt_tasks,
                        platform,
                        heuristic=combo["heuristic"],
                        admission=combo["admission"],
                        ordering=combo["ordering"],
                    )
                    if partition is None:
                        continue
                    system = SystemModel(
                        platform=platform,
                        rt_partition=partition,
                        security_tasks=workload.security_tasks,
                    )
                allocation = allocators[spec].allocate(system)
                if allocation.schedulable:
                    cell["accepted"] += 1
                    cell["tightness_sum"] += allocation.mean_tightness()
    return {"cells": cells}


# -- the experiment ----------------------------------------------------------


@dataclass(frozen=True)
class ScenarioPanel:
    """One core count's comparison across all grid cells."""

    cores: int
    comparison: AllocatorComparison


@dataclass(frozen=True)
class ScenarioResult:
    """All panels of one scenario sweep."""

    name: str
    scale: str
    panels: tuple[ScenarioPanel, ...] = field(default_factory=tuple)


class ScenarioExperiment(Experiment):
    """A TOML-defined design-space sweep on the experiment protocol.

    Not registered by name — the CLI's ``sweep`` subcommand builds one
    from ``--config``; programmatic callers construct it from a
    :class:`ScenarioConfig` (see :func:`load_scenario`).
    """

    version = 1
    tags = ("scenario",)
    columns = (
        "cores", "utilization", "scheme", "acceptance", "mean_tightness",
    )
    #: Scenario kind this class consumes; subclasses override.  Guards
    #: against running a detection-latency config through the
    #: acceptance aggregation (use build_scenario_experiment).
    scenario_kind = "acceptance"

    def __init__(self, config: ScenarioConfig) -> None:
        if config.kind != self.scenario_kind:
            raise ValidationError(
                f"{type(self).__name__} handles kind "
                f"{self.scenario_kind!r}, got {config.kind!r}; build via "
                f"build_scenario_experiment()"
            )
        self.config = config
        self.name = f"sweep:{config.name}"
        self.title = config.title or f"Scenario sweep '{config.name}'"
        self.description = config.description

    def _utilizations(self, scale: ExperimentScale, cores: int) -> list[float]:
        cfg = self.config
        start = (
            cfg.utilization_start
            if cfg.utilization_start is not None
            else scale.utilization_start
        )
        stop = (
            cfg.utilization_stop
            if cfg.utilization_stop is not None
            else scale.utilization_stop
        )
        step = (
            cfg.utilization_step
            if cfg.utilization_step is not None
            else scale.utilization_step
        )
        # A partial override can invert the range only once combined
        # with the scale preset, so re-check the *effective* grid here
        # and name the config — not deep inside utilization_sweep.
        if not (0.0 < start <= stop <= 1.0):
            raise ValidationError(
                f"invalid scenario config: effective utilization range "
                f"start={start} stop={stop} (combined with scale "
                f"{scale.name!r}) must satisfy 0 < start <= stop <= 1"
            )
        return list(
            utilization_sweep(
                Platform(cores),
                step_fraction=step,
                start_fraction=start,
                stop_fraction=stop,
            )
        )

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        from repro.experiments.parallel import SweepSpec

        cfg = self.config
        seed = cfg.seed if cfg.seed is not None else scale.seed
        tasksets = (
            cfg.tasksets_per_point
            if cfg.tasksets_per_point is not None
            else scale.tasksets_per_point
        )
        return [
            SweepSpec(
                kind="scenario",
                seed=seed + cores,
                points=tuple(
                    {"utilization": u}
                    for u in self._utilizations(scale, cores)
                ),
                params={
                    "cores": cores,
                    "tasksets_per_point": tasksets,
                    "combos": cfg.combos,
                },
            )
            for cores in cfg.cores
        ]

    def aggregate_domain(self, raw: RawRun) -> ScenarioResult:
        labels = [combo_label(**c) for c in self.config.combos]
        panels = []
        for result in raw.sweeps:
            tasksets = int(result.spec.params["tasksets_per_point"])
            panels.append(
                ScenarioPanel(
                    cores=int(result.spec.params["cores"]),
                    comparison=AllocatorComparison(
                        cells=_cells_from_payloads(
                            result.spec, result.payloads, labels
                        ),
                        cores=int(result.spec.params["cores"]),
                        tasksets_per_point=tasksets,
                    ),
                )
            )
        return ScenarioResult(
            name=self.config.name,
            scale=raw.scale.name,
            panels=tuple(panels),
        )

    def encode_data(self, domain: ScenarioResult) -> dict[str, Any]:
        return {
            "name": domain.name,
            "scale": domain.scale,
            "panels": [
                {
                    "cores": panel.cores,
                    "comparison": _comparison_to_data(panel.comparison),
                }
                for panel in domain.panels
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> ScenarioResult:
        return ScenarioResult(
            name=str(data["name"]),
            scale=str(data["scale"]),
            panels=tuple(
                ScenarioPanel(
                    cores=int(p["cores"]),
                    comparison=_comparison_from_data(p["comparison"]),
                )
                for p in data["panels"]
            ),
        )

    def render_domain(self, domain: ScenarioResult) -> str:
        axes = "heuristic/ordering/admission"
        if self.config.allocator_axis:
            axes = f"allocator|{axes}"
        if self.config.workload_axis:
            axes = f"workload::{axes}"
        blocks = [
            format_allocator_comparison(
                panel.comparison,
                f"Scenario '{domain.name}' — {axes} grid",
            )
            for panel in domain.panels
        ]
        return "\n\n".join(blocks)

    def table_rows(self, domain: ScenarioResult) -> list[Sequence[Any]]:
        return [
            (panel.cores, c.utilization, c.scheme, c.acceptance,
             c.mean_tightness)
            for panel in domain.panels
            for c in panel.comparison.cells
        ]


def build_scenario_experiment(config: ScenarioConfig) -> Experiment:
    """The experiment class matching ``config.kind``.

    The single entry point the CLI's ``sweep`` subcommand and the job
    runner use, so a ``kind = "detection-latency"`` TOML resolves to
    the same experiment whether it runs directly or through the job
    service (byte-identical results either way).
    """
    if config.kind == "detection-latency":
        from repro.experiments.detection import DetectionScenarioExperiment

        return DetectionScenarioExperiment(config)
    return ScenarioExperiment(config)
