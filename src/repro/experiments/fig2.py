"""Fig. 2 — improvement in acceptance ratio, HYDRA vs SingleCore.

For each core count ``M`` and each total utilisation on the paper's
grid, generate synthetic task sets (Sec. IV-B recipe) and record the
fraction each scheme schedules.  The paper's observed shape: both
schemes agree at low utilisation (ample slack everywhere) and HYDRA
pulls ahead sharply at high utilisation, where funnelling every
security task through one core starves the low-priority ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiments.api import Experiment, GoldenFixture, RawRun
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_series, format_table, percent
from repro.metrics.acceptance import AcceptanceCounter
from repro.metrics.improvement import acceptance_improvement
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, utilization_sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepEngine, SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = [
    "Fig2Point",
    "Fig2Result",
    "Fig2Experiment",
    "run_fig2",
    "fig2_sweep_spec",
    "format_fig2",
]


@dataclass(frozen=True)
class Fig2Point:
    """One utilisation point of one Fig. 2 panel."""

    cores: int
    utilization: float
    ratio_hydra: float
    ratio_single: float
    tasksets: int

    @property
    def normalized_utilization(self) -> float:
        return self.utilization / self.cores

    @property
    def improvement(self) -> float:
        """The Fig. 2 y-value (see DESIGN §4 on the formula)."""
        return acceptance_improvement(self.ratio_hydra, self.ratio_single)


@dataclass(frozen=True)
class Fig2Result:
    """All panels of Fig. 2 (one per core count)."""

    points: tuple[Fig2Point, ...]
    scale: str

    def panel(self, cores: int) -> list[Fig2Point]:
        return [p for p in self.points if p.cores == cores]

    @property
    def core_counts(self) -> list[int]:
        return sorted({p.cores for p in self.points})


def fig2_sweep_spec(
    cores: int,
    scale: ExperimentScale,
    config: SyntheticConfig | None = None,
) -> "SweepSpec":
    """One Fig. 2 panel (one core count) as an acceptance sweep.

    The seed (``scale.seed + cores``) and per-point SeedSequence
    streams match what the serial seed code consumed, so engine runs
    reproduce the historical results bit-for-bit.
    """
    from repro.experiments.parallel import SweepSpec, synthetic_config_to_dict

    platform = Platform(cores)
    utils = utilization_sweep(
        platform,
        step_fraction=scale.utilization_step,
        start_fraction=scale.utilization_start,
        stop_fraction=scale.utilization_stop,
    )
    return SweepSpec(
        kind="acceptance",
        seed=scale.seed + cores,
        points=tuple({"utilization": u} for u in utils),
        params={
            "cores": cores,
            "tasksets_per_point": scale.tasksets_per_point,
            "config": (
                synthetic_config_to_dict(config) if config is not None
                else None
            ),
        },
    )


@register_experiment("fig2")
class Fig2Experiment(Experiment):
    """Fig. 2 on the unified experiment protocol."""

    name = "fig2"
    title = "Fig. 2 — acceptance-ratio improvement, HYDRA vs SingleCore"
    description = (
        "Monte-Carlo acceptance-ratio sweep over the paper's "
        "utilisation grid, one panel per core count."
    )
    version = 1
    tags = ("paper", "figure")
    order = 30
    columns = (
        "cores", "utilization", "accept_hydra", "accept_single",
        "improvement_pct",
    )

    def __init__(self, config: SyntheticConfig | None = None) -> None:
        self.config = config

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return [
            fig2_sweep_spec(cores, scale, self.config)
            for cores in scale.core_counts
        ]

    def aggregate_domain(self, raw: RawRun) -> Fig2Result:
        from repro.experiments.parallel import acceptance_outcomes

        scale = raw.scale
        points: list[Fig2Point] = []
        for result in raw.sweeps:
            cores = int(result.spec.params["cores"])
            for point, payload in zip(result.spec.points, result.payloads):
                hydra_counter = AcceptanceCounter()
                single_counter = AcceptanceCounter()
                for outcome in acceptance_outcomes(payload):
                    hydra_counter.record(outcome.hydra_schedulable)
                    single_counter.record(outcome.single_schedulable)
                points.append(
                    Fig2Point(
                        cores=cores,
                        utilization=float(point["utilization"]),
                        ratio_hydra=hydra_counter.ratio,
                        ratio_single=single_counter.ratio,
                        tasksets=scale.tasksets_per_point,
                    )
                )
        return Fig2Result(points=tuple(points), scale=scale.name)

    def encode_data(self, domain: Fig2Result) -> dict[str, Any]:
        return {
            "scale": domain.scale,
            "points": [
                {
                    "cores": p.cores,
                    "utilization": p.utilization,
                    "ratio_hydra": p.ratio_hydra,
                    "ratio_single": p.ratio_single,
                    "tasksets": p.tasksets,
                }
                for p in domain.points
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> Fig2Result:
        return Fig2Result(
            points=tuple(
                Fig2Point(
                    cores=int(p["cores"]),
                    utilization=float(p["utilization"]),
                    ratio_hydra=float(p["ratio_hydra"]),
                    ratio_single=float(p["ratio_single"]),
                    tasksets=int(p["tasksets"]),
                )
                for p in data["points"]
            ),
            scale=str(data["scale"]),
        )

    def render_domain(self, domain: Fig2Result) -> str:
        return format_fig2(domain)

    def table_rows(self, domain: Fig2Result) -> list[Sequence[Any]]:
        return [
            (p.cores, p.utilization, p.ratio_hydra, p.ratio_single,
             p.improvement)
            for p in domain.points
        ]

    def golden_fixture(self) -> GoldenFixture:
        from repro.experiments.golden import fig2_mini_aggregate, fig2_mini_spec

        return GoldenFixture(
            name="fig2_mini",
            build_spec=fig2_mini_spec,
            summarize=fig2_mini_aggregate,
        )


def run_fig2(
    scale: ExperimentScale | None = None,
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> Fig2Result:
    """Run the full Fig. 2 sweep at the given scale.

    .. deprecated::
        Thin shim over ``Fig2Experiment`` kept for downstream callers;
        prefer ``get_experiment("fig2").run(scale, engine)``.

    ``engine`` selects the execution strategy (workers, cache); the
    default is a serial, uncached :class:`SweepEngine`, optionally
    fanning out over an injected ``pool``.  Results are
    engine-independent.
    """
    return Fig2Experiment(config=config).run_domain(scale, engine, pool)


def format_fig2(result: Fig2Result) -> str:
    """Render the Fig. 2 reproduction as tables plus ASCII series."""
    blocks: list[str] = []
    for cores in result.core_counts:
        panel = result.panel(cores)
        rows = [
            (
                f"{p.utilization:.3f}",
                f"{p.normalized_utilization:.3f}",
                f"{p.ratio_hydra:.3f}",
                f"{p.ratio_single:.3f}",
                percent(p.improvement),
            )
            for p in panel
        ]
        blocks.append(
            format_table(
                ["U_total", "U/M", "accept(HYDRA)", "accept(SingleCore)",
                 "improvement"],
                rows,
                title=f"Fig. 2 — {cores} cores "
                      f"({panel[0].tasksets} task sets/point, "
                      f"scale={result.scale})",
            )
        )
        blocks.append(
            format_series(
                [p.normalized_utilization for p in panel],
                [p.improvement for p in panel],
                label=f"improvement vs U/M ({cores} cores) ",
            )
        )
    return "\n\n".join(blocks)
