"""Fig. 1 — UAV case study: empirical CDF of intrusion detection time.

Workload: the six UAV real-time tasks (Sec. IV-A / [18]) plus the six
Table I security tasks.  For each core count M ∈ {2, 4, 8}:

* **HYDRA** partitions the UAV tasks over all M cores (best-fit) and
  runs Algorithm 1;
* **SingleCore** packs the UAV tasks onto M−1 cores and pins every
  security task to the remaining core;

then the resulting schedules are simulated and attacked at random
instants; each attack's detection time is the gap until the first fresh
job of the matching security task completes.  The paper reports HYDRA
detecting 19.81 / 27.23 / 29.75 % faster on average for 2 / 4 / 8 cores
— the reproduction checks the same ordering and a growing-with-M gap.

The schedules are strictly periodic, hence deterministic: one simulated
horizon per (scheme, M) serves every attack observation.  (Setting
``release_jitter > 0`` switches to sporadic releases with one
simulation per scheme; attack times then sample a jittered schedule.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.allocators import get_allocator
from repro.core.allocator import Allocation
from repro.core.singlecore import build_singlecore_system
from repro.errors import AllocationError
from repro.experiments.api import Experiment, GoldenFixture, RawRun
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_table, percent
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.improvement import detection_speedup
from repro.model.platform import Platform
from repro.model.system import SystemModel
from repro.partition.heuristics import try_partition_tasks
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import (
    build_surface_map,
    detection_times,
    undetected_breakdown,
)
from repro.sim.runner import simulate_allocation
from repro.taskgen.security_apps import table1_security_tasks
from repro.taskgen.uav import uav_rt_tasks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepEngine, SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = [
    "Fig1SchemeResult",
    "Fig1Point",
    "Fig1Result",
    "Fig1Experiment",
    "run_fig1",
    "fig1_sweep_spec",
    "format_fig1",
    "build_uav_systems",
    "observe_detections",
]


@dataclass(frozen=True)
class Fig1SchemeResult:
    """Detection-time sample of one scheme on one platform.

    ``inf`` entries in ``times`` are undetected attacks; ``censored``
    counts the ones a monitor *would* have caught had the horizon not
    ended first (the rest had no monitor at all — never the case in the
    UAV study, where every Table I surface is monitored).
    """

    scheme: str
    times: tuple[float, ...]
    censored: int = 0

    @property
    def cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.times)

    @property
    def undetectable(self) -> int:
        """Undetected attacks whose surface no task monitors."""
        return self.cdf.undetected - self.censored

    @property
    def mean(self) -> float:
        return self.cdf.mean_detected()


@dataclass(frozen=True)
class Fig1Point:
    """One panel of Fig. 1 (one core count)."""

    cores: int
    hydra: Fig1SchemeResult
    single: Fig1SchemeResult

    @property
    def speedup(self) -> float:
        """Mean detection-time reduction of HYDRA vs SingleCore (%)."""
        return detection_speedup(self.hydra.times, self.single.times)


@dataclass(frozen=True)
class Fig1Result:
    points: tuple[Fig1Point, ...]
    scale: str

    def panel(self, cores: int) -> Fig1Point:
        for point in self.points:
            if point.cores == cores:
                return point
        raise KeyError(cores)


def build_uav_systems(
    cores: int,
    rt_scale: float = 1.0,
    security_scale: float = 1.0,
) -> tuple[SystemModel, Allocation, SystemModel, Allocation]:
    """Build + allocate the case-study systems for one core count.

    Returns ``(hydra_system, hydra_alloc, single_system, single_alloc)``;
    raises :class:`AllocationError` if either scheme cannot host the
    case study (does not happen at the default parameters).
    """
    platform = Platform(cores)
    rt_tasks = uav_rt_tasks(scale=rt_scale)
    security = table1_security_tasks(wcet_scale=security_scale)

    partition = try_partition_tasks(rt_tasks, platform, heuristic="best-fit")
    if partition is None:
        raise AllocationError(
            f"UAV real-time tasks do not partition onto {cores} cores"
        )
    hydra_system = SystemModel(
        platform=platform, rt_partition=partition, security_tasks=security
    )
    hydra_alloc = get_allocator("hydra").allocate(hydra_system)
    if not hydra_alloc.schedulable:
        raise AllocationError("HYDRA cannot schedule the UAV case study")

    single_system = build_singlecore_system(platform, rt_tasks, security)
    if single_system is None:
        raise AllocationError(
            f"UAV real-time tasks do not fit on {cores - 1} cores for the "
            f"SingleCore scheme"
        )
    single_alloc = get_allocator("singlecore").allocate(single_system)
    if not single_alloc.schedulable:
        raise AllocationError("SingleCore cannot schedule the UAV case study")
    return hydra_system, hydra_alloc, single_system, single_alloc


def observe_detections(
    system: SystemModel,
    allocation: Allocation,
    sim_duration: float,
    sim_trials: int,
    rng: np.random.Generator,
    policy: str = "release-after",
    release_jitter: float = 0.0,
) -> tuple[tuple[float, ...], int, int]:
    """Simulate ``allocation`` and measure ``sim_trials`` attack
    detections (the Fig. 1 observation protocol).

    Returns ``(times, censored, undetectable)``: the attack window
    stops well before the horizon so the slowest monitor can usually
    still fire, but an attack close to the window end can remain
    undetected purely because the simulation stopped — those samples
    are *censored*, not evidence of undetectability, and are counted
    separately (see :func:`repro.sim.detection.undetected_breakdown`).
    """
    result = simulate_allocation(
        system,
        allocation,
        duration=sim_duration,
        rng=rng,
        release_jitter=release_jitter,
        prune_idle_cores=True,
    )
    # Leave room after the last attack for the slowest monitor to fire:
    # one maximum period plus a generous response allowance.
    tail = max(a.period for a in allocation.assignments) * 2.0
    window_end = max(sim_duration - tail, sim_duration * 0.25)
    attacks = sample_attacks(
        sim_trials,
        (0.0, window_end),
        surfaces_of(system.security_tasks),
        rng=rng,
    )
    times = detection_times(
        result, attacks, system.security_tasks, policy=policy
    )
    surface_map = build_surface_map(system.security_tasks)
    censored, undetectable = undetected_breakdown(times, attacks, surface_map)
    return tuple(times), censored, undetectable


def fig1_sweep_spec(
    scale: ExperimentScale,
    policy: str = "release-after",
    release_jitter: float = 0.0,
) -> "SweepSpec":
    """The Fig. 1 case study as a sweep over core counts."""
    from repro.experiments.parallel import SweepSpec

    return SweepSpec(
        kind="uav-detection",
        seed=scale.seed,
        points=tuple(
            {"cores": cores}
            for cores in scale.core_counts
            if cores >= 2  # SingleCore needs a spare core
        ),
        params={
            "seed": scale.seed,
            "sim_duration": scale.sim_duration,
            "sim_trials": scale.sim_trials,
            "policy": policy,
            "release_jitter": release_jitter,
        },
    )


@register_experiment("fig1")
class Fig1Experiment(Experiment):
    """Fig. 1 on the unified experiment protocol."""

    name = "fig1"
    title = "Fig. 1 — UAV case study: detection-time CDFs"
    description = (
        "Simulate the UAV case study under HYDRA and SingleCore, "
        "attack it at random instants, and report detection-time CDFs "
        "per core count."
    )
    # 2: payloads/data carry explicit censored counts (undetected
    # attacks split into horizon-censored vs truly undetectable).
    version = 2
    tags = ("paper", "figure")
    order = 20
    columns = ("cores", "scheme", "detection_time_ms")

    def __init__(
        self, policy: str = "release-after", release_jitter: float = 0.0
    ) -> None:
        self.policy = policy
        self.release_jitter = release_jitter

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        if all(cores < 2 for cores in scale.core_counts):
            # Degenerate but valid: SingleCore needs a spare core, so
            # there is no panel to run.
            return []
        return [
            fig1_sweep_spec(
                scale, policy=self.policy, release_jitter=self.release_jitter
            )
        ]

    def aggregate_domain(self, raw: RawRun) -> Fig1Result:
        points = [
            Fig1Point(
                cores=int(payload["cores"]),
                hydra=Fig1SchemeResult(
                    scheme="hydra",
                    times=tuple(payload["hydra_times"]),
                    censored=int(payload.get("hydra_censored", 0)),
                ),
                single=Fig1SchemeResult(
                    scheme="singlecore",
                    times=tuple(payload["single_times"]),
                    censored=int(payload.get("single_censored", 0)),
                ),
            )
            for payload in raw.payloads
        ]
        return Fig1Result(points=tuple(points), scale=raw.scale.name)

    def encode_data(self, domain: Fig1Result) -> dict[str, Any]:
        return {
            "scale": domain.scale,
            "points": [
                {
                    "cores": p.cores,
                    "hydra_times": list(p.hydra.times),
                    "hydra_censored": p.hydra.censored,
                    "single_times": list(p.single.times),
                    "single_censored": p.single.censored,
                }
                for p in domain.points
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> Fig1Result:
        return Fig1Result(
            points=tuple(
                Fig1Point(
                    cores=int(p["cores"]),
                    hydra=Fig1SchemeResult(
                        scheme="hydra",
                        times=tuple(float(t) for t in p["hydra_times"]),
                        censored=int(p.get("hydra_censored", 0)),
                    ),
                    single=Fig1SchemeResult(
                        scheme="singlecore",
                        times=tuple(float(t) for t in p["single_times"]),
                        censored=int(p.get("single_censored", 0)),
                    ),
                )
                for p in data["points"]
            ),
            scale=str(data["scale"]),
        )

    def render_domain(self, domain: Fig1Result) -> str:
        return format_fig1(domain)

    def table_rows(self, domain: Fig1Result) -> list[Sequence[Any]]:
        return [
            (point.cores, scheme.scheme, t)
            for point in domain.points
            for scheme in (point.hydra, point.single)
            for t in scheme.times
        ]

    def golden_fixture(self) -> GoldenFixture:
        from repro.experiments.golden import fig1_mini_aggregate, fig1_mini_spec

        return GoldenFixture(
            name="fig1_mini",
            build_spec=fig1_mini_spec,
            summarize=fig1_mini_aggregate,
        )


def run_fig1(
    scale: ExperimentScale | None = None,
    policy: str = "release-after",
    release_jitter: float = 0.0,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> Fig1Result:
    """Run the case study at the given scale.

    .. deprecated::
        Thin shim over ``Fig1Experiment`` kept for downstream callers;
        prefer ``get_experiment("fig1").run(scale, engine)``.

    ``engine`` selects the execution strategy (workers, cache); the
    default is a serial, uncached :class:`SweepEngine`, optionally
    fanning out over an injected ``pool``.  Results are
    engine-independent.
    """
    return Fig1Experiment(
        policy=policy, release_jitter=release_jitter
    ).run_domain(scale, engine, pool)


def format_fig1(result: Fig1Result, grid_points: int = 12) -> str:
    """Render the Fig. 1 reproduction: per-panel CDF table + speedups."""
    blocks: list[str] = []
    for point in result.points:
        hydra_cdf = point.hydra.cdf
        single_cdf = point.single.cdf
        support_hi = max(
            hydra_cdf.support()[1], single_cdf.support()[1], 1.0
        )
        xs = [support_hi * (i + 1) / grid_points for i in range(grid_points)]
        rows = [
            (
                f"{x:.0f}",
                f"{hydra_cdf(x):.3f}",
                f"{single_cdf(x):.3f}",
            )
            for x in xs
        ]
        blocks.append(
            format_table(
                ["detection time (ms)", "CDF HYDRA", "CDF SingleCore"],
                rows,
                title=(
                    f"Fig. 1 — {point.cores} cores "
                    f"({hydra_cdf.sample_size} attacks/scheme, "
                    f"scale={result.scale})"
                ),
            )
        )
        mean_h = point.hydra.mean
        mean_s = point.single.mean
        paper = {2: "19.81%", 4: "27.23%", 8: "29.75%"}.get(
            point.cores, "n/a"
        )
        blocks.append(
            f"mean detection: HYDRA {mean_h:.0f} ms vs SingleCore "
            f"{mean_s:.0f} ms → {percent(point.speedup)} faster "
            f"(paper: {paper} for {point.cores} cores)"
        )
        undetected = [
            f"{scheme.scheme}: {scheme.censored} censored by horizon, "
            f"{scheme.undetectable} undetectable"
            for scheme in (point.hydra, point.single)
            if scheme.cdf.undetected
        ]
        if undetected:
            blocks.append("undetected attacks — " + "; ".join(undetected))
    return "\n\n".join(blocks)
