"""Fig. 1 — UAV case study: empirical CDF of intrusion detection time.

Workload: the six UAV real-time tasks (Sec. IV-A / [18]) plus the six
Table I security tasks.  For each core count M ∈ {2, 4, 8}:

* **HYDRA** partitions the UAV tasks over all M cores (best-fit) and
  runs Algorithm 1;
* **SingleCore** packs the UAV tasks onto M−1 cores and pins every
  security task to the remaining core;

then the resulting schedules are simulated and attacked at random
instants; each attack's detection time is the gap until the first fresh
job of the matching security task completes.  The paper reports HYDRA
detecting 19.81 / 27.23 / 29.75 % faster on average for 2 / 4 / 8 cores
— the reproduction checks the same ordering and a growing-with-M gap.

The schedules are strictly periodic, hence deterministic: one simulated
horizon per (scheme, M) serves every attack observation.  (Setting
``release_jitter > 0`` switches to sporadic releases with one
simulation per scheme; attack times then sample a jittered schedule.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocator import Allocation
from repro.core.hydra import HydraAllocator
from repro.core.singlecore import SingleCoreAllocator, build_singlecore_system
from repro.errors import AllocationError
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import format_table, percent
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.improvement import detection_speedup
from repro.model.platform import Platform
from repro.model.system import SystemModel
from repro.partition.heuristics import try_partition_tasks
from repro.sim.attacks import sample_attacks, surfaces_of
from repro.sim.detection import detection_times
from repro.sim.runner import simulate_allocation
from repro.taskgen.security_apps import table1_security_tasks
from repro.taskgen.uav import uav_rt_tasks

__all__ = [
    "Fig1SchemeResult",
    "Fig1Point",
    "Fig1Result",
    "run_fig1",
    "format_fig1",
    "build_uav_systems",
]


@dataclass(frozen=True)
class Fig1SchemeResult:
    """Detection-time sample of one scheme on one platform."""

    scheme: str
    times: tuple[float, ...]

    @property
    def cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.times)

    @property
    def mean(self) -> float:
        return self.cdf.mean_detected()


@dataclass(frozen=True)
class Fig1Point:
    """One panel of Fig. 1 (one core count)."""

    cores: int
    hydra: Fig1SchemeResult
    single: Fig1SchemeResult

    @property
    def speedup(self) -> float:
        """Mean detection-time reduction of HYDRA vs SingleCore (%)."""
        return detection_speedup(self.hydra.times, self.single.times)


@dataclass(frozen=True)
class Fig1Result:
    points: tuple[Fig1Point, ...]
    scale: str

    def panel(self, cores: int) -> Fig1Point:
        for point in self.points:
            if point.cores == cores:
                return point
        raise KeyError(cores)


def build_uav_systems(
    cores: int,
    rt_scale: float = 1.0,
    security_scale: float = 1.0,
) -> tuple[SystemModel, Allocation, SystemModel, Allocation]:
    """Build + allocate the case-study systems for one core count.

    Returns ``(hydra_system, hydra_alloc, single_system, single_alloc)``;
    raises :class:`AllocationError` if either scheme cannot host the
    case study (does not happen at the default parameters).
    """
    platform = Platform(cores)
    rt_tasks = uav_rt_tasks(scale=rt_scale)
    security = table1_security_tasks(wcet_scale=security_scale)

    partition = try_partition_tasks(rt_tasks, platform, heuristic="best-fit")
    if partition is None:
        raise AllocationError(
            f"UAV real-time tasks do not partition onto {cores} cores"
        )
    hydra_system = SystemModel(
        platform=platform, rt_partition=partition, security_tasks=security
    )
    hydra_alloc = HydraAllocator().allocate(hydra_system)
    if not hydra_alloc.schedulable:
        raise AllocationError("HYDRA cannot schedule the UAV case study")

    single_system = build_singlecore_system(platform, rt_tasks, security)
    if single_system is None:
        raise AllocationError(
            f"UAV real-time tasks do not fit on {cores - 1} cores for the "
            f"SingleCore scheme"
        )
    single_alloc = SingleCoreAllocator().allocate(single_system)
    if not single_alloc.schedulable:
        raise AllocationError("SingleCore cannot schedule the UAV case study")
    return hydra_system, hydra_alloc, single_system, single_alloc


def _observe(
    system: SystemModel,
    allocation: Allocation,
    scale: ExperimentScale,
    rng: np.random.Generator,
    policy: str,
    release_jitter: float,
) -> tuple[float, ...]:
    result = simulate_allocation(
        system,
        allocation,
        duration=scale.sim_duration,
        rng=rng,
        release_jitter=release_jitter,
        prune_idle_cores=True,
    )
    # Leave room after the last attack for the slowest monitor to fire:
    # one maximum period plus a generous response allowance.
    tail = max(a.period for a in allocation.assignments) * 2.0
    window_end = max(scale.sim_duration - tail, scale.sim_duration * 0.25)
    attacks = sample_attacks(
        scale.sim_trials,
        (0.0, window_end),
        surfaces_of(system.security_tasks),
        rng=rng,
    )
    return tuple(
        detection_times(result, attacks, system.security_tasks, policy=policy)
    )


def run_fig1(
    scale: ExperimentScale | None = None,
    policy: str = "release-after",
    release_jitter: float = 0.0,
) -> Fig1Result:
    """Run the case study at the given scale."""
    scale = scale or get_scale()
    points: list[Fig1Point] = []
    for cores in scale.core_counts:
        if cores < 2:
            continue  # SingleCore needs a spare core
        hydra_system, hydra_alloc, single_system, single_alloc = (
            build_uav_systems(cores)
        )
        rng = np.random.default_rng(scale.seed + 100 + cores)
        hydra_times = _observe(
            hydra_system, hydra_alloc, scale, rng, policy, release_jitter
        )
        single_times = _observe(
            single_system, single_alloc, scale, rng, policy, release_jitter
        )
        points.append(
            Fig1Point(
                cores=cores,
                hydra=Fig1SchemeResult(scheme="hydra", times=hydra_times),
                single=Fig1SchemeResult(
                    scheme="singlecore", times=single_times
                ),
            )
        )
    return Fig1Result(points=tuple(points), scale=scale.name)


def format_fig1(result: Fig1Result, grid_points: int = 12) -> str:
    """Render the Fig. 1 reproduction: per-panel CDF table + speedups."""
    blocks: list[str] = []
    for point in result.points:
        hydra_cdf = point.hydra.cdf
        single_cdf = point.single.cdf
        support_hi = max(
            hydra_cdf.support()[1], single_cdf.support()[1], 1.0
        )
        xs = [support_hi * (i + 1) / grid_points for i in range(grid_points)]
        rows = [
            (
                f"{x:.0f}",
                f"{hydra_cdf(x):.3f}",
                f"{single_cdf(x):.3f}",
            )
            for x in xs
        ]
        blocks.append(
            format_table(
                ["detection time (ms)", "CDF HYDRA", "CDF SingleCore"],
                rows,
                title=(
                    f"Fig. 1 — {point.cores} cores "
                    f"({hydra_cdf.sample_size} attacks/scheme, "
                    f"scale={result.scale})"
                ),
            )
        )
        mean_h = point.hydra.mean
        mean_s = point.single.mean
        paper = {2: "19.81%", 4: "27.23%", 8: "29.75%"}.get(
            point.cores, "n/a"
        )
        blocks.append(
            f"mean detection: HYDRA {mean_h:.0f} ms vs SingleCore "
            f"{mean_s:.0f} ms → {percent(point.speedup)} faster "
            f"(paper: {paper} for {point.cores} cores)"
        )
    return "\n\n".join(blocks)
