"""Shared building blocks for the synthetic-workload experiments.

One *trial* generates a synthetic task set (Sec. IV-B recipe) and
evaluates it under the competing allocation designs:

* **HYDRA** — real-time tasks best-fit partitioned over all ``M`` cores,
  security tasks placed by Algorithm 1;
* **SingleCore** — real-time tasks packed onto ``M−1`` cores, security
  tasks on the remaining dedicated core.

A task set counts as *schedulable under a scheme* when both its
real-time partition and its security allocation succeed — "security
tasks also have real-time constraints" (paper footnote 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocators import get_allocator
from repro.analysis.dbf import necessary_condition
from repro.core.allocator import Allocation, Allocator
from repro.core.singlecore import build_singlecore_system
from repro.model.platform import Platform
from repro.model.system import SystemModel
from repro.partition.heuristics import try_partition_tasks
from repro.taskgen.synthetic import (
    SyntheticConfig,
    SyntheticWorkload,
    generate_workload,
)

__all__ = [
    "TrialOutcome",
    "run_acceptance_trial",
    "build_hydra_system",
    "spawn_streams",
]


@dataclass(frozen=True)
class TrialOutcome:
    """Both schemes' verdicts on one generated task set."""

    utilization: float
    hydra: Allocation | None
    single: Allocation | None

    @property
    def hydra_schedulable(self) -> bool:
        return self.hydra is not None and self.hydra.schedulable

    @property
    def single_schedulable(self) -> bool:
        return self.single is not None and self.single.schedulable


def spawn_streams(seed: int, count: int) -> list[np.random.Generator]:
    """Independent, reproducible RNG streams for per-point parallelism."""
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def build_hydra_system(
    workload: SyntheticWorkload,
    heuristic: str = "best-fit",
    admission: str = "rta",
) -> SystemModel | None:
    """HYDRA-side system: real-time tasks partitioned over all cores.

    ``None`` when the partitioning heuristic fails (the task set is then
    unschedulable under HYDRA).
    """
    partition = try_partition_tasks(
        workload.rt_tasks,
        workload.platform,
        heuristic=heuristic,
        admission=admission,
    )
    if partition is None:
        return None
    return SystemModel(
        platform=workload.platform,
        rt_partition=partition,
        security_tasks=workload.security_tasks,
    )


def run_acceptance_trial(
    platform: Platform | int,
    utilization: float,
    rng: np.random.Generator,
    config: SyntheticConfig | None = None,
    hydra_allocator: Allocator | None = None,
    single_allocator: Allocator | None = None,
    heuristic: str = "best-fit",
    admission: str = "rta",
) -> TrialOutcome:
    """Generate one task set and evaluate it under both schemes.

    Task sets failing the Eq. (1) necessary condition are regenerated
    (the paper "only considered tasksets that satisfied the necessary
    condition"); with implicit deadlines this only triggers for
    utilisations above ``M``, so in practice every draw is kept.
    """
    if isinstance(platform, int):
        platform = Platform(platform)
    hydra_allocator = hydra_allocator or get_allocator("hydra")
    single_allocator = single_allocator or get_allocator("singlecore")

    workload = generate_workload(platform, utilization, rng, config)
    for _ in range(16):
        if necessary_condition(workload.rt_tasks, platform):
            break
        workload = generate_workload(platform, utilization, rng, config)

    hydra_result: Allocation | None = None
    hydra_system = build_hydra_system(
        workload, heuristic=heuristic, admission=admission
    )
    if hydra_system is not None:
        hydra_result = hydra_allocator.allocate(hydra_system)

    single_result: Allocation | None = None
    if platform.num_cores >= 2:
        single_system = build_singlecore_system(
            platform,
            workload.rt_tasks,
            workload.security_tasks,
            heuristic=heuristic,
            admission=admission,
        )
        if single_system is not None:
            single_result = single_allocator.allocate(single_system)

    return TrialOutcome(
        utilization=utilization, hydra=hydra_result, single=single_result
    )
