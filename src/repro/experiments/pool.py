"""Persistent worker pool shared across sweeps.

Before this module existed the :class:`~repro.experiments.parallel.
SweepEngine` created a fresh :class:`~concurrent.futures.
ProcessPoolExecutor` inside every ``run()`` call, so a multi-panel
invocation like ``repro-hydra all`` paid process fan-out latency once
*per sweep*.  A :class:`WorkerPool` decouples executor lifetime from
engine lifetime:

* **lazy spawn** — constructing a pool is free; worker processes start
  on the first parallel :meth:`map` and a log line (logger
  ``repro.pool``, INFO) records each spawn, so reuse is observable;
* **reuse** — one pool serves every sweep of every engine that holds
  it: all panels of ``repro-hydra all``, chained ``sweep --config``
  runs, or a whole pytest session;
* **serial fallback** — a pool sized 1 never spawns processes and runs
  :meth:`map` in-process, so callers need no special-casing;
* **explicit shutdown** — :meth:`shutdown` (or the context manager)
  ends the workers; the pool transparently respawns if used again.

The process-wide pool used by the CLI and by engines that were given a
worker count but no pool lives behind :func:`get_shared_pool` /
:func:`shutdown_shared_pool`; an :mod:`atexit` hook reaps it so
library users cannot leak worker processes.

Determinism is unaffected: the pool only changes *where* a point
executes, never its SeedSequence stream, so pooled results are
byte-identical to serial ones.
"""

from __future__ import annotations

import atexit
import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable

from repro.errors import ValidationError

__all__ = ["WorkerPool", "get_shared_pool", "shutdown_shared_pool"]

log = logging.getLogger("repro.pool")


class WorkerPool:
    """A lazily-spawned, reusable process pool with a serial fallback.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` means the visible CPU count.  ``0`` and
        ``1`` both mean serial (matching the engine's ``workers``
        convention): :meth:`map` runs in-process and no worker is ever
        spawned — likewise on a single-CPU machine.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValidationError(
                f"max_workers must be >= 0, got {max_workers}"
            )
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self._executor: ProcessPoolExecutor | None = None
        #: Times a process pool was actually spawned (0 until first
        #: parallel map; stays 0 forever for a serial pool).  The CI
        #: smoke and the reuse tests assert on this.
        self.spawn_count = 0

    # -- lifecycle -----------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._executor is not None

    def _reap_if_broken(self) -> bool:
        """Detect and reap a dead executor (workers OOM-killed, a
        ``KeyboardInterrupt`` that took the children down, …).

        A broken :class:`ProcessPoolExecutor` raises
        :class:`BrokenProcessPool` on *every* later submit, so holding
        one would poison each subsequent sweep — and, behind
        :func:`get_shared_pool`, every later server job.  Reaping here
        means the next :meth:`map` simply respawns.  Returns whether a
        dead executor was reaped (the recovery is logged, so
        ``REPRO_LOG=info``/``warning`` makes it observable).
        """
        executor = self._executor
        if executor is None or not getattr(executor, "_broken", False):
            return False
        log.warning(
            "worker pool is broken (%s); reaping dead executor "
            "(%d processes, %d spawn(s) so far)",
            getattr(executor, "_broken", None) or "workers died",
            self.max_workers, self.spawn_count,
        )
        self._executor = None
        executor.shutdown(wait=False)
        return True

    def _ensure_executor(self) -> ProcessPoolExecutor:
        self._reap_if_broken()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers
            )
            self.spawn_count += 1
            log.info(
                "spawned worker pool: %d processes (spawn #%d, pid %d)",
                self.max_workers, self.spawn_count, os.getpid(),
            )
        return self._executor

    def shutdown(self, wait: bool = True) -> None:
        """End the worker processes (idempotent).  The pool stays
        usable — a later :meth:`map` simply respawns."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- execution -----------------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        *iterables: Iterable[Any],
        limit: int | None = None,
    ) -> list[Any]:
        """``[fn(*args) for args in zip(*iterables)]`` — in-process for
        a serial pool, over the workers otherwise (results in order).

        ``limit`` caps the number of in-flight tasks below the pool
        size, so a caller that asked for less parallelism than the
        shared pool offers (an engine with ``workers=2`` attached to a
        4-wide pool) keeps its requested footprint.  ``limit=1`` runs
        in-process.

        A pool whose workers died (e.g. OOM-killed) is respawned once
        and the batch retried; per-point determinism makes the retry
        safe.  If the respawned pool breaks too, the batch falls back
        to serial in-process execution instead of propagating
        :class:`BrokenProcessPool` forever.  An interrupt (``^C``)
        mid-map reaps the executor before propagating, so the pool —
        including the process-wide shared one — is never left holding
        dead workers that every later sweep would trip over.
        """
        # zip() terminates at the shortest iterable, so infinite
        # companions like itertools.repeat(...) are fine here.
        calls = list(zip(*iterables))
        if self.max_workers == 1 or limit == 1:
            return [fn(*args) for args in calls]
        try:
            return self._dispatch(fn, calls, limit)
        except BrokenProcessPool as exc:
            log.warning(
                "worker pool broke; respawning and retrying once "
                "(%d processes; cause: %s)",
                self.max_workers,
                " ".join(str(exc).split()) or "workers died",
            )
            self.shutdown(wait=False)
            try:
                return self._dispatch(fn, calls, limit)
            except BrokenProcessPool as exc:
                log.warning(
                    "respawned worker pool broke too; running this "
                    "batch serially in-process (%d processes; cause: %s)",
                    self.max_workers,
                    " ".join(str(exc).split()) or "workers died",
                )
                self.shutdown(wait=False)
                return [fn(*args) for args in calls]
        except KeyboardInterrupt:
            # The interrupt usually reached the workers as well (same
            # process group), leaving the executor broken; reap it so
            # the pool stays usable after the caller handles the ^C.
            log.warning("interrupted mid-map; reaping worker pool")
            self.shutdown(wait=False)
            raise

    def _dispatch(
        self,
        fn: Callable[..., Any],
        calls: list[tuple[Any, ...]],
        limit: int | None,
    ) -> list[Any]:
        executor = self._ensure_executor()
        if limit is None or limit >= len(calls):
            futures = [executor.submit(fn, *args) for args in calls]
            return [future.result() for future in futures]
        # Sliding window: at most `limit` tasks outstanding.  Draining
        # the oldest first keeps results ordered without buffering.
        from collections import deque

        results: list[Any] = [None] * len(calls)
        pending: deque[tuple[int, Any]] = deque()
        for index, args in enumerate(calls):
            if len(pending) >= limit:
                done_index, future = pending.popleft()
                results[done_index] = future.result()
            pending.append((index, executor.submit(fn, *args)))
        while pending:
            done_index, future = pending.popleft()
            results[done_index] = future.result()
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self.active else "idle"
        return (
            f"WorkerPool(max_workers={self.max_workers}, {state}, "
            f"spawns={self.spawn_count})"
        )


# -- the process-wide shared pool --------------------------------------------

_shared_pool: WorkerPool | None = None
_atexit_registered = False


def get_shared_pool(max_workers: int | None = None) -> WorkerPool:
    """The process-wide :class:`WorkerPool`, created on first use.

    Every engine that asks for parallelism without bringing its own
    pool lands here, so one CLI invocation — or one pytest session —
    forks at most one pool no matter how many sweeps it runs.  Asking
    for *more* workers than the current pool has replaces it with a
    larger one (cheap unless it already spawned); asking for fewer
    reuses the existing pool — worker count never affects results,
    only parallelism.
    """
    global _shared_pool, _atexit_registered
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    requested = max(1, int(max_workers))
    if _shared_pool is None:
        _shared_pool = WorkerPool(requested)
        if not _atexit_registered:
            atexit.register(shutdown_shared_pool)
            _atexit_registered = True
    elif requested > _shared_pool.max_workers:
        log.info(
            "replacing shared worker pool: %d -> %d processes "
            "(reason: larger fan-out requested)",
            _shared_pool.max_workers, requested,
        )
        _shared_pool.shutdown()
        _shared_pool = WorkerPool(requested)
    else:
        # An interrupt or worker death mid-sweep can leave the shared
        # pool holding a dead executor; hand back a healthy pool (it
        # respawns on next use) instead of one that raises
        # BrokenProcessPool for every later sweep and server job.
        _shared_pool._reap_if_broken()
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Shut down and forget the shared pool (idempotent).  The CLI
    calls this after its experiments finish; the next
    :func:`get_shared_pool` starts fresh."""
    global _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown()
        _shared_pool = None
