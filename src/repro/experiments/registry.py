"""Declarative experiment registry.

Experiments self-register with the :func:`register_experiment`
decorator::

    @register_experiment("fig2")
    class Fig2Experiment(Experiment):
        ...

and every consumer — the CLI (subcommands are *generated* from this
registry), the golden-fixture machinery, ``repro-hydra list`` —
iterates the registry instead of keeping its own hand-maintained list.
Third-party code can register additional experiments at import time;
anything registered before :func:`repro.cli.main` runs gets its own
subcommand for free.

The built-in drivers live in sibling modules that register on import;
:func:`_ensure_builtin_experiments` imports them lazily so importing
this module alone stays cheap and cycle-free.
"""

from __future__ import annotations

from importlib import import_module
from typing import Callable, Iterator

from repro.errors import ValidationError
from repro.experiments.api import Experiment

__all__ = [
    "register_experiment",
    "unregister_experiment",
    "get_experiment",
    "experiment_names",
    "iter_experiments",
    "UnknownExperimentError",
]


class UnknownExperimentError(ValidationError):
    """Raised when a name resolves to no registered experiment."""


#: name → zero-argument factory producing a ready-to-run Experiment.
_REGISTRY: dict[str, Callable[[], Experiment]] = {}

#: Modules whose import registers the built-in experiments, in the
#: order ``repro-hydra all`` reports them.
_BUILTIN_MODULES = (
    "repro.experiments.table1",
    "repro.experiments.fig1",
    "repro.experiments.fig2",
    "repro.experiments.fig3",
    "repro.experiments.quality",
    "repro.experiments.ablations",
    "repro.experiments.detection",
)


def _ensure_builtin_experiments() -> None:
    for module in _BUILTIN_MODULES:
        import_module(module)


def register_experiment(
    name: str | None = None, *, replace: bool = False
) -> Callable:
    """Class/factory decorator registering an experiment under ``name``.

    ``name`` defaults to the class's ``name`` attribute.  Registering a
    taken name raises unless ``replace=True`` (plugins overriding a
    built-in must say so explicitly).
    """

    def decorate(factory: Callable[[], Experiment]):
        key = name or getattr(factory, "name", "")
        if not key:
            raise ValidationError(
                "experiment needs a registry name (decorator argument or "
                "a 'name' class attribute)"
            )
        if key in _REGISTRY and not replace:
            raise ValidationError(
                f"experiment {key!r} already registered; pass replace=True "
                f"to override"
            )
        if isinstance(factory, type):
            factory.name = factory.name or key  # type: ignore[attr-defined]
        _REGISTRY[key] = factory
        return factory

    return decorate


def unregister_experiment(name: str) -> None:
    """Remove ``name`` from the registry (test/plugin hygiene helper)."""
    _REGISTRY.pop(name, None)


def get_experiment(name: str) -> Experiment:
    """Instantiate the experiment registered under ``name``.

    Raises :class:`UnknownExperimentError` with the full known-name
    list — the CLI turns this into the "try ``repro-hydra list``" hint.
    """
    _ensure_builtin_experiments()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; known experiments: "
            f"{', '.join(sorted(_REGISTRY))} (see 'repro-hydra list')"
        ) from None
    return factory()


def _sorted_names() -> list[str]:
    index = {name: i for i, name in enumerate(_REGISTRY)}
    return sorted(
        _REGISTRY,
        key=lambda name: (
            getattr(_REGISTRY[name], "order", 1000), index[name]
        ),
    )


def experiment_names() -> list[str]:
    """All registered names, in report order (the experiments'
    ``order`` attribute, registration order breaking ties)."""
    _ensure_builtin_experiments()
    return _sorted_names()


def iter_experiments(tag: str | None = None) -> Iterator[Experiment]:
    """Fresh instances of every registered experiment, in report order.

    ``tag`` filters on the experiments' declared spec tags (exact
    match) — the registry-level form of ``repro-hydra list --tag``;
    ``None`` keeps everything.
    """
    _ensure_builtin_experiments()
    for name in _sorted_names():
        experiment = _REGISTRY[name]()
        if tag is None or tag in experiment.spec().tags:
            yield experiment
