"""Plain-text rendering of experiment results.

The paper reports through figures; a terminal reproduction reports
through aligned tables and coarse ASCII series.  Everything here is
pure formatting — no experiment logic.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "percent"]


def percent(value: float, digits: int = 2) -> str:
    """Format a percentage, tolerating infinities."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return f"{value:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(
            " | ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 8,
    label: str = "",
) -> str:
    """Render a y-vs-x series as a coarse ASCII plot.

    ``ys`` values of ``inf``/``nan`` are skipped.  Intended for quick
    shape checks of the figure reproductions in terminal output.
    """
    points = [
        (x, y) for x, y in zip(xs, ys) if not (math.isnan(y) or math.isinf(y))
    ]
    if not points or height < 2:
        return f"{label}(no data)"
    y_min = min(y for _, y in points)
    y_max = max(y for _, y in points)
    span = y_max - y_min or 1.0
    width = len(points)
    grid = [[" "] * width for _ in range(height)]
    for col, (_, y) in enumerate(points):
        row = int((y - y_min) / span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"{label} y ∈ [{y_min:.3g}, {y_max:.3g}]"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x ∈ [{points[0][0]:.3g}, {points[-1][0]:.3g}]")
    return "\n".join(lines)
