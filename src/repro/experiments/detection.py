"""Detection-latency experiments: attack injection as a results family.

The paper's case study (Sec. IV-A, Fig. 1) measures how quickly the
security tasks notice an intrusion.  :mod:`repro.experiments.fig1`
reproduces that one fixed workload; this module promotes the same
observation protocol — simulate the allocated schedule, inject attacks
at random instants, measure the gap to the first sufficiently-fresh
monitor completion — to a *sweepable* experiment over the full
scenario grid: allocator × workload family × placement heuristic ×
detection policy, at every utilisation point, on shared task sets.

A ``[sweep] kind = "detection-latency"`` TOML (see
``examples/detection_sweep.toml``) runs through the same
``SweepEngine``/``JobRunner``/store path as every other experiment:
serial ≡ pooled ≡ cached ≡ served byte-identical.  Undetected attacks
are never reported as bare ``inf``: each cell carries explicit
**censored** (a monitor exists, the horizon ended first) and
**undetectable** (no monitor for the surface) counts next to the
finite detection-time sample (see
:func:`repro.sim.detection.undetected_breakdown`).

Synthetic workload families do not label attack surfaces, so each
security task without a ``surface`` is treated as monitoring a surface
named after itself — the paper's one-monitor-per-surface model.
Combos differing only in detection policy share one simulation per
task set and are scored through one :class:`~repro.sim.detection.
DetectionIndex` per policy.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.experiments.api import Experiment, GoldenFixture, RawRun
from repro.experiments.config import SCALES, ExperimentScale
from repro.experiments.parallel import register_point_runner
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_table
from repro.experiments.scenario import (
    ScenarioConfig,
    ScenarioExperiment,
    combo_label,
)
from repro.metrics.cdf import EmpiricalCDF
from repro.model.platform import Platform
from repro.model.task import SecurityTask, TaskSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepSpec

__all__ = [
    "DetectionCell",
    "DetectionPanel",
    "DetectionResult",
    "DetectionScenarioExperiment",
    "DetectionLatencyExperiment",
    "monitoring_view",
    "detection_mini_spec",
    "detection_mini_aggregate",
]

#: Attacks are sampled over this leading fraction of the simulated
#: horizon, leaving the tail for the slowest monitors to fire; what the
#: tail still cuts off is reported as *censored*, never silently inf.
ATTACK_WINDOW_FRACTION = 0.75


def monitoring_view(security_tasks: TaskSet) -> TaskSet:
    """Surface-tagged view of a task set for attack injection.

    Tasks already carrying a ``surface`` label keep it; unlabelled ones
    (every synthetic family) are tagged with their own name, so each
    monitors its private surface — the paper's one-monitor-per-surface
    model.  Task names are unchanged, so the view's surface map applies
    directly to simulation results of the original system.
    """
    return TaskSet(
        task if task.surface else dataclasses.replace(task, surface=task.name)
        for task in security_tasks
    )


# -- point runner ------------------------------------------------------------


@register_point_runner("detection-latency")
def run_detection_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """Detection-time samples for every grid combo at one utilisation.

    Task sets and attack instants are shared across all combos of a
    workload family (the same discipline as the acceptance runner:
    cells are directly comparable).  Combos that differ only in the
    detection ``policy`` share one simulation and are scored through
    one :class:`~repro.sim.detection.DetectionIndex` per policy.  The
    simulation itself is strictly periodic, so the engine stream is
    consumed only by generation and attack sampling — payloads stay
    byte-identical across worker counts.
    """
    from repro.allocators import get_allocator
    from repro.core.singlecore import build_singlecore_system
    from repro.model.system import SystemModel
    from repro.partition.heuristics import try_partition_tasks
    from repro.sim.attacks import sample_attacks, surfaces_of
    from repro.sim.detection import (
        DetectionIndex,
        build_surface_map,
        undetected_breakdown,
    )
    from repro.sim.runner import simulate_allocation
    from repro.workloads import get_workload

    platform = Platform(int(params["cores"]))
    combos = [dict(c) for c in params["combos"]]
    default_policy = str(params.get("policy", "release-after"))
    sim_duration = float(params["sim_duration"])
    sim_trials = int(params["sim_trials"])
    tasksets = int(params["tasksets_per_point"])
    utilization = float(point["utilization"])

    allocators = {
        spec: get_allocator(spec)
        for spec in {c.get("allocator", "hydra") for c in combos}
    }
    workload_specs: list[str] = []
    for combo in combos:
        spec = combo.get("workload", "paper-synthetic")
        if spec not in workload_specs:
            workload_specs.append(spec)
    generators = {spec: get_workload(spec) for spec in workload_specs}

    # One simulation per (workload, allocator, heuristic, ordering,
    # admission); policy-only variants reuse it.
    groups: dict[tuple, list[dict[str, str]]] = {}
    for combo in combos:
        key = (
            combo.get("workload", "paper-synthetic"),
            combo.get("allocator", "hydra"),
            combo["heuristic"], combo["ordering"], combo["admission"],
        )
        groups.setdefault(key, []).append(combo)

    cells: dict[str, dict[str, Any]] = {
        combo_label(**c): {
            "times": [], "censored": 0, "undetectable": 0,
            "allocated": 0, "total": 0,
        }
        for c in combos
    }
    window = (0.0, ATTACK_WINDOW_FRACTION * sim_duration)
    batches = {
        spec: generators[spec].generate_batch(
            platform, [utilization] * tasksets, rng
        )
        for spec in workload_specs
    }
    for index in range(tasksets):
        for wl_spec in workload_specs:
            workload = batches[wl_spec][index]
            monitors = monitoring_view(workload.security_tasks)
            surface_map = build_surface_map(monitors)
            surfaces = surfaces_of(monitors)
            attacks = sample_attacks(sim_trials, window, surfaces, rng)
            for key, group in groups.items():
                if key[0] != wl_spec:
                    continue
                group_cells = [cells[combo_label(**c)] for c in group]
                for cell in group_cells:
                    cell["total"] += 1
                combo = group[0]
                spec = key[1]
                if spec == "singlecore":
                    system = build_singlecore_system(
                        platform,
                        workload.rt_tasks,
                        workload.security_tasks,
                        heuristic=combo["heuristic"],
                        admission=combo["admission"],
                        ordering=combo["ordering"],
                    )
                    if system is None:
                        continue
                else:
                    partition = try_partition_tasks(
                        workload.rt_tasks,
                        platform,
                        heuristic=combo["heuristic"],
                        admission=combo["admission"],
                        ordering=combo["ordering"],
                    )
                    if partition is None:
                        continue
                    system = SystemModel(
                        platform=platform,
                        rt_partition=partition,
                        security_tasks=workload.security_tasks,
                    )
                allocation = allocators[spec].allocate(system)
                if not allocation.schedulable:
                    continue
                for cell in group_cells:
                    cell["allocated"] += 1
                # Strictly periodic schedule: the simulation draws
                # nothing from the stream (fixed rng keeps that
                # explicit), so policy variants can share it.
                result = simulate_allocation(
                    system,
                    allocation,
                    duration=sim_duration,
                    rng=np.random.default_rng(0),
                    prune_idle_cores=True,
                )
                indexes: dict[str, DetectionIndex] = {}
                for cell_combo, cell in zip(group, group_cells):
                    policy = cell_combo.get("policy", default_policy)
                    if policy not in indexes:
                        indexes[policy] = DetectionIndex(result, policy)
                    times = [
                        indexes[policy].detection_time(attack, surface_map)
                        for attack in attacks
                    ]
                    censored, undetectable = undetected_breakdown(
                        times, attacks, surface_map
                    )
                    cell["times"].extend(
                        t for t in times if not math.isinf(t)
                    )
                    cell["censored"] += censored
                    cell["undetectable"] += undetectable
    return {"cells": cells}


# -- result types ------------------------------------------------------------


@dataclass(frozen=True)
class DetectionCell:
    """Detection-time sample of one grid cell at one utilisation."""

    utilization: float
    scheme: str
    times: tuple[float, ...]
    censored: int
    undetectable: int
    allocated: int
    total: int

    @property
    def detected(self) -> int:
        return len(self.times)

    @property
    def attacks(self) -> int:
        """Attack observations scored for this cell (detected or not)."""
        return self.detected + self.censored + self.undetectable

    @property
    def cdf(self) -> EmpiricalCDF | None:
        """CDF over all scored attacks (censored/undetectable kept as
        ``inf`` in the denominator); ``None`` when nothing was scored."""
        if not self.attacks:
            return None
        return EmpiricalCDF(
            list(self.times)
            + [math.inf] * (self.censored + self.undetectable)
        )

    @property
    def mean_detected(self) -> float:
        """Mean over the detected attacks (``nan`` when none)."""
        if not self.times:
            return math.nan
        return sum(self.times) / len(self.times)


@dataclass(frozen=True)
class DetectionPanel:
    """One core count's detection comparison across all grid cells."""

    cores: int
    cells: tuple[DetectionCell, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class DetectionResult:
    """All panels of one detection-latency sweep."""

    name: str
    scale: str
    panels: tuple[DetectionPanel, ...] = field(default_factory=tuple)


# -- the experiment ----------------------------------------------------------


def _fmt_ms(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:.1f}"


class DetectionScenarioExperiment(ScenarioExperiment):
    """A TOML-defined detection-latency sweep on the experiment protocol.

    Built by :func:`repro.experiments.scenario.build_scenario_experiment`
    for ``kind = "detection-latency"`` configs; shares the scenario
    grid/axes/utilisation machinery and replaces the acceptance
    scoring with attack-injection simulation.
    """

    version = 1
    tags = ("scenario", "detection")
    columns = (
        "cores", "utilization", "scheme", "attacks", "detected",
        "censored", "undetectable", "mean_detected_ms", "p95_ms",
    )
    scenario_kind = "detection-latency"

    def _cores(self, scale: ExperimentScale) -> tuple[int, ...]:
        """An empty cores axis inherits the scale preset (the
        registered ``detection-latency`` experiment's default)."""
        return self.config.cores or scale.core_counts

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        from repro.experiments.parallel import SweepSpec

        cfg = self.config
        seed = cfg.seed if cfg.seed is not None else scale.seed
        # Simulation makes this family as expensive per task set as the
        # OPT comparison, so the default volume follows the same knob.
        tasksets = (
            cfg.tasksets_per_point
            if cfg.tasksets_per_point is not None
            else scale.fig3_tasksets_per_point
        )
        sim_trials = (
            cfg.sim_trials if cfg.sim_trials is not None else scale.sim_trials
        )
        sim_duration = (
            cfg.sim_duration
            if cfg.sim_duration is not None
            else scale.sim_duration
        )
        return [
            SweepSpec(
                kind="detection-latency",
                seed=seed + cores,
                points=tuple(
                    {"utilization": u}
                    for u in self._utilizations(scale, cores)
                ),
                params={
                    "cores": cores,
                    "tasksets_per_point": tasksets,
                    "sim_trials": sim_trials,
                    "sim_duration": sim_duration,
                    "policy": cfg.policies[0],
                    "combos": cfg.combos,
                },
            )
            for cores in self._cores(scale)
        ]

    def aggregate_domain(self, raw: RawRun) -> DetectionResult:
        labels = [combo_label(**c) for c in self.config.combos]
        panels = []
        for result in raw.sweeps:
            cells = []
            for point, payload in zip(result.spec.points, result.payloads):
                utilization = float(point["utilization"])
                for label in labels:
                    cell = payload["cells"].get(label)
                    if cell is None:
                        raise ValidationError(
                            f"detection payload is missing cell "
                            f"{label!r} (stale cache entry?)"
                        )
                    cells.append(
                        DetectionCell(
                            utilization=utilization,
                            scheme=label,
                            times=tuple(float(t) for t in cell["times"]),
                            censored=int(cell["censored"]),
                            undetectable=int(cell["undetectable"]),
                            allocated=int(cell["allocated"]),
                            total=int(cell["total"]),
                        )
                    )
            panels.append(
                DetectionPanel(
                    cores=int(result.spec.params["cores"]),
                    cells=tuple(cells),
                )
            )
        return DetectionResult(
            name=self.config.name,
            scale=raw.scale.name,
            panels=tuple(panels),
        )

    def encode_data(self, domain: DetectionResult) -> dict[str, Any]:
        return {
            "name": domain.name,
            "scale": domain.scale,
            "panels": [
                {
                    "cores": panel.cores,
                    "cells": [
                        {
                            "utilization": cell.utilization,
                            "scheme": cell.scheme,
                            "times": list(cell.times),
                            "censored": cell.censored,
                            "undetectable": cell.undetectable,
                            "allocated": cell.allocated,
                            "total": cell.total,
                        }
                        for cell in panel.cells
                    ],
                }
                for panel in domain.panels
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> DetectionResult:
        return DetectionResult(
            name=str(data["name"]),
            scale=str(data["scale"]),
            panels=tuple(
                DetectionPanel(
                    cores=int(p["cores"]),
                    cells=tuple(
                        DetectionCell(
                            utilization=float(c["utilization"]),
                            scheme=str(c["scheme"]),
                            times=tuple(float(t) for t in c["times"]),
                            censored=int(c["censored"]),
                            undetectable=int(c["undetectable"]),
                            allocated=int(c["allocated"]),
                            total=int(c["total"]),
                        )
                        for c in p["cells"]
                    ),
                )
                for p in data["panels"]
            ),
        )

    def _row(self, cell: DetectionCell) -> tuple:
        if cell.times:
            p95 = EmpiricalCDF(cell.times).quantile(0.95)
        else:
            p95 = math.nan
        return (
            f"{cell.utilization:.3f}",
            cell.scheme,
            f"{cell.allocated}/{cell.total}",
            str(cell.attacks),
            str(cell.detected),
            str(cell.censored),
            str(cell.undetectable),
            _fmt_ms(cell.mean_detected),
            _fmt_ms(p95),
        )

    def render_domain(self, domain: DetectionResult) -> str:
        blocks = []
        for panel in domain.panels:
            blocks.append(
                format_table(
                    [
                        "util", "scheme", "alloc", "attacks", "detected",
                        "censored", "undetect.", "mean (ms)", "p95 (ms)",
                    ],
                    [self._row(cell) for cell in panel.cells],
                    title=(
                        f"Detection latency '{domain.name}' — "
                        f"{panel.cores} cores (scale={domain.scale}; "
                        f"censored = horizon ended before a monitor "
                        f"fired)"
                    ),
                )
            )
        return "\n\n".join(blocks)

    def table_rows(self, domain: DetectionResult) -> list[Sequence[Any]]:
        rows = []
        for panel in domain.panels:
            for cell in panel.cells:
                if cell.times:
                    p95 = EmpiricalCDF(cell.times).quantile(0.95)
                else:
                    p95 = None
                rows.append(
                    (
                        panel.cores, cell.utilization, cell.scheme,
                        cell.attacks, cell.detected, cell.censored,
                        cell.undetectable,
                        None if not cell.times else cell.mean_detected,
                        p95,
                    )
                )
        return rows


def _default_detection_config() -> ScenarioConfig:
    """The registered experiment's grid: HYDRA vs the period-adapting
    family under both detection policies, paper workload, coarse
    utilisations (core counts inherit the scale preset)."""
    return ScenarioConfig(
        name="detection-latency",
        cores=(),
        heuristics=("best-fit",),
        orderings=("utilization",),
        admissions=("rta",),
        allocators=("hydra", "adaptive[exact-rta]"),
        allocator_axis=True,
        kind="detection-latency",
        policies=("release-after", "start-after"),
        policy_axis=True,
        utilization_start=0.3,
        utilization_stop=0.7,
        utilization_step=0.2,
    )


@register_experiment("detection-latency")
class DetectionLatencyExperiment(DetectionScenarioExperiment):
    """The registered detection-latency experiment (default grid)."""

    # After the paper set and the ablations: this is an extension
    # family, so `repro-hydra all` reports the reproductions first.
    order = 110

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        super().__init__(config or _default_detection_config())
        self.name = "detection-latency"
        self.title = (
            "Detection latency — attack injection over the allocator "
            "× policy grid"
        )
        self.description = (
            "Simulate allocated schedules, inject random attacks, and "
            "report detection-time distributions with explicit "
            "censored counts; HYDRA vs the period-adapting allocators "
            "under both detection policies."
        )

    def golden_fixture(self) -> GoldenFixture:
        return GoldenFixture(
            name="detection_mini",
            build_spec=detection_mini_spec,
            summarize=detection_mini_aggregate,
        )


# -- golden fixture ----------------------------------------------------------


def detection_mini_spec() -> "SweepSpec":
    """A tiny fixed-seed detection sweep: 2 cores, 2 task sets, both
    policies, HYDRA vs exact-RTA adaptation.  The horizon is short
    enough that some attacks are censored — a fixture where every
    attack is detected could not discriminate censoring changes."""
    config = dataclasses.replace(
        _default_detection_config(),
        cores=(2,),
        tasksets_per_point=2,
        sim_trials=6,
        sim_duration=3_000.0,
        utilization_start=0.4,
        utilization_stop=0.6,
        utilization_step=0.2,
    )
    (spec,) = DetectionLatencyExperiment(config).sweeps(SCALES["smoke"])
    return spec


def detection_mini_aggregate(
    spec: "SweepSpec", payloads
) -> list[dict[str, Any]]:
    return [
        {
            "utilization": point["utilization"],
            "cells": {
                label: {
                    "detected": len(cell["times"]),
                    "censored": cell["censored"],
                    "undetectable": cell["undetectable"],
                    "allocated": cell["allocated"],
                    "total": cell["total"],
                }
                for label, cell in sorted(payload["cells"].items())
            },
        }
        for point, payload in zip(spec.points, payloads)
    ]
