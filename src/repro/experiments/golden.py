"""Golden-regression fixtures: small fixed-seed experiment summaries.

The sweep engine's correctness story rests on reproducibility: the
same spec must yield the same trials on any worker count, any run, any
machine with the same numpy.  These helpers define two deliberately
small fixed-seed experiments — a Fig. 2-style acceptance curve and a
Fig. 1-style detection-time sample — and summarise their results in a
JSON-stable form that is checked into the repository
(``tests/experiments/golden/``).

The summaries pin two layers:

* aggregate numbers a human can review (acceptance counts per point,
  detection-time samples), and
* a sha256 over the canonical JSON of the *full* per-point payloads —
  every generated task set's allocation verdict, every assigned
  period — so even a change that happens to preserve the aggregates
  fails loudly.

Regenerate after an *intended* behaviour change with::

    PYTHONPATH=src python tools/regen_golden.py
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.experiments.config import SCALES, ExperimentScale
from repro.experiments.fig1 import fig1_sweep_spec
from repro.experiments.fig2 import fig2_sweep_spec
from repro.experiments.parallel import (
    SweepEngine,
    SweepSpec,
    acceptance_outcomes,
)

__all__ = [
    "GOLDEN_FIXTURES",
    "fig2_mini_spec",
    "fig1_mini_spec",
    "golden_summary",
]


def fig2_mini_spec() -> SweepSpec:
    """3 utilisation points × 50 task sets on 2 cores, paper seed."""
    scale = ExperimentScale(
        name="golden-mini",
        tasksets_per_point=50,
        utilization_step=0.25,
        utilization_start=0.25,
        utilization_stop=0.75,
        core_counts=(2,),
        sim_trials=8,
        sim_duration=30_000.0,
        fig3_tasksets_per_point=3,
    )
    return fig2_sweep_spec(2, scale)


def fig1_mini_spec() -> SweepSpec:
    """The 2-core UAV case study with a short simulated horizon."""
    scale = SCALES["smoke"].with_overrides(
        sim_trials=20, core_counts=(2,)
    )
    return fig1_sweep_spec(scale)


def _payload_sha256(payloads) -> str:
    canonical = json.dumps(list(payloads), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _fig2_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    points = []
    for point, payload in zip(spec.points, payloads):
        outcomes = acceptance_outcomes(payload)
        points.append(
            {
                "utilization": point["utilization"],
                "tasksets": len(outcomes),
                "accepted_hydra": sum(
                    o.hydra_schedulable for o in outcomes
                ),
                "accepted_single": sum(
                    o.single_schedulable for o in outcomes
                ),
            }
        )
    return points


def _fig1_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    return [
        {
            "cores": payload["cores"],
            "hydra_times": payload["hydra_times"],
            "single_times": payload["single_times"],
        }
        for payload in payloads
    ]


#: name → (spec builder, aggregate summariser); one golden JSON each.
GOLDEN_FIXTURES = {
    "fig2_mini": (fig2_mini_spec, _fig2_aggregate),
    "fig1_mini": (fig1_mini_spec, _fig1_aggregate),
}


def golden_summary(
    name: str, engine: SweepEngine | None = None
) -> dict[str, Any]:
    """Run the named golden experiment and summarise it for comparison
    against (or regeneration of) its checked-in fixture."""
    build_spec, aggregate = GOLDEN_FIXTURES[name]
    spec = build_spec()
    result = (engine or SweepEngine()).run(spec)
    return {
        "name": name,
        "kind": spec.kind,
        "seed": spec.seed,
        "points": aggregate(spec, result.payloads),
        "payload_sha256": _payload_sha256(result.payloads),
    }
