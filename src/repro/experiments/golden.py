"""Golden-regression fixtures: small fixed-seed experiment summaries.

The sweep engine's correctness story rests on reproducibility: the
same spec must yield the same trials on any worker count, any run, any
machine with the same numpy.  Each experiment that wants this pinned
declares a :class:`~repro.experiments.api.GoldenFixture` — a
deliberately small fixed-seed sweep plus a summariser — via its
``golden_fixture()`` hook, and this module collects them *from the
experiment registry*: adding a fixture to a new experiment is one
method, with no list here to keep in sync.

The summaries pin two layers:

* aggregate numbers a human can review (acceptance counts per point,
  detection-time samples, tightness gaps, catalogue rows), and
* a sha256 over the canonical JSON of the *full* per-point payloads —
  every generated task set's allocation verdict, every assigned
  period — so even a change that happens to preserve the aggregates
  fails loudly.

Fixtures live in ``tests/experiments/golden/``; regenerate after an
*intended* behaviour change with::

    PYTHONPATH=src python tools/regen_golden.py
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.experiments.api import GoldenFixture
from repro.experiments.config import SCALES, ExperimentScale
from repro.experiments.parallel import (
    SweepEngine,
    SweepSpec,
    acceptance_outcomes,
)

__all__ = [
    "golden_fixtures",
    "golden_summary",
    "fig2_mini_spec",
    "fig2_mini_aggregate",
    "fig1_mini_spec",
    "fig1_mini_aggregate",
    "fig3_mini_spec",
    "fig3_mini_aggregate",
    "table1_mini_spec",
    "table1_mini_aggregate",
    "workload_mini_spec",
    "workload_mini_aggregate",
]


# -- the mini specs ----------------------------------------------------------


def fig2_mini_spec() -> SweepSpec:
    """3 utilisation points × 50 task sets on 2 cores, paper seed."""
    from repro.experiments.fig2 import fig2_sweep_spec

    scale = ExperimentScale(
        name="golden-mini",
        tasksets_per_point=50,
        utilization_step=0.25,
        utilization_start=0.25,
        utilization_stop=0.75,
        core_counts=(2,),
        sim_trials=8,
        sim_duration=30_000.0,
        fig3_tasksets_per_point=3,
    )
    return fig2_sweep_spec(2, scale)


def fig1_mini_spec() -> SweepSpec:
    """The 2-core UAV case study with a short simulated horizon."""
    from repro.experiments.fig1 import fig1_sweep_spec

    scale = SCALES["smoke"].with_overrides(
        sim_trials=20, core_counts=(2,)
    )
    return fig1_sweep_spec(scale)


def fig3_mini_spec() -> SweepSpec:
    """3 utilisation points × 4 task sets of the OPT comparison."""
    from repro.experiments.fig3 import fig3_sweep_spec

    scale = SCALES["smoke"].with_overrides(fig3_tasksets_per_point=4)
    return fig3_sweep_spec(scale)


def table1_mini_spec() -> SweepSpec:
    """The (deterministic) Table I build on the 2-core UAV platform."""
    from repro.experiments.table1 import table1_sweep_spec

    return table1_sweep_spec(2)


def workload_mini_spec() -> SweepSpec:
    """A 3-family workload-axis scenario sweep, 3 points × 6 task sets.

    Pins the workload registry end to end: three families (the legacy
    recipe, the UUniFast splitter, the harmonic period regime), each
    generating its point batch through the vectorised
    ``generate_batch`` route in grid order from the point's single
    stream, with cell labels carrying the ``workload::`` prefix.
    """
    from repro.experiments.scenario import ScenarioExperiment, parse_scenario

    document = {
        "sweep": {
            "name": "workload-mini",
            "seed": 2018,
            "tasksets_per_point": 6,
            # high enough that rejections and stretched periods appear:
            # a fixture where every cell is a full-acceptance 1.000
            # could not discriminate generation changes at all.
            "utilization": {"start": 0.45, "stop": 0.95, "step": 0.25},
        },
        "grid": {
            "cores": [2],
            "workload": [
                "paper-synthetic", "uunifast", "harmonic-periods",
            ],
            "heuristic": ["best-fit"],
            "ordering": ["utilization"],
            "admission": ["rta"],
        },
    }
    experiment = ScenarioExperiment(parse_scenario(document))
    (spec,) = experiment.sweeps(SCALES["smoke"])
    return spec


# -- the aggregate summarisers -----------------------------------------------


def _payload_sha256(payloads) -> str:
    canonical = json.dumps(list(payloads), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def fig2_mini_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    points = []
    for point, payload in zip(spec.points, payloads):
        outcomes = acceptance_outcomes(payload)
        points.append(
            {
                "utilization": point["utilization"],
                "tasksets": len(outcomes),
                "accepted_hydra": sum(
                    o.hydra_schedulable for o in outcomes
                ),
                "accepted_single": sum(
                    o.single_schedulable for o in outcomes
                ),
            }
        )
    return points


def fig1_mini_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    return [
        {
            "cores": payload["cores"],
            "hydra_times": payload["hydra_times"],
            "hydra_censored": payload["hydra_censored"],
            "single_times": payload["single_times"],
            "single_censored": payload["single_censored"],
        }
        for payload in payloads
    ]


def fig3_mini_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    return [
        {
            "utilization": point["utilization"],
            "gaps": payload["gaps"],
            "hydra_failures": payload["hydra_failures"],
        }
        for point, payload in zip(spec.points, payloads)
    ]


def table1_mini_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    (payload,) = payloads
    return list(payload["rows"])


def workload_mini_aggregate(spec: SweepSpec, payloads) -> list[dict[str, Any]]:
    return [
        {
            "utilization": point["utilization"],
            "cells": {
                label: {
                    "accepted": cell["accepted"],
                    "total": cell["total"],
                }
                for label, cell in sorted(payload["cells"].items())
            },
        }
        for point, payload in zip(spec.points, payloads)
    ]


# -- registry-driven fixture collection --------------------------------------


#: Fixtures with no home experiment in the registry (scenario sweeps
#: are built from TOML, not registered by name) — collected alongside
#: the registry-declared ones.
def _extra_fixtures() -> dict[str, GoldenFixture]:
    return {
        "workload_mini": GoldenFixture(
            name="workload_mini",
            build_spec=workload_mini_spec,
            summarize=workload_mini_aggregate,
        ),
    }


def golden_fixtures() -> dict[str, GoldenFixture]:
    """Every registered experiment's golden fixture, keyed by fixture
    name (one JSON file each under ``tests/experiments/golden/``),
    plus the scenario-sweep extras (:func:`workload_mini_spec`)."""
    from repro.experiments.registry import iter_experiments

    fixtures: dict[str, GoldenFixture] = {}
    for experiment in iter_experiments():
        fixture = experiment.golden_fixture()
        if fixture is not None:
            fixtures[fixture.name] = fixture
    fixtures.update(_extra_fixtures())
    return fixtures


def golden_summary(
    name: str, engine: SweepEngine | None = None
) -> dict[str, Any]:
    """Run the named golden experiment and summarise it for comparison
    against (or regeneration of) its checked-in fixture."""
    fixture = golden_fixtures()[name]
    spec = fixture.build_spec()
    result = (engine or SweepEngine()).run(spec)
    return {
        "name": name,
        "kind": spec.kind,
        "seed": spec.seed,
        "points": fixture.summarize(spec, result.payloads),
        "payload_sha256": _payload_sha256(result.payloads),
    }
