"""Fig. 3 — HYDRA vs the optimal (exhaustive) assignment.

Small setup (M = 2, NS ∈ [2, 6], other parameters per Sec. IV-B); for
every generated task set solve both HYDRA and OPT and record the
difference in cumulative tightness ``Δη = (η_OPT − η_HYDRA)/η_OPT``.
Expected shape: zero through low/medium utilisation, growing at high
utilisation, bounded well under ~22 % on average (the paper's worst
case).

Task sets that even OPT cannot schedule carry no tightness to compare
and are skipped; task sets where only HYDRA fails score Δη = 100 %
(HYDRA delivered none of the achievable tightness).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import format_series, format_table, percent
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, utilization_sweep

__all__ = [
    "Fig3Point",
    "Fig3Result",
    "run_fig3",
    "fig3_sweep_spec",
    "format_fig3",
]

#: Fig. 3's platform and security-task range.
_FIG3_CORES = 2
_FIG3_SECURITY_COUNT = (2, 6)


@dataclass(frozen=True)
class Fig3Point:
    """One utilisation point of Fig. 3."""

    utilization: float
    mean_gap: float
    max_gap: float
    compared: int  # task sets where OPT was feasible
    hydra_failures: int  # of those, how many HYDRA missed entirely


@dataclass(frozen=True)
class Fig3Result:
    points: tuple[Fig3Point, ...]
    scale: str
    search: str

    @property
    def worst_gap(self) -> float:
        gaps = [p.max_gap for p in self.points if p.compared > 0]
        return max(gaps, default=0.0)


def fig3_sweep_spec(
    scale: ExperimentScale,
    search: str = "branch-bound",
    config: SyntheticConfig | None = None,
) -> "SweepSpec":
    """The Fig. 3 HYDRA-vs-OPT comparison as a sweep."""
    from repro.experiments.parallel import SweepSpec, synthetic_config_to_dict

    platform = Platform(_FIG3_CORES)
    if config is None:
        config = SyntheticConfig(security_task_count=_FIG3_SECURITY_COUNT)
    utils = utilization_sweep(
        platform,
        step_fraction=scale.utilization_step,
        start_fraction=scale.utilization_start,
        stop_fraction=scale.utilization_stop,
    )
    return SweepSpec(
        kind="fig3-gap",
        seed=scale.seed + 31,
        points=tuple({"utilization": u} for u in utils),
        params={
            "cores": _FIG3_CORES,
            "tasksets_per_point": scale.fig3_tasksets_per_point,
            "search": search,
            "config": synthetic_config_to_dict(config),
        },
    )


def run_fig3(
    scale: ExperimentScale | None = None,
    search: str = "branch-bound",
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
) -> Fig3Result:
    """Run the Fig. 3 comparison at the given scale.

    ``search`` selects the optimal-search implementation; both return
    identical optima (tested), branch-and-bound is simply faster.
    ``engine`` selects the execution strategy (workers, cache).
    """
    from repro.experiments.parallel import SweepEngine

    scale = scale or get_scale()
    engine = engine or SweepEngine()
    spec = fig3_sweep_spec(scale, search=search, config=config)
    result = engine.run(spec)
    points: list[Fig3Point] = []
    for point, payload in zip(spec.points, result.payloads):
        gaps = [float(g) for g in payload["gaps"]]
        points.append(
            Fig3Point(
                utilization=float(point["utilization"]),
                mean_gap=sum(gaps) / len(gaps) if gaps else 0.0,
                max_gap=max(gaps, default=0.0),
                compared=len(gaps),
                hydra_failures=int(payload["hydra_failures"]),
            )
        )
    return Fig3Result(points=tuple(points), scale=scale.name, search=search)


def format_fig3(result: Fig3Result) -> str:
    rows = [
        (
            f"{p.utilization:.3f}",
            percent(p.mean_gap),
            percent(p.max_gap),
            p.compared,
            p.hydra_failures,
        )
        for p in result.points
    ]
    table = format_table(
        ["U_total", "mean Δη", "max Δη", "compared", "HYDRA-only fails"],
        rows,
        title=(
            f"Fig. 3 — HYDRA vs optimal (M={_FIG3_CORES}, "
            f"NS ∈ {list(_FIG3_SECURITY_COUNT)}, scale={result.scale}, "
            f"search={result.search})"
        ),
    )
    series = format_series(
        [p.utilization for p in result.points],
        [p.mean_gap for p in result.points],
        label="mean Δη vs U ",
    )
    summary = f"worst observed Δη: {percent(result.worst_gap)}"
    return "\n\n".join([table, series, summary])
