"""Fig. 3 — HYDRA vs the optimal (exhaustive) assignment.

Small setup (M = 2, NS ∈ [2, 6], other parameters per Sec. IV-B); for
every generated task set solve both HYDRA and OPT and record the
difference in cumulative tightness ``Δη = (η_OPT − η_HYDRA)/η_OPT``.
Expected shape: zero through low/medium utilisation, growing at high
utilisation, bounded well under ~22 % on average (the paper's worst
case).

Task sets that even OPT cannot schedule carry no tightness to compare
and are skipped; task sets where only HYDRA fails score Δη = 100 %
(HYDRA delivered none of the achievable tightness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiments.api import Experiment, GoldenFixture, RawRun
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_series, format_table, percent
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, utilization_sweep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepEngine, SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = [
    "Fig3Point",
    "Fig3Result",
    "Fig3Experiment",
    "run_fig3",
    "fig3_sweep_spec",
    "format_fig3",
]

#: Fig. 3's platform and security-task range.
_FIG3_CORES = 2
_FIG3_SECURITY_COUNT = (2, 6)


@dataclass(frozen=True)
class Fig3Point:
    """One utilisation point of Fig. 3."""

    utilization: float
    mean_gap: float
    max_gap: float
    compared: int  # task sets where OPT was feasible
    hydra_failures: int  # of those, how many HYDRA missed entirely


@dataclass(frozen=True)
class Fig3Result:
    points: tuple[Fig3Point, ...]
    scale: str
    search: str

    @property
    def worst_gap(self) -> float:
        gaps = [p.max_gap for p in self.points if p.compared > 0]
        return max(gaps, default=0.0)


def fig3_sweep_spec(
    scale: ExperimentScale,
    search: str = "branch-bound",
    config: SyntheticConfig | None = None,
) -> "SweepSpec":
    """The Fig. 3 HYDRA-vs-OPT comparison as a sweep."""
    from repro.experiments.parallel import SweepSpec, synthetic_config_to_dict

    platform = Platform(_FIG3_CORES)
    if config is None:
        config = SyntheticConfig(security_task_count=_FIG3_SECURITY_COUNT)
    utils = utilization_sweep(
        platform,
        step_fraction=scale.utilization_step,
        start_fraction=scale.utilization_start,
        stop_fraction=scale.utilization_stop,
    )
    return SweepSpec(
        kind="fig3-gap",
        seed=scale.seed + 31,
        points=tuple({"utilization": u} for u in utils),
        params={
            "cores": _FIG3_CORES,
            "tasksets_per_point": scale.fig3_tasksets_per_point,
            "search": search,
            "config": synthetic_config_to_dict(config),
        },
    )


@register_experiment("fig3")
class Fig3Experiment(Experiment):
    """Fig. 3 on the unified experiment protocol."""

    name = "fig3"
    title = "Fig. 3 — HYDRA vs optimal: tightness gap"
    description = (
        "Compare HYDRA against the (exponential-cost) optimal "
        "assignment on small systems, recording the cumulative "
        "tightness gap per utilisation point."
    )
    version = 1
    tags = ("paper", "figure")
    order = 40
    columns = (
        "utilization", "mean_gap_pct", "max_gap_pct", "compared",
        "hydra_failures",
    )

    def __init__(
        self,
        search: str = "branch-bound",
        config: SyntheticConfig | None = None,
    ) -> None:
        self.search = search
        self.config = config

    def sweeps(self, scale: ExperimentScale) -> list["SweepSpec"]:
        return [fig3_sweep_spec(scale, search=self.search, config=self.config)]

    def aggregate_domain(self, raw: RawRun) -> Fig3Result:
        (result,) = raw.sweeps
        points: list[Fig3Point] = []
        for point, payload in zip(result.spec.points, result.payloads):
            gaps = [float(g) for g in payload["gaps"]]
            points.append(
                Fig3Point(
                    utilization=float(point["utilization"]),
                    mean_gap=sum(gaps) / len(gaps) if gaps else 0.0,
                    max_gap=max(gaps, default=0.0),
                    compared=len(gaps),
                    hydra_failures=int(payload["hydra_failures"]),
                )
            )
        return Fig3Result(
            points=tuple(points), scale=raw.scale.name, search=self.search
        )

    def encode_data(self, domain: Fig3Result) -> dict[str, Any]:
        return {
            "scale": domain.scale,
            "search": domain.search,
            "points": [
                {
                    "utilization": p.utilization,
                    "mean_gap": p.mean_gap,
                    "max_gap": p.max_gap,
                    "compared": p.compared,
                    "hydra_failures": p.hydra_failures,
                }
                for p in domain.points
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> Fig3Result:
        return Fig3Result(
            points=tuple(
                Fig3Point(
                    utilization=float(p["utilization"]),
                    mean_gap=float(p["mean_gap"]),
                    max_gap=float(p["max_gap"]),
                    compared=int(p["compared"]),
                    hydra_failures=int(p["hydra_failures"]),
                )
                for p in data["points"]
            ),
            scale=str(data["scale"]),
            search=str(data["search"]),
        )

    def render_domain(self, domain: Fig3Result) -> str:
        return format_fig3(domain)

    def table_rows(self, domain: Fig3Result) -> list[Sequence[Any]]:
        return [
            (p.utilization, p.mean_gap, p.max_gap, p.compared,
             p.hydra_failures)
            for p in domain.points
        ]

    def golden_fixture(self) -> GoldenFixture:
        from repro.experiments.golden import fig3_mini_aggregate, fig3_mini_spec

        return GoldenFixture(
            name="fig3_mini",
            build_spec=fig3_mini_spec,
            summarize=fig3_mini_aggregate,
        )


def run_fig3(
    scale: ExperimentScale | None = None,
    search: str = "branch-bound",
    config: SyntheticConfig | None = None,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> Fig3Result:
    """Run the Fig. 3 comparison at the given scale.

    .. deprecated::
        Thin shim over ``Fig3Experiment`` kept for downstream callers;
        prefer ``get_experiment("fig3").run(scale, engine)``.

    ``search`` selects the optimal-search implementation; both return
    identical optima (tested), branch-and-bound is simply faster.
    ``engine`` selects the execution strategy (workers, cache).
    """
    return Fig3Experiment(search=search, config=config).run_domain(
        scale, engine, pool
    )


def format_fig3(result: Fig3Result) -> str:
    rows = [
        (
            f"{p.utilization:.3f}",
            percent(p.mean_gap),
            percent(p.max_gap),
            p.compared,
            p.hydra_failures,
        )
        for p in result.points
    ]
    table = format_table(
        ["U_total", "mean Δη", "max Δη", "compared", "HYDRA-only fails"],
        rows,
        title=(
            f"Fig. 3 — HYDRA vs optimal (M={_FIG3_CORES}, "
            f"NS ∈ {list(_FIG3_SECURITY_COUNT)}, scale={result.scale}, "
            f"search={result.search})"
        ),
    )
    series = format_series(
        [p.utilization for p in result.points],
        [p.mean_gap for p in result.points],
        label="mean Δη vs U ",
    )
    summary = f"worst observed Δη: {percent(result.worst_gap)}"
    return "\n\n".join([table, series, summary])
