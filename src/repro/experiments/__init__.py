"""Experiment drivers regenerating every table and figure of the paper
(plus the DESIGN §7 ablations).

* :mod:`repro.experiments.table1` — the security-task catalogue.
* :mod:`repro.experiments.fig1` — UAV case study detection-time CDFs.
* :mod:`repro.experiments.fig2` — acceptance-ratio improvement sweep.
* :mod:`repro.experiments.fig3` — HYDRA vs optimal tightness gap.
* :mod:`repro.experiments.ablations` — solver / core-choice / search /
  extension ablations.
* :mod:`repro.experiments.config` — ``smoke`` / ``default`` / ``paper``
  scaling presets (env var ``REPRO_SCALE``).
* :mod:`repro.experiments.parallel` — the parallel/cached/resumable
  :class:`SweepEngine` every driver runs through.
* :mod:`repro.experiments.cache` — the on-disk per-point result cache.
"""

from repro.experiments.ablations import (
    AllocatorComparison,
    SearchAblationResult,
    core_choice_ablation,
    extension_ablation,
    format_allocator_comparison,
    format_extension_ablation,
    format_search_ablation,
    partitioning_ablation,
    search_ablation,
    solver_ablation,
)
from repro.experiments.cache import ResultCache
from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.parallel import (
    SweepEngine,
    SweepResult,
    SweepSpec,
    SweepStats,
)
from repro.experiments.fig1 import (
    Fig1Result,
    build_uav_systems,
    format_fig1,
    run_fig1,
)
from repro.experiments.fig2 import Fig2Result, format_fig2, run_fig2
from repro.experiments.fig3 import Fig3Result, format_fig3, run_fig3
from repro.experiments.quality import (
    QualityResult,
    format_quality,
    run_quality,
)
from repro.experiments.table1 import format_table1, run_table1

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "ResultCache",
    "SweepEngine",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "run_table1",
    "format_table1",
    "run_fig1",
    "format_fig1",
    "build_uav_systems",
    "Fig1Result",
    "run_fig2",
    "format_fig2",
    "Fig2Result",
    "run_fig3",
    "format_fig3",
    "Fig3Result",
    "run_quality",
    "format_quality",
    "QualityResult",
    "solver_ablation",
    "core_choice_ablation",
    "search_ablation",
    "extension_ablation",
    "partitioning_ablation",
    "AllocatorComparison",
    "SearchAblationResult",
    "format_allocator_comparison",
    "format_search_ablation",
    "format_extension_ablation",
]
