"""Experiment drivers regenerating every table and figure of the paper
(plus the DESIGN §7 ablations), unified behind one declarative API.

* :mod:`repro.experiments.api` — the :class:`Experiment` protocol,
  :class:`ExperimentSpec`, and the typed, versioned
  :class:`ExperimentResult` (``to_json``/``from_json``/``to_csv``).
* :mod:`repro.experiments.registry` — the decorator-based experiment
  registry the CLI, golden machinery, and ``repro-hydra list`` consume.
* :mod:`repro.experiments.table1` — the security-task catalogue.
* :mod:`repro.experiments.fig1` — UAV case study detection-time CDFs.
* :mod:`repro.experiments.fig2` — acceptance-ratio improvement sweep.
* :mod:`repro.experiments.fig3` — HYDRA vs optimal tightness gap.
* :mod:`repro.experiments.quality` — tightness on commonly-accepted sets.
* :mod:`repro.experiments.ablations` — solver / core-choice / search /
  extension / partitioning ablations.
* :mod:`repro.experiments.scenario` — user-defined TOML scenario sweeps
  (``repro-hydra sweep --config``).
* :mod:`repro.experiments.config` — ``smoke`` / ``default`` / ``paper``
  scaling presets (env var ``REPRO_SCALE``).
* :mod:`repro.experiments.parallel` — the parallel/cached/resumable
  :class:`SweepEngine` every experiment runs through.
* :mod:`repro.experiments.pool` — the persistent :class:`WorkerPool`
  shared across sweeps (one fork per CLI invocation/pytest session).
* :mod:`repro.experiments.store` — the sharded, append-only
  :class:`ResultStore` (cache format v2; migrates v1 automatically).
* :mod:`repro.experiments.cache` — compatibility wrapper over the
  store (the deprecated ``ResultCache`` name).

The ``run_X``/``format_X`` module functions remain as thin deprecated
shims over the corresponding :class:`Experiment` classes.
"""

from repro.experiments.ablations import (
    AllocatorComparison,
    CoreChoiceAblationExperiment,
    ExtensionAblationExperiment,
    PartitioningAblationExperiment,
    SearchAblationExperiment,
    SearchAblationResult,
    SolverAblationExperiment,
    core_choice_ablation,
    extension_ablation,
    format_allocator_comparison,
    format_extension_ablation,
    format_search_ablation,
    partitioning_ablation,
    search_ablation,
    solver_ablation,
)
from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    ExperimentSpec,
    GoldenFixture,
    Point,
    RawRun,
)
from repro.experiments.cache import ResultCache
from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.store import ResultStore
from repro.experiments.fig1 import (
    Fig1Experiment,
    Fig1Result,
    build_uav_systems,
    format_fig1,
    run_fig1,
)
from repro.experiments.fig2 import (
    Fig2Experiment,
    Fig2Result,
    format_fig2,
    run_fig2,
)
from repro.experiments.fig3 import (
    Fig3Experiment,
    Fig3Result,
    format_fig3,
    run_fig3,
)
from repro.experiments.parallel import (
    SweepEngine,
    SweepResult,
    SweepSpec,
    SweepStats,
)
from repro.experiments.pool import (
    WorkerPool,
    get_shared_pool,
    shutdown_shared_pool,
)
from repro.experiments.quality import (
    QualityExperiment,
    QualityResult,
    format_quality,
    run_quality,
)
from repro.experiments.registry import (
    UnknownExperimentError,
    experiment_names,
    get_experiment,
    iter_experiments,
    register_experiment,
)
from repro.experiments.scenario import (
    ScenarioConfig,
    ScenarioExperiment,
    ScenarioResult,
    load_scenario,
    parse_scenario,
)
from repro.experiments.table1 import (
    Table1Experiment,
    format_table1,
    run_table1,
)

__all__ = [
    # unified API + registry
    "Experiment",
    "ExperimentSpec",
    "ExperimentResult",
    "Point",
    "RawRun",
    "GoldenFixture",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "iter_experiments",
    "UnknownExperimentError",
    # scales + engine + pool + store
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "ResultCache",
    "ResultStore",
    "SweepEngine",
    "SweepResult",
    "SweepSpec",
    "SweepStats",
    "WorkerPool",
    "get_shared_pool",
    "shutdown_shared_pool",
    # experiment classes
    "Table1Experiment",
    "Fig1Experiment",
    "Fig2Experiment",
    "Fig3Experiment",
    "QualityExperiment",
    "SolverAblationExperiment",
    "CoreChoiceAblationExperiment",
    "SearchAblationExperiment",
    "ExtensionAblationExperiment",
    "PartitioningAblationExperiment",
    "ScenarioExperiment",
    "ScenarioConfig",
    "ScenarioResult",
    "load_scenario",
    "parse_scenario",
    # deprecated shims (kept for downstream callers)
    "run_table1",
    "format_table1",
    "run_fig1",
    "format_fig1",
    "build_uav_systems",
    "Fig1Result",
    "run_fig2",
    "format_fig2",
    "Fig2Result",
    "run_fig3",
    "format_fig3",
    "Fig3Result",
    "run_quality",
    "format_quality",
    "QualityResult",
    "solver_ablation",
    "core_choice_ablation",
    "search_ablation",
    "extension_ablation",
    "partitioning_ablation",
    "AllocatorComparison",
    "SearchAblationResult",
    "format_allocator_comparison",
    "format_search_ablation",
    "format_extension_ablation",
]
