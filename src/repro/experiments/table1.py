"""Table I — the security-task catalogue, plus achieved allocations.

The paper's Table I lists each security task and its function.  The
reproduction regenerates that listing from
:data:`repro.taskgen.security_apps.TABLE1_SPECS` and extends it with
the timing parameters this library attaches (WCET, desired/maximum
period) and — as a cross-reference with Fig. 1 — the core and period
each task receives under HYDRA and SingleCore on the UAV platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig1 import build_uav_systems
from repro.experiments.reporting import format_table
from repro.taskgen.security_apps import TABLE1_SPECS

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    name: str
    application: str
    function: str
    surface: str
    wcet: float
    period_des: float
    period_max: float
    hydra_core: int
    hydra_period: float
    single_period: float


def run_table1(cores: int = 2) -> list[Table1Row]:
    """Build the extended Table I on a ``cores``-core UAV platform."""
    _, hydra_alloc, _, single_alloc = build_uav_systems(cores)
    rows: list[Table1Row] = []
    for spec in TABLE1_SPECS:
        hydra_assignment = hydra_alloc.assignment_for(spec.name)
        single_assignment = single_alloc.assignment_for(spec.name)
        rows.append(
            Table1Row(
                name=spec.name,
                application=spec.application,
                function=spec.function,
                surface=spec.surface,
                wcet=spec.wcet,
                period_des=spec.period_des,
                period_max=spec.period_max,
                hydra_core=hydra_assignment.core,
                hydra_period=hydra_assignment.period,
                single_period=single_assignment.period,
            )
        )
    return rows


def format_table1(rows: list[Table1Row], cores: int = 2) -> str:
    return format_table(
        [
            "task", "app", "surface", "C (ms)", "T_des", "T_max",
            "HYDRA core", "HYDRA T", "SingleCore T",
        ],
        [
            (
                r.name,
                r.application,
                r.surface,
                f"{r.wcet:.0f}",
                f"{r.period_des:.0f}",
                f"{r.period_max:.0f}",
                r.hydra_core,
                f"{r.hydra_period:.0f}",
                f"{r.single_period:.0f}",
            )
            for r in rows
        ],
        title=f"Table I — security tasks (UAV platform, {cores} cores)",
    )
