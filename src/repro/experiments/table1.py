"""Table I — the security-task catalogue, plus achieved allocations.

The paper's Table I lists each security task and its function.  The
reproduction regenerates that listing from
:data:`repro.taskgen.security_apps.TABLE1_SPECS` and extends it with
the timing parameters this library attaches (WCET, desired/maximum
period) and — as a cross-reference with Fig. 1 — the core and period
each task receives under HYDRA and SingleCore on the UAV platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.experiments.api import (
    Experiment,
    ExperimentResult,
    GoldenFixture,
    RawRun,
)
from repro.experiments.registry import register_experiment
from repro.experiments.reporting import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentScale
    from repro.experiments.parallel import SweepEngine, SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = [
    "Table1Row",
    "Table1Experiment",
    "run_table1",
    "table1_sweep_spec",
    "format_table1",
]


@dataclass(frozen=True)
class Table1Row:
    name: str
    application: str
    function: str
    surface: str
    wcet: float
    period_des: float
    period_max: float
    hydra_core: int
    hydra_period: float
    single_period: float


def table1_sweep_spec(cores: int = 2) -> "SweepSpec":
    """Table I as a single-point sweep (cacheable like the others)."""
    from repro.experiments.parallel import SweepSpec

    return SweepSpec(
        kind="table1",
        seed=0,  # the case study is deterministic; no randomness drawn
        points=({"cores": cores},),
    )


def _row_from_dict(row: Mapping[str, Any]) -> Table1Row:
    return Table1Row(
        name=row["name"],
        application=row["application"],
        function=row["function"],
        surface=row["surface"],
        wcet=float(row["wcet"]),
        period_des=float(row["period_des"]),
        period_max=float(row["period_max"]),
        hydra_core=int(row["hydra_core"]),
        hydra_period=float(row["hydra_period"]),
        single_period=float(row["single_period"]),
    )


@register_experiment("table1")
class Table1Experiment(Experiment):
    """Table I on the unified experiment protocol.

    The case study is deterministic, so the single-point sweep ignores
    the scale — ``--scale`` changes nothing here, by design.
    """

    name = "table1"
    title = "Table I — security-task catalogue + achieved allocations"
    description = (
        "Regenerate the paper's security-task listing, extended with "
        "the core and period each task receives under HYDRA and "
        "SingleCore on the UAV platform."
    )
    version = 1
    tags = ("paper", "table")
    order = 10
    columns = (
        "task", "application", "surface", "wcet", "period_des",
        "period_max", "hydra_core", "hydra_period", "single_period",
    )

    def __init__(self, cores: int = 2) -> None:
        self.cores = cores

    def sweeps(self, scale: "ExperimentScale") -> list["SweepSpec"]:
        return [table1_sweep_spec(self.cores)]

    def aggregate_domain(self, raw: RawRun) -> list[Table1Row]:
        return [_row_from_dict(row) for row in raw.payloads[0]["rows"]]

    def encode_data(self, domain: list[Table1Row]) -> dict[str, Any]:
        return {
            "cores": self.cores,
            "rows": [
                {
                    "name": r.name,
                    "application": r.application,
                    "function": r.function,
                    "surface": r.surface,
                    "wcet": r.wcet,
                    "period_des": r.period_des,
                    "period_max": r.period_max,
                    "hydra_core": r.hydra_core,
                    "hydra_period": r.hydra_period,
                    "single_period": r.single_period,
                }
                for r in domain
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> list[Table1Row]:
        return [_row_from_dict(row) for row in data["rows"]]

    def render(self, result: ExperimentResult) -> str:
        # The platform size lives in the result, not this instance: a
        # 4-core result loaded from JSON must render as 4 cores even
        # through a default-constructed (2-core) experiment.
        self.check_result(result)
        return format_table1(
            self.decode_data(result.data),
            cores=int(result.data.get("cores", self.cores)),
        )

    def render_domain(self, domain: list[Table1Row]) -> str:
        return format_table1(domain, cores=self.cores)

    def table_rows(self, domain: list[Table1Row]) -> list[Sequence[Any]]:
        return [
            (r.name, r.application, r.surface, r.wcet, r.period_des,
             r.period_max, r.hydra_core, r.hydra_period, r.single_period)
            for r in domain
        ]

    def golden_fixture(self) -> GoldenFixture:
        from repro.experiments.golden import (
            table1_mini_aggregate,
            table1_mini_spec,
        )

        return GoldenFixture(
            name="table1_mini",
            build_spec=table1_mini_spec,
            summarize=table1_mini_aggregate,
        )


def run_table1(
    cores: int = 2,
    engine: "SweepEngine | None" = None,
    pool: "WorkerPool | None" = None,
) -> list[Table1Row]:
    """Build the extended Table I on a ``cores``-core UAV platform.

    .. deprecated::
        Thin shim over ``Table1Experiment`` kept for downstream
        callers; prefer ``get_experiment("table1").run(engine=engine)``.
    """
    return Table1Experiment(cores=cores).run_domain(engine=engine, pool=pool)


def format_table1(rows: list[Table1Row], cores: int = 2) -> str:
    return format_table(
        [
            "task", "app", "surface", "C (ms)", "T_des", "T_max",
            "HYDRA core", "HYDRA T", "SingleCore T",
        ],
        [
            (
                r.name,
                r.application,
                r.surface,
                f"{r.wcet:.0f}",
                f"{r.period_des:.0f}",
                f"{r.period_max:.0f}",
                r.hydra_core,
                f"{r.hydra_period:.0f}",
                f"{r.single_period:.0f}",
            )
            for r in rows
        ],
        title=f"Table I — security tasks (UAV platform, {cores} cores)",
    )
