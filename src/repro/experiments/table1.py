"""Table I — the security-task catalogue, plus achieved allocations.

The paper's Table I lists each security task and its function.  The
reproduction regenerates that listing from
:data:`repro.taskgen.security_apps.TABLE1_SPECS` and extends it with
the timing parameters this library attaches (WCET, desired/maximum
period) and — as a cross-reference with Fig. 1 — the core and period
each task receives under HYDRA and SingleCore on the UAV platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table

__all__ = ["Table1Row", "run_table1", "table1_sweep_spec", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    name: str
    application: str
    function: str
    surface: str
    wcet: float
    period_des: float
    period_max: float
    hydra_core: int
    hydra_period: float
    single_period: float


def table1_sweep_spec(cores: int = 2) -> "SweepSpec":
    """Table I as a single-point sweep (cacheable like the others)."""
    from repro.experiments.parallel import SweepSpec

    return SweepSpec(
        kind="table1",
        seed=0,  # the case study is deterministic; no randomness drawn
        points=({"cores": cores},),
    )


def run_table1(
    cores: int = 2, engine: "SweepEngine | None" = None
) -> list[Table1Row]:
    """Build the extended Table I on a ``cores``-core UAV platform."""
    from repro.experiments.parallel import SweepEngine

    engine = engine or SweepEngine()
    result = engine.run(table1_sweep_spec(cores))
    return [
        Table1Row(
            name=row["name"],
            application=row["application"],
            function=row["function"],
            surface=row["surface"],
            wcet=float(row["wcet"]),
            period_des=float(row["period_des"]),
            period_max=float(row["period_max"]),
            hydra_core=int(row["hydra_core"]),
            hydra_period=float(row["hydra_period"]),
            single_period=float(row["single_period"]),
        )
        for row in result.payloads[0]["rows"]
    ]


def format_table1(rows: list[Table1Row], cores: int = 2) -> str:
    return format_table(
        [
            "task", "app", "surface", "C (ms)", "T_des", "T_max",
            "HYDRA core", "HYDRA T", "SingleCore T",
        ],
        [
            (
                r.name,
                r.application,
                r.surface,
                f"{r.wcet:.0f}",
                f"{r.period_des:.0f}",
                f"{r.period_max:.0f}",
                r.hydra_core,
                f"{r.hydra_period:.0f}",
                f"{r.single_period:.0f}",
            )
            for r in rows
        ],
        title=f"Table I — security tasks (UAV platform, {cores} cores)",
    )
