"""Compatibility wrapper over the sharded result store.

PR 1's ``ResultCache`` wrote one JSON file per sweep point
(``<cache_dir>/<kind>/<sha256>.json``).  That v1 layout is retired:
the engine now persists points in the sharded, append-only column
store of :mod:`repro.experiments.store`, which keeps the *same content
hashing* (``cache_key`` over the canonical key payload, format
:data:`CACHE_FORMAT`) while replacing per-point files with
per-experiment record logs.

This module remains so existing imports keep working:

* :class:`ResultCache` is now a thin alias of
  :class:`~repro.experiments.store.ResultStore`.  Pointing it at an
  old v1 directory migrates the entries automatically (one-shot); the
  keys are unchanged, so every previously cached point stays a hit.
* :func:`cache_key` and :data:`CACHE_FORMAT` are re-exported from the
  store module, which is their new home.

New code should import from :mod:`repro.experiments.store` directly.
"""

from __future__ import annotations

from repro.experiments.store import (
    CACHE_FORMAT,
    ResultStore,
    cache_key,
    write_v1_entry,
)

__all__ = ["ResultCache", "cache_key", "CACHE_FORMAT", "write_v1_entry"]


class ResultCache(ResultStore):
    """Deprecated alias of :class:`repro.experiments.store.ResultStore`.

    Kept for source compatibility with PR 1/2 callers; identical
    behaviour, including the automatic v1 migration on open.
    """
