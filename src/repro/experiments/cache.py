"""On-disk result cache for the sweep engine.

Monte-Carlo sweeps are pure functions of ``(experiment kind, point
parameters, shared parameters, seed, point index)`` — every trial's
randomness comes from a deterministic :class:`numpy.random.SeedSequence`
stream.  That makes per-point results cacheable: re-running a sweep, or
extending it with more utilisation points, only computes what is not on
disk yet.

Layout: one JSON file per point under the cache directory,

    <cache_dir>/<kind>/<sha256-of-key-payload>.json

holding ``{"key": <payload>, "payload": <result>}``.  The key payload
is the canonical JSON of every input that influences the result (seed,
point index, point dict, shared params, format version); storing it in
the file makes entries auditable and guards against hash collisions.

Entries are written atomically (tmp file + rename) so a killed sweep
never leaves a truncated entry behind — a partial sweep is simply
resumed on the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

__all__ = ["ResultCache", "cache_key"]

#: Bump when the cached payload layout changes incompatibly; old
#: entries then simply miss instead of being misread.
CACHE_FORMAT = 1


def _canonical(payload: Mapping[str, Any]) -> str:
    """Canonical JSON of a key payload (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(payload: Mapping[str, Any]) -> str:
    """Content hash of a key payload: sha256 over its canonical JSON."""
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


class ResultCache:
    """Directory-backed store of per-point sweep results.

    Parameters
    ----------
    directory:
        Cache root; created immediately (an unusable location fails
        fast, before any point computes).  Safe to share between
        experiments — entries are namespaced by experiment kind and
        keyed by a content hash of all inputs.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        # Fail fast on an unusable location — before any sweep point
        # has burned compute that could not be persisted.
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- paths ---------------------------------------------------------

    def path_for(self, kind: str, payload: Mapping[str, Any]) -> Path:
        return self.directory / kind / f"{cache_key(payload)}.json"

    # -- access --------------------------------------------------------

    def get(
        self, kind: str, key_payload: Mapping[str, Any]
    ) -> dict[str, Any] | None:
        """Stored result for ``key_payload``, or ``None`` on a miss.

        A corrupt entry (truncated write from an old library version,
        manual edit) counts as a miss and will be overwritten.
        """
        path = self.path_for(kind, key_payload)
        try:
            entry = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or "payload" not in entry
            # sha256 collision or hand-edited file: recompute.
            or entry.get("key") != json.loads(_canonical(key_payload))
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(
        self,
        kind: str,
        key_payload: Mapping[str, Any],
        payload: Mapping[str, Any],
    ) -> Path:
        """Atomically persist ``payload`` under ``key_payload``."""
        path = self.path_for(kind, key_payload)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": json.loads(_canonical(key_payload)),
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance ---------------------------------------------------

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*/*.json"):
                entry.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
