"""Command-line entry point: ``repro-hydra`` / ``python -m repro``.

Subcommands are *generated from the experiment registry* — every
registered :class:`~repro.experiments.api.Experiment` (built-in or
plugin) gets its own subcommand, plus three meta commands::

    repro-hydra list                         # what can I run?
    repro-hydra allocators                   # which strategies exist?
    repro-hydra allocators optimal           # describe one strategy
    repro-hydra workloads                    # which workload families?
    repro-hydra workloads uunifast           # describe one family
    repro-hydra executors                    # which execution backends?
    repro-hydra executors subprocess-workers # describe one backend
    repro-hydra table1
    repro-hydra fig2 --scale default --workers 4
    repro-hydra fig3 --scale paper --workers 8 --cache-dir results/cache
    repro-hydra quality --output q.json --format json
    repro-hydra ablations
    repro-hydra all --scale smoke --resume
    repro-hydra sweep --config examples/custom_sweep.toml
    repro-hydra ablate --config examples/ablate.toml

Sweeps run through the :class:`repro.experiments.parallel.SweepEngine`:
``--workers N`` fans utilisation points over N processes (results are
identical to a serial run — every point has its own SeedSequence
stream), ``--executor NAME`` picks the execution backend
(:mod:`repro.executors`; ``subprocess-workers`` runs fault-tolerant
long-lived worker subprocesses, and every backend is byte-identical
to serial), ``--cache-dir DIR`` caches per-point results on disk so
re-runs and extended sweeps only compute missing points, and
``--resume`` is shorthand for caching in ``.repro-cache``.  One
invocation forks at most one worker pool: every selected experiment's
sweeps reuse the shared :class:`repro.experiments.pool.WorkerPool`,
which is shut down when the run finishes (set ``REPRO_LOG=info`` to
watch the spawn happen exactly once).  Caches are sharded v2 stores
(:mod:`repro.experiments.store`); pointing ``--cache-dir`` at an old
v1 JSON-per-point directory migrates it in place, and::

    repro-hydra cache stats   [--cache-dir DIR]
    repro-hydra cache migrate [--cache-dir DIR]
    repro-hydra cache gc      [--cache-dir DIR]

inspects, migrates, or compacts a store without running anything, and::

    repro-hydra serve [--host H] [--port P] [--cache-dir DIR]

runs the sweep service (:mod:`repro.server`): an HTTP endpoint that
accepts sweep-spec submissions (``POST /jobs``), tracks job lifecycle
and progress, and serves typed results — all through the same
:class:`repro.jobs.JobRunner` the CLI subcommands use, so a sweep
submitted over HTTP and one run with ``repro-hydra sweep`` share the
cache, the worker pool, and byte-identical results.

Runtime failures exit with code 1 and a one-line typed message
(``repro-hydra: UnknownAllocatorError: …``) — never a traceback;
usage mistakes keep argparse's exit code 2.

Results are structured: ``--format json`` emits the versioned
:class:`~repro.experiments.api.ExperimentResult` document (readable
back with ``ExperimentResult.from_json``), ``--format csv`` the flat
tabular view, and ``--output FILE`` writes either to a file instead of
stdout.  ``repro-hydra sweep --config spec.toml`` runs a user-defined
scenario grid (allocator × heuristic × ordering × admission × core
count) with no driver code at all — see
:mod:`repro.experiments.scenario`; ``repro-hydra ablate --config
doc.toml`` runs an automated swap-one ablation study over the same
machinery and reports ranked per-component importance scores — see
:mod:`repro.ablate`; ``--allocator NAME`` and
``--workload NAME`` (both repeatable) override the grid's allocator
and workload axes from the command line, and ``repro-hydra
allocators`` / ``repro-hydra workloads`` list/describe every strategy
registered with :mod:`repro.allocators` and every workload family
registered with :mod:`repro.workloads`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.errors import CacheError, ConfigError, ValidationError
from repro.experiments.config import get_scale
from repro.experiments.registry import (
    experiment_names,
    get_experiment,
    iter_experiments,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.api import Experiment

__all__ = ["main", "build_parser"]

#: Cache directory used by ``--resume`` when ``--cache-dir`` is absent.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Meta commands that are not registry experiments.
_META_COMMANDS = (
    "list", "allocators", "workloads", "executors", "all", "ablations",
    "sweep", "ablate", "cache", "serve",
)

_FORMATS = ("text", "json", "csv")


def _positive_int(value: str) -> int:
    """Argparse type for ``--workers``: a worker *count* must be at
    least 1 (rejected at parse time, before anything runs)."""
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive worker count, got {workers}"
        )
    return workers


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every experiment-running subcommand."""
    parser.add_argument(
        "--scale",
        default=None,
        choices=("smoke", "default", "paper"),
        help="experiment scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the base RNG seed",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "fan sweep points out over N worker processes, N >= 1 "
            "(default: serial; results are identical for any worker "
            "count)"
        ),
    )
    parser.add_argument(
        "--executor",
        metavar="NAME",
        default=None,
        help=(
            "execution backend for sweep points — 'serial', 'pool', "
            "'subprocess-workers', or any plugin (see 'repro-hydra "
            "executors'); results are byte-identical for every backend "
            "(default: serial, or the shared pool with --workers)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "cache per-point sweep results in DIR; re-runs and extended "
            "sweeps only compute points missing from the cache"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from (and keep feeding) the default cache directory "
            f"'{DEFAULT_CACHE_DIR}' when --cache-dir is not given"
        ),
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=_FORMATS,
        help=(
            "output format: 'text' renders the report tables, 'json' the "
            "versioned ExperimentResult document, 'csv' the flat tabular "
            "view (default: text)"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the output to FILE instead of stdout",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help=(
            "additionally export each selected experiment's tabular view "
            "as <DIR>/<name>.csv (legacy; prefer --format csv --output)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-hydra`` parser; one subcommand per registered
    experiment, generated from the registry."""
    parser = argparse.ArgumentParser(
        prog="repro-hydra",
        description=(
            "Regenerate the tables and figures of 'A Design-Space "
            "Exploration for Allocating Security Tasks in Multicore "
            "Real-Time Systems' (DATE 2018) — plus ablations and "
            "user-defined scenario sweeps."
        ),
        epilog="run 'repro-hydra list' to see every experiment",
    )
    subparsers = parser.add_subparsers(
        dest="experiment",
        metavar="experiment",
        required=True,
        help="experiment (from the registry) or meta command",
    )

    list_parser = subparsers.add_parser(
        "list",
        help="list every registered experiment",
        description="List every registered experiment, in report order.",
    )
    list_parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="'text' for a table, 'json' for machine-readable specs",
    )
    list_parser.add_argument(
        "--tag",
        default=None,
        metavar="TAG",
        help=(
            "only list experiments carrying this spec tag (e.g. "
            "'paper', 'ablation')"
        ),
    )

    allocators = subparsers.add_parser(
        "allocators",
        help="list or describe the registered allocation strategies",
        description=(
            "Without NAME: one line per registered allocator (what a "
            "TOML grid's 'allocator' axis and --allocator accept). "
            "With NAME: the full description of one strategy."
        ),
    )
    allocators.add_argument(
        "name",
        nargs="?",
        default=None,
        metavar="NAME",
        help="describe this allocator instead of listing all of them",
    )
    allocators.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="'text' for a table, 'json' for machine-readable specs",
    )

    workloads = subparsers.add_parser(
        "workloads",
        help="list or describe the registered workload families",
        description=(
            "Without NAME: one line per registered workload generator "
            "(what a TOML grid's 'workload' axis and --workload "
            "accept). With NAME: the full description of one family."
        ),
    )
    workloads.add_argument(
        "name",
        nargs="?",
        default=None,
        metavar="NAME",
        help="describe this workload family instead of listing all",
    )
    workloads.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="'text' for a table, 'json' for machine-readable specs",
    )

    executors = subparsers.add_parser(
        "executors",
        help="list or describe the registered execution backends",
        description=(
            "Without NAME: one line per registered execution backend "
            "(what --executor and job submissions accept). With NAME: "
            "the full description of one backend.  Backends are "
            "payload-identical by contract: picking one never changes "
            "a result byte."
        ),
    )
    executors.add_argument(
        "name",
        nargs="?",
        default=None,
        metavar="NAME",
        help="describe this execution backend instead of listing all",
    )
    executors.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="'text' for a table, 'json' for machine-readable specs",
    )

    for experiment in iter_experiments():
        spec = experiment.spec()
        sub = subparsers.add_parser(
            spec.name,
            help=spec.title,
            description=spec.description or spec.title,
        )
        _add_run_options(sub)

    for name, help_text in (
        ("ablations", "run every ablation experiment"),
        ("all", "run every registered experiment"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_run_options(sub)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a user-defined scenario sweep from a TOML config",
        description=(
            "Run a TOML-defined design-space sweep (placement heuristic "
            "× task ordering × admission test × core count) through the "
            "parallel/cached engine — no driver code needed."
        ),
    )
    sweep.add_argument(
        "--config",
        metavar="FILE",
        required=True,
        help="scenario TOML file (see examples/custom_sweep.toml)",
    )
    sweep.add_argument(
        "--allocator",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "sweep this allocation strategy (repeatable); overrides the "
            "config's 'allocator' axis — see 'repro-hydra allocators' "
            "for what is registered"
        ),
    )
    sweep.add_argument(
        "--workload",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "generate task sets with this workload family (repeatable); "
            "overrides the config's 'workload' axis — see 'repro-hydra "
            "workloads' for what is registered"
        ),
    )
    _add_run_options(sweep)

    ablate = subparsers.add_parser(
        "ablate",
        help="run an automated ablation / component-importance study",
        description=(
            "Run a swap-one ablation study from a TOML config: the "
            "baseline design point plus one variant per registered "
            "component on every ablated axis, executed through the "
            "parallel/cached engine, scored and ranked by component "
            "importance (harmful components flagged explicitly)."
        ),
    )
    ablate.add_argument(
        "--config",
        metavar="FILE",
        required=True,
        help="ablation TOML file (see examples/ablate.toml)",
    )
    ablate.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="AXIS",
        choices=("heuristic", "ordering", "admission", "allocator",
                 "workload"),
        help=(
            "ablate only this axis (repeatable); overrides the "
            "config's 'axes' list"
        ),
    )
    _add_run_options(ablate)

    cache = subparsers.add_parser(
        "cache",
        help="inspect, migrate, or compact an on-disk result store",
        description=(
            "Maintain a sweep result store: 'stats' reports shards, "
            "entry counts and bytes (without mutating anything), "
            "'migrate' ingests a v1 JSON-per-point directory into the "
            "sharded v2 layout, 'gc' compacts shards by dropping "
            "superseded and torn records."
        ),
    )
    cache.add_argument(
        "action",
        choices=("stats", "migrate", "gc"),
        help="what to do with the store",
    )
    cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"store root (default: '{DEFAULT_CACHE_DIR}')",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve sweep jobs over HTTP (stdlib asyncio, no deps)",
        description=(
            "Run the sweep service: POST /jobs submits a sweep spec "
            "(the TOML-grid schema as JSON, or an experiment name), "
            "GET /jobs/{id} polls lifecycle and progress, GET "
            "/jobs/{id}/result fetches the typed ExperimentResult, "
            "DELETE /jobs/{id} cancels cooperatively.  Duplicate "
            "submissions map to the same job id, and a warm cache "
            "completes them without recomputation."
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8177,
        help="bind port (default: 8177)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=(
            f"content-addressed store for job results (default: "
            f"'{DEFAULT_CACHE_DIR}'); shared with the sweep/experiment "
            f"subcommands, so served jobs and CLI runs reuse each "
            f"other's points"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker processes per job, N >= 1 (default: serial)",
    )
    serve.add_argument(
        "--executor",
        metavar="NAME",
        default=None,
        help=(
            "default execution backend for served jobs (see "
            "'repro-hydra executors'); submissions may still name "
            "their own via an 'executor' key"
        ),
    )

    return parser


def _typed_error(exc: BaseException) -> None:
    """Report a runtime failure as one typed line on stderr and exit 1.

    ``repro-hydra: UnknownAllocatorError: unknown allocator …`` — the
    class name is the machine-greppable category, the message stays
    the library's own wording, and there is never a traceback.  Usage
    mistakes (bad flags) stay with argparse's ``parser.error`` and
    exit code 2; this path is for errors that only surface once the
    arguments were well-formed.
    """
    message = " ".join(str(exc).split())
    print(
        f"repro-hydra: {type(exc).__name__}: {message}", file=sys.stderr
    )
    raise SystemExit(1)


def _build_runner(args):
    from repro.jobs import JobRunner

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    executor = getattr(args, "executor", None)
    if executor is not None:
        from repro.executors import get_executor_info

        get_executor_info(executor)  # typed error before anything runs
    return JobRunner(
        cache_dir=cache_dir, workers=args.workers, executor=executor
    )


def _selected_experiments(args) -> list["Experiment"]:
    if args.experiment == "all":
        return list(iter_experiments())
    if args.experiment == "ablations":
        # The registry-level tag filter (same path as `list --tag`).
        return list(iter_experiments(tag="ablation"))
    if args.experiment == "ablate":
        from repro.ablate import AblationExperiment, load_ablation

        config = load_ablation(args.config)
        if args.axis:
            config = config.with_axes(args.axis)
        return [AblationExperiment(config)]
    if args.experiment == "sweep":
        from repro.experiments.scenario import (
            build_scenario_experiment,
            load_scenario,
        )

        config = load_scenario(args.config)
        if args.allocator:
            config = config.with_allocators(args.allocator)
        if args.workload:
            config = config.with_workloads(args.workload)
        return [build_scenario_experiment(config)]
    return [get_experiment(args.experiment)]


def _emit(text: str, output: str | None) -> None:
    if output is None:
        print(text)
    else:
        target = Path(output)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text if text.endswith("\n") else text + "\n")


def _one_line(text: str, limit: int = 72) -> str:
    """First line of ``text``, ellipsised to ``limit`` characters."""
    line = text.strip().splitlines()[0] if text.strip() else ""
    if len(line) > limit:
        return line[: limit - 1].rstrip() + "…"
    return line


def _run_list(args) -> int:
    from repro.experiments.reporting import format_table

    specs = [e.spec() for e in iter_experiments(tag=args.tag)]
    if args.output_format == "json":
        print(json.dumps([s.to_dict() for s in specs], indent=2))
        return 0
    title = "Registered experiments (run with 'repro-hydra <name>')"
    if args.tag is not None:
        title = (
            f"Registered experiments tagged {args.tag!r} "
            f"(run with 'repro-hydra <name>')"
        )
    print(
        format_table(
            ["name", "description", "tags"],
            [
                (s.name, _one_line(s.description or s.title), ",".join(s.tags))
                for s in specs
            ],
            title=title,
        )
    )
    print(
        "\nmeta commands: allocators, workloads, executors, "
        "ablations, all, "
        "sweep --config FILE (TOML scenario grid), "
        "ablate --config FILE (ablation study)"
    )
    return 0


def _run_registry_listing(
    args,
    get_info,
    iter_info,
    command: str,
    flag: str,
    list_title: str,
) -> int:
    """Shared list/describe body of the ``allocators`` and
    ``workloads`` meta commands (same UX, different registry)."""
    from repro.experiments.reporting import format_table

    if args.name is not None:
        info = get_info(args.name)  # typed error when unknown
        if args.output_format == "json":
            print(json.dumps(info.to_dict(), indent=2))
            return 0
        print(f"{info.name} — {info.title}")
        if info.tags:
            print(f"tags: {', '.join(info.tags)}")
        if info.description:
            print(f"\n{info.description}")
        print(
            f"\nsweep it: repro-hydra sweep --config FILE "
            f"{flag} {info.name}"
        )
        return 0

    infos = list(iter_info())
    if args.output_format == "json":
        print(json.dumps([i.to_dict() for i in infos], indent=2))
        return 0
    print(
        format_table(
            ["name", "title", "tags"],
            [(i.name, _one_line(i.title), ",".join(i.tags)) for i in infos],
            title=list_title,
        )
    )
    print(f"\ndescribe one: repro-hydra {command} NAME")
    return 0


def _run_allocators(args) -> int:
    from repro.allocators import get_allocator_info, iter_allocator_info

    return _run_registry_listing(
        args,
        get_allocator_info,
        iter_allocator_info,
        command="allocators",
        flag="--allocator",
        list_title=(
            "Registered allocators (sweep with a TOML 'allocator' "
            "axis or --allocator NAME)"
        ),
    )


def _run_workloads(args) -> int:
    from repro.workloads import get_workload_info, iter_workload_info

    return _run_registry_listing(
        args,
        get_workload_info,
        iter_workload_info,
        command="workloads",
        flag="--workload",
        list_title=(
            "Registered workload families (sweep with a TOML "
            "'workload' axis or --workload NAME)"
        ),
    )


def _run_executors(args) -> int:
    from repro.executors import get_executor_info, iter_executor_info

    return _run_registry_listing(
        args,
        get_executor_info,
        iter_executor_info,
        command="executors",
        flag="--executor",
        list_title=(
            "Registered execution backends (run sweeps with "
            "--executor NAME; results are identical for every backend)"
        ),
    )


def _run_cache(args) -> int:
    from repro.experiments.store import ResultStore

    directory = args.cache_dir
    if args.action == "stats":
        # Genuinely read-only: no root creation, no migration, no
        # index-rebuild persisting — a typoed directory reads as empty
        # instead of being silently created.
        stats = ResultStore(directory, readonly=True).stats()
        fmt = "v2" if stats["migrated"] else "v1/unmigrated"
        print(
            f"store {stats['directory']} ({fmt}): "
            f"{stats['entries']} entries, {stats['data_bytes']} data bytes, "
            f"{len(stats['shards'])} shard(s)"
        )
        for kind, shard in sorted(stats["shards"].items()):
            print(
                f"  {kind:<24} {shard['entries']:>8} entries "
                f"{shard['data_bytes']:>12} bytes"
            )
            for writer, seg in sorted(shard.get("segments", {}).items()):
                print(
                    f"    writer {writer:<17} {seg['entries']:>8} entries "
                    f"{seg['data_bytes']:>12} bytes"
                )
        if stats["segment_files"]:
            print(
                f"  {stats['segment_files']} writer segment file(s), "
                f"{stats['segment_bytes']} bytes — run 'repro-hydra "
                f"cache gc' to merge them into the primary log"
            )
        if stats["pending_v1_entries"]:
            print(
                f"  {stats['pending_v1_entries']} v1 entr"
                f"{'y' if stats['pending_v1_entries'] == 1 else 'ies'} "
                f"pending migration (run 'repro-hydra cache migrate')"
            )
        return 0
    # The mutating verbs refuse to conjure a store out of thin air — a
    # typoed --cache-dir must error, not report success on a fresh
    # empty directory (stats above is read-only and needs no guard).
    if not Path(directory).is_dir():
        raise ValidationError(
            f"no cache directory at {directory!r}; nothing to "
            f"{args.action}"
        )
    if args.action == "migrate":
        store = ResultStore(directory, migrate=False)
        migrated = store.migrate()
        print(
            f"migrated {migrated} v1 entr"
            f"{'y' if migrated == 1 else 'ies'} into {directory} "
            f"({len(store)} entries total)"
        )
        return 0
    summary = ResultStore(directory).gc()
    if summary["merged_segments"]:
        print(
            f"gc {directory}: merged {summary['merged_segments']} "
            f"writer segment(s) ({summary['merged_entries']} "
            f"entr{'y' if summary['merged_entries'] == 1 else 'ies'}) "
            f"into the primary log"
        )
    print(
        f"gc {directory}: {summary['entries']} live entries across "
        f"{len(summary['shards'])} shard(s), "
        f"{summary['reclaimed_bytes']} bytes reclaimed"
    )
    return 0


def _run_serve(args) -> int:
    import os

    from repro.jobs import JobRunner
    from repro.server import JobServiceApp, run_server

    if args.executor is not None:
        from repro.executors import get_executor_info

        get_executor_info(args.executor)  # typed error before binding
    # The service routinely shares its cache with CLI runs, so it
    # appends to a pid-suffixed writer segment instead of the primary
    # log — two live writers can never interleave ('cache gc' merges).
    runner = JobRunner(
        cache_dir=args.cache_dir,
        workers=args.workers,
        executor=args.executor,
        store_writer=f"serve{os.getpid()}",
    )
    app = JobServiceApp(runner)
    print(
        f"repro-hydra serve: listening on {args.host}:{args.port} "
        f"(cache: {args.cache_dir}; ^C stops)",
        file=sys.stderr,
    )
    try:
        run_server(app, host=args.host, port=args.port)
    except KeyboardInterrupt:
        pass
    finally:
        runner.close()
        from repro.experiments.pool import shutdown_shared_pool

        shutdown_shared_pool()
    return 0


def _configure_logging() -> None:
    """Honour ``REPRO_LOG`` (e.g. ``info``, ``debug``): the pool logs
    its spawns at INFO, so ``REPRO_LOG=info`` makes reuse observable
    on stderr without touching normal output."""
    import logging
    import os

    level_name = os.environ.get("REPRO_LOG")
    if not level_name:
        return
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        return
    logging.basicConfig(
        stream=sys.stderr,
        level=level,
        format="%(name)s: %(message)s",
    )


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    _configure_logging()

    # Registry lookup with a helpful error: an unknown command token —
    # e.g. a plugin experiment that was never imported, or a typo —
    # should point at 'repro-hydra list' instead of dumping usage.
    # Only the leading token counts as the command; anything after a
    # flag is that flag's value and argparse handles it.
    known = set(experiment_names()) | set(_META_COMMANDS)
    command = argv[0] if argv and not argv[0].startswith("-") else None
    if command is not None and command not in known:
        print(
            f"repro-hydra: unknown experiment {command!r}; run "
            f"'repro-hydra list' to see what is registered",
            file=sys.stderr,
        )
        return 2

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        return _run_list(args)
    if args.experiment == "allocators":
        try:
            return _run_allocators(args)
        except ConfigError as exc:
            _typed_error(exc)
    if args.experiment == "workloads":
        try:
            return _run_workloads(args)
        except ConfigError as exc:
            _typed_error(exc)
    if args.experiment == "executors":
        try:
            return _run_executors(args)
        except ConfigError as exc:
            _typed_error(exc)
    if args.experiment == "cache":
        try:
            return _run_cache(args)
        except (ValidationError, CacheError) as exc:
            _typed_error(exc)
    if args.experiment == "serve":
        try:
            return _run_serve(args)
        except (CacheError, ConfigError, OSError) as exc:
            # OSError covers bind failures (port already in use,
            # privileged port), ConfigError an unknown --executor:
            # one typed line, never a traceback.
            _typed_error(exc)

    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = scale.with_overrides(seed=args.seed)
    try:
        runner = _build_runner(args)
    except (CacheError, ConfigError) as exc:
        # An unusable --cache-dir or unknown --executor fails fast,
        # before any point computes.
        _typed_error(exc)

    try:
        experiments = _selected_experiments(args)
    except (ValidationError, ConfigError) as exc:
        _typed_error(exc)

    fmt = args.output_format
    if fmt == "csv" and len(experiments) != 1:
        parser.error(
            f"--format csv needs a single experiment (got "
            f"{len(experiments)}); use --csv DIR for per-experiment files"
        )

    results = []
    try:
        # Every experiment runs as a job through one JobRunner — the
        # exact path the sweep service serves — so each gets an
        # idempotent job id, shares the content-addressed store, and
        # attaches to the shared worker pool on first parallel sweep
        # (one fork for the whole invocation, reaped when the runs
        # end).
        for experiment in experiments:
            job = runner.run_experiment(experiment, scale)
            results.append((experiment, job.result))
    except (ValidationError, ConfigError, CacheError) as exc:
        # Config-level mistakes (e.g. a scenario utilisation range that
        # only becomes resolvable against the scale) surface as clean
        # typed one-liners, not tracebacks.
        _typed_error(exc)
    finally:
        runner.close()
        from repro.experiments.pool import shutdown_shared_pool

        shutdown_shared_pool()

    if args.csv:
        target = Path(args.csv)
        target.mkdir(parents=True, exist_ok=True)
        for experiment, result in results:
            if result.columns:
                name = result.experiment.replace(":", "-").replace("/", "-")
                (target / f"{name}.csv").write_text(result.to_csv())

    if fmt == "json":
        if len(results) == 1:
            text = results[0][1].to_json()
        else:
            text = json.dumps(
                [result.to_dict() for _, result in results],
                indent=2,
                sort_keys=True,
            )
        _emit(text, args.output)
    elif fmt == "csv":
        _emit(results[0][1].to_csv(), args.output)
    else:
        sections = [
            experiment.render(result) for experiment, result in results
        ]
        _emit(("\n\n" + "=" * 78 + "\n\n").join(sections), args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
