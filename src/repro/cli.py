"""Command-line entry point: ``repro-hydra`` / ``python -m repro``.

Subcommands are *generated from the experiment registry* — every
registered :class:`~repro.experiments.api.Experiment` (built-in or
plugin) gets its own subcommand, plus three meta commands::

    repro-hydra list                         # what can I run?
    repro-hydra table1
    repro-hydra fig2 --scale default --workers 4
    repro-hydra fig3 --scale paper --workers 8 --cache-dir results/cache
    repro-hydra quality --output q.json --format json
    repro-hydra ablations
    repro-hydra all --scale smoke --resume
    repro-hydra sweep --config examples/custom_sweep.toml

Sweeps run through the :class:`repro.experiments.parallel.SweepEngine`:
``--workers N`` fans utilisation points over N processes (results are
identical to a serial run — every point has its own SeedSequence
stream), ``--cache-dir DIR`` caches per-point results on disk so
re-runs and extended sweeps only compute missing points, and
``--resume`` is shorthand for caching in ``.repro-cache``.

Results are structured: ``--format json`` emits the versioned
:class:`~repro.experiments.api.ExperimentResult` document (readable
back with ``ExperimentResult.from_json``), ``--format csv`` the flat
tabular view, and ``--output FILE`` writes either to a file instead of
stdout.  ``repro-hydra sweep --config spec.toml`` runs a user-defined
scenario grid (heuristic × ordering × admission × core count) with no
driver code at all — see :mod:`repro.experiments.scenario`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.errors import ValidationError
from repro.experiments.config import get_scale
from repro.experiments.registry import (
    experiment_names,
    get_experiment,
    iter_experiments,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.api import Experiment
    from repro.experiments.parallel import SweepEngine

__all__ = ["main", "build_parser"]

#: Cache directory used by ``--resume`` when ``--cache-dir`` is absent.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Meta commands that are not registry experiments.
_META_COMMANDS = ("list", "all", "ablations", "sweep")

_FORMATS = ("text", "json", "csv")


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every experiment-running subcommand."""
    parser.add_argument(
        "--scale",
        default=None,
        choices=("smoke", "default", "paper"),
        help="experiment scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the base RNG seed",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan sweep points out over N worker processes (default: "
            "serial; results are identical for any worker count)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "cache per-point sweep results in DIR; re-runs and extended "
            "sweeps only compute points missing from the cache"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from (and keep feeding) the default cache directory "
            f"'{DEFAULT_CACHE_DIR}' when --cache-dir is not given"
        ),
    )
    parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=_FORMATS,
        help=(
            "output format: 'text' renders the report tables, 'json' the "
            "versioned ExperimentResult document, 'csv' the flat tabular "
            "view (default: text)"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the output to FILE instead of stdout",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help=(
            "additionally export each selected experiment's tabular view "
            "as <DIR>/<name>.csv (legacy; prefer --format csv --output)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-hydra`` parser; one subcommand per registered
    experiment, generated from the registry."""
    parser = argparse.ArgumentParser(
        prog="repro-hydra",
        description=(
            "Regenerate the tables and figures of 'A Design-Space "
            "Exploration for Allocating Security Tasks in Multicore "
            "Real-Time Systems' (DATE 2018) — plus ablations and "
            "user-defined scenario sweeps."
        ),
        epilog="run 'repro-hydra list' to see every experiment",
    )
    subparsers = parser.add_subparsers(
        dest="experiment",
        metavar="experiment",
        required=True,
        help="experiment (from the registry) or meta command",
    )

    list_parser = subparsers.add_parser(
        "list",
        help="list every registered experiment",
        description="List every registered experiment, in report order.",
    )
    list_parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "json"),
        help="'text' for a table, 'json' for machine-readable specs",
    )

    for experiment in iter_experiments():
        spec = experiment.spec()
        sub = subparsers.add_parser(
            spec.name,
            help=spec.title,
            description=spec.description or spec.title,
        )
        _add_run_options(sub)

    for name, help_text in (
        ("ablations", "run every ablation experiment"),
        ("all", "run every registered experiment"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_run_options(sub)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a user-defined scenario sweep from a TOML config",
        description=(
            "Run a TOML-defined design-space sweep (placement heuristic "
            "× task ordering × admission test × core count) through the "
            "parallel/cached engine — no driver code needed."
        ),
    )
    sweep.add_argument(
        "--config",
        metavar="FILE",
        required=True,
        help="scenario TOML file (see examples/custom_sweep.toml)",
    )
    _add_run_options(sweep)

    return parser


def _build_engine(args) -> "SweepEngine":
    from repro.experiments.parallel import SweepEngine

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    return SweepEngine(workers=args.workers, cache=cache_dir)


def _selected_experiments(args) -> list["Experiment"]:
    if args.experiment == "all":
        return list(iter_experiments())
    if args.experiment == "ablations":
        return [
            e for e in iter_experiments() if "ablation" in e.spec().tags
        ]
    if args.experiment == "sweep":
        from repro.experiments.scenario import (
            ScenarioExperiment,
            load_scenario,
        )

        return [ScenarioExperiment(load_scenario(args.config))]
    return [get_experiment(args.experiment)]


def _emit(text: str, output: str | None) -> None:
    if output is None:
        print(text)
    else:
        target = Path(output)
        if target.parent != Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text if text.endswith("\n") else text + "\n")


def _run_list(args) -> int:
    from repro.experiments.reporting import format_table

    specs = [e.spec() for e in iter_experiments()]
    if args.output_format == "json":
        print(json.dumps([s.to_dict() for s in specs], indent=2))
        return 0
    print(
        format_table(
            ["name", "title", "tags"],
            [(s.name, s.title, ",".join(s.tags)) for s in specs],
            title="Registered experiments (run with 'repro-hydra <name>')",
        )
    )
    print(
        "\nmeta commands: ablations, all, "
        "sweep --config FILE (TOML scenario grid)"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)

    # Registry lookup with a helpful error: an unknown command token —
    # e.g. a plugin experiment that was never imported, or a typo —
    # should point at 'repro-hydra list' instead of dumping usage.
    # Only the leading token counts as the command; anything after a
    # flag is that flag's value and argparse handles it.
    known = set(experiment_names()) | set(_META_COMMANDS)
    command = argv[0] if argv and not argv[0].startswith("-") else None
    if command is not None and command not in known:
        print(
            f"repro-hydra: unknown experiment {command!r}; run "
            f"'repro-hydra list' to see what is registered",
            file=sys.stderr,
        )
        return 2

    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        return _run_list(args)

    if args.workers is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = scale.with_overrides(seed=args.seed)
    engine = _build_engine(args)

    try:
        experiments = _selected_experiments(args)
    except ValidationError as exc:
        parser.error(str(exc))

    fmt = args.output_format
    if fmt == "csv" and len(experiments) != 1:
        parser.error(
            f"--format csv needs a single experiment (got "
            f"{len(experiments)}); use --csv DIR for per-experiment files"
        )

    results = []
    try:
        for experiment in experiments:
            results.append((experiment, experiment.run(scale, engine)))
    except ValidationError as exc:
        # Config-level mistakes (e.g. a scenario utilisation range that
        # only becomes resolvable against the scale) surface as clean
        # CLI errors, not tracebacks.
        parser.error(str(exc))

    if args.csv:
        target = Path(args.csv)
        target.mkdir(parents=True, exist_ok=True)
        for experiment, result in results:
            if result.columns:
                name = result.experiment.replace(":", "-").replace("/", "-")
                (target / f"{name}.csv").write_text(result.to_csv())

    if fmt == "json":
        if len(results) == 1:
            text = results[0][1].to_json()
        else:
            text = json.dumps(
                [result.to_dict() for _, result in results],
                indent=2,
                sort_keys=True,
            )
        _emit(text, args.output)
    elif fmt == "csv":
        _emit(results[0][1].to_csv(), args.output)
    else:
        sections = [
            experiment.render(result) for experiment, result in results
        ]
        _emit(("\n\n" + "=" * 78 + "\n\n").join(sections), args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
