"""Command-line entry point: ``repro-hydra`` / ``python -m repro``.

Runs any of the paper's experiments at a chosen scale and prints the
table/series the paper reports::

    repro-hydra table1
    repro-hydra fig1 --scale smoke
    repro-hydra fig2 --scale default --workers 4
    repro-hydra fig3 --scale paper --workers 8 --cache-dir results/cache
    repro-hydra ablations
    repro-hydra all --scale smoke --resume

Sweeps run through the :class:`repro.experiments.parallel.SweepEngine`:
``--workers N`` fans utilisation points over N processes (results are
identical to a serial run — every point has its own SeedSequence
stream), ``--cache-dir DIR`` caches per-point results on disk so
re-runs and extended sweeps only compute missing points, and
``--resume`` is shorthand for caching in ``.repro-cache``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import (
    core_choice_ablation,
    extension_ablation,
    format_allocator_comparison,
    format_extension_ablation,
    format_fig1,
    format_fig2,
    format_fig3,
    format_quality,
    format_search_ablation,
    format_table1,
    get_scale,
    partitioning_ablation,
    run_fig1,
    run_fig2,
    run_fig3,
    run_quality,
    run_table1,
    search_ablation,
    solver_ablation,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = (
    "table1", "fig1", "fig2", "fig3", "quality", "ablations", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hydra",
        description=(
            "Regenerate the tables and figures of 'A Design-Space "
            "Exploration for Allocating Security Tasks in Multicore "
            "Real-Time Systems' (DATE 2018)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS,
        help="which experiment to run",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=("smoke", "default", "paper"),
        help="experiment scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the base RNG seed",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help=(
            "additionally export the numeric series of the selected "
            "experiment(s) as CSV files into DIR"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan sweep points out over N worker processes (default: "
            "serial; results are identical for any worker count)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "cache per-point sweep results in DIR; re-runs and extended "
            "sweeps only compute points missing from the cache"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from (and keep feeding) the default cache directory "
            "'.repro-cache' when --cache-dir is not given"
        ),
    )
    return parser


def _export_csv(directory: str, name: str, headers, rows) -> None:
    from pathlib import Path

    from repro.io import rows_to_csv

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    rows_to_csv(headers, rows, target / f"{name}.csv")


#: Cache directory used by ``--resume`` when ``--cache-dir`` is absent.
DEFAULT_CACHE_DIR = ".repro-cache"


def main(argv: Sequence[str] | None = None) -> int:
    from repro.experiments.parallel import SweepEngine

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    scale = get_scale(args.scale)
    if args.seed is not None:
        scale = scale.with_overrides(seed=args.seed)

    cache_dir = args.cache_dir
    if cache_dir is None and args.resume:
        cache_dir = DEFAULT_CACHE_DIR
    engine = SweepEngine(workers=args.workers, cache=cache_dir)

    sections: list[str] = []
    if args.experiment in ("table1", "all"):
        rows = run_table1(engine=engine)
        sections.append(format_table1(rows))
        if args.csv:
            _export_csv(
                args.csv,
                "table1",
                ["task", "application", "surface", "wcet", "period_des",
                 "period_max", "hydra_core", "hydra_period",
                 "single_period"],
                [
                    (r.name, r.application, r.surface, r.wcet,
                     r.period_des, r.period_max, r.hydra_core,
                     r.hydra_period, r.single_period)
                    for r in rows
                ],
            )
    if args.experiment in ("fig1", "all"):
        fig1 = run_fig1(scale, engine=engine)
        sections.append(format_fig1(fig1))
        if args.csv:
            _export_csv(
                args.csv,
                "fig1",
                ["cores", "scheme", "detection_time_ms"],
                [
                    (point.cores, scheme.scheme, t)
                    for point in fig1.points
                    for scheme in (point.hydra, point.single)
                    for t in scheme.times
                ],
            )
    if args.experiment in ("fig2", "all"):
        fig2 = run_fig2(scale, engine=engine)
        sections.append(format_fig2(fig2))
        if args.csv:
            _export_csv(
                args.csv,
                "fig2",
                ["cores", "utilization", "accept_hydra", "accept_single",
                 "improvement_pct"],
                [
                    (p.cores, p.utilization, p.ratio_hydra,
                     p.ratio_single, p.improvement)
                    for p in fig2.points
                ],
            )
    if args.experiment in ("fig3", "all"):
        fig3 = run_fig3(scale, engine=engine)
        sections.append(format_fig3(fig3))
        if args.csv:
            _export_csv(
                args.csv,
                "fig3",
                ["utilization", "mean_gap_pct", "max_gap_pct", "compared",
                 "hydra_failures"],
                [
                    (p.utilization, p.mean_gap, p.max_gap, p.compared,
                     p.hydra_failures)
                    for p in fig3.points
                ],
            )
    if args.experiment in ("quality", "all"):
        quality = run_quality(scale, engine=engine)
        sections.append(format_quality(quality))
        if args.csv:
            _export_csv(
                args.csv,
                "quality",
                ["cores", "utilization", "both_accepted",
                 "mean_tightness_hydra", "mean_tightness_single"],
                [
                    (p.cores, p.utilization, p.both_accepted,
                     p.mean_tightness_hydra, p.mean_tightness_single)
                    for p in quality.points
                ],
            )
    if args.experiment in ("ablations", "all"):
        sections.append(
            format_allocator_comparison(
                solver_ablation(scale, engine=engine), "Ablation: period solver"
            )
        )
        sections.append(
            format_allocator_comparison(
                core_choice_ablation(scale, engine=engine), "Ablation: core-selection rule"
            )
        )
        sections.append(format_search_ablation(search_ablation(scale)))
        sections.append(format_extension_ablation(extension_ablation(scale)))
        sections.append(
            format_allocator_comparison(
                partitioning_ablation(scale, engine=engine),
                "Ablation: real-time partitioning heuristic",
            )
        )

    print(("\n\n" + "=" * 78 + "\n\n").join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
