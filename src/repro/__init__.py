"""repro — a reproduction of HYDRA (Hasan et al., DATE 2018).

HYDRA explores the design space of *where* and *how often* to run
security monitoring tasks on a multicore real-time system without
perturbing the existing real-time tasks.  This package reimplements the
paper end to end:

* task/platform models and priority policies (:mod:`repro.model`);
* schedulability analysis — DBF, linearised interference, exact RTA
  (:mod:`repro.analysis`);
* workload synthesis — Randfixedsum (scalar + batched), UUniFast, the
  synthetic recipe, the UAV case study, the Tripwire/Bro suite
  (:mod:`repro.taskgen`) behind one registry-backed generator API
  (:mod:`repro.workloads`);
* real-time partitioning heuristics (:mod:`repro.partition`);
* optimisation substrate — closed forms, a GP solver, a simplex LP
  solver, exhaustive and branch-and-bound searches (:mod:`repro.opt`);
* the allocators — HYDRA, SingleCore, OPT and ablation variants
  (:mod:`repro.core`) behind one registry-backed strategy API
  (:mod:`repro.allocators`);
* a discrete-event scheduler simulator with attack injection
  (:mod:`repro.sim`);
* metrics and experiment drivers regenerating every table/figure
  (:mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro.model import Platform, SystemModel
    from repro.partition import partition_tasks
    from repro.taskgen import uav_rt_tasks, table1_security_tasks
    from repro.core import HydraAllocator

    platform = Platform(4)
    partition = partition_tasks(uav_rt_tasks(), platform)
    system = SystemModel(platform=platform, rt_partition=partition,
                         security_tasks=table1_security_tasks())
    allocation = HydraAllocator().allocate(system)
    for a in allocation.assignments:
        print(a.task.name, "→ core", a.core, "period", round(a.period))
"""

from repro.allocators import (
    AllocationResult,
    get_allocator,
    register_allocator,
    run_allocator,
)
from repro.core import (
    Allocation,
    Allocator,
    HydraAllocator,
    OptimalAllocator,
    SecurityAssignment,
    SingleCoreAllocator,
    build_singlecore_system,
)
from repro.errors import (
    AllocationError,
    ConfigError,
    InfeasibleError,
    PartitioningError,
    ReproError,
    SimulationError,
    SolverError,
    ValidationError,
)
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Platform",
    "Partition",
    "SystemModel",
    "RealTimeTask",
    "SecurityTask",
    "TaskSet",
    "Allocation",
    "AllocationResult",
    "Allocator",
    "SecurityAssignment",
    "register_allocator",
    "get_allocator",
    "run_allocator",
    "HydraAllocator",
    "SingleCoreAllocator",
    "OptimalAllocator",
    "build_singlecore_system",
    "ReproError",
    "ValidationError",
    "ConfigError",
    "PartitioningError",
    "InfeasibleError",
    "SolverError",
    "SimulationError",
    "AllocationError",
]
