"""Transport-agnostic job execution for sweeps and experiments.

``repro.jobs`` is the single execution path shared by the CLI, the
HTTP server (:mod:`repro.server`), and the test suite: a
:class:`JobRunner` accepts declarative :class:`JobRequest` submissions
(registered experiment names or scenario sweep documents), derives an
idempotent content-addressed job id, and runs them through the shared
worker pool and sharded result store with full lifecycle tracking
(``queued → running → done | failed | cancelled``), per-point progress
counters, and structured error capture.
"""

from repro.jobs.runner import (
    Job,
    JobRequest,
    JobRunner,
    JobState,
    derive_job_id,
)

__all__ = [
    "Job",
    "JobRequest",
    "JobRunner",
    "JobState",
    "derive_job_id",
]
