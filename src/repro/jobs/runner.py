"""Transport-agnostic job execution over the sweep engine.

The ROADMAP's service direction needs one execution path that the CLI,
the test suite, and an HTTP server all share — otherwise "submit a
sweep to the server" and "run the sweep locally" drift apart.  This
module provides that path:

* :class:`JobRequest` — a plain-JSON description of *what* to run: a
  registered experiment name (``fig2``, ``table1`` …), a scenario
  sweep document (the exact TOML-grid schema of ``repro-hydra sweep
  --config``, as a dict), or an ablation study document (the schema
  of ``repro-hydra ablate --config`` — see :mod:`repro.ablate`), plus
  scale/seed and the CLI's ``--allocator``/``--workload`` overrides.
* :class:`Job` — one submission's lifecycle record: ``queued →
  running → done | failed | cancelled``, per-point progress counters
  (total/computed/cached) and structured error capture.
* :class:`JobRunner` — owns the shared execution stack (the process
  -wide :class:`~repro.experiments.pool.WorkerPool` via the engine,
  one sharded :class:`~repro.experiments.store.ExperimentStore`) and
  executes jobs either asynchronously (:meth:`~JobRunner.submit`, a
  single background worker thread drains the queue — the *pool*
  provides the parallelism) or synchronously
  (:meth:`~JobRunner.run_experiment`, what the CLI uses).

**Idempotent job ids.**  A job's id is derived from the experiment's
``spec_hash`` — the fingerprint of its spec plus every
:class:`~repro.experiments.parallel.SweepSpec` it will run, which in
turn determine every per-point cache key.  Submitting the same sweep
spec twice therefore returns the *same* job id; and because results
are content-addressed in the store, a resubmission against a warm
cache completes without re-running any point (the engine serves every
point from ``get_many``).  This is exactly the paper's exploration
pattern — repeated grid sweeps over Figs. 1–3 / Table I territory —
turned into instant hits.

**Cancellation** is cooperative: :meth:`JobRunner.cancel` sets a flag
the engine checks between point batches
(:class:`~repro.errors.SweepCancelled`).  Batches computed before the
cancel stay cached, so a cancelled job resumes where it stopped when
resubmitted.

**Result fetches never write.**  :meth:`JobRunner.result` re-reads a
finished job's result through a ``readonly=True`` store — zero writes,
safe on a read-only filesystem — falling back to the in-memory result
only when the runner has no store at all.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from queue import SimpleQueue
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import (
    CacheError,
    ConfigError,
    SweepCancelled,
    UnknownJobError,
    ValidationError,
)
from repro.experiments.api import Experiment, ExperimentResult, RawRun
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.parallel import SweepEngine
from repro.experiments.store import ExperimentStore, cache_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.executors.api import Executor

__all__ = [
    "Job",
    "JobRequest",
    "JobRunner",
    "JobState",
    "derive_job_id",
]

#: Bump when the job-id derivation changes incompatibly (ids are
#: content-addressed, so this is the only version knob they need).
JOB_ID_FORMAT = 1


class JobState:
    """The job lifecycle: ``queued → running → done|failed|cancelled``."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job can never leave.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


def derive_job_id(experiment: Experiment, scale: ExperimentScale) -> str:
    """The idempotent job id of running ``experiment`` at ``scale``.

    Content-addressed over the experiment's ``spec_hash`` — which
    fingerprints the spec and every sweep (and therefore every
    per-point cache key) — so identical submissions collide on purpose
    while anything that would change a single result byte (seed,
    grid, scale, schema version) yields a fresh id.  Execution knobs
    that never affect results (worker count) deliberately do not
    participate.
    """
    return cache_key(
        {
            "job_format": JOB_ID_FORMAT,
            "scale": scale.name,
            "spec_hash": experiment.spec_hash(scale),
        }
    )


@dataclass(frozen=True)
class JobRequest:
    """A plain-JSON description of one job submission.

    Exactly one of ``experiment`` (a registered experiment name),
    ``spec`` (a scenario sweep document — the TOML-grid schema of
    ``repro-hydra sweep --config``, as a dict) or ``ablation`` (an
    ablation study document — the schema of ``repro-hydra ablate
    --config``, as a dict) must be given.
    ``allocators``/``workloads`` mirror the CLI's repeatable
    ``--allocator``/``--workload`` grid overrides and only apply to
    ``spec`` submissions.  ``executor`` names the execution backend
    (``python -m repro executors`` lists them) — an execution knob
    like the worker count, so it participates in neither the job id
    nor any cache key.
    """

    experiment: str | None = None
    spec: Mapping[str, Any] | None = None
    ablation: Mapping[str, Any] | None = None
    scale: str | None = None
    seed: int | None = None
    allocators: tuple[str, ...] | None = None
    workloads: tuple[str, ...] | None = None
    executor: str | None = None

    def __post_init__(self) -> None:
        given = sum(
            source is not None
            for source in (self.experiment, self.spec, self.ablation)
        )
        if given != 1:
            raise ValidationError(
                "a job request needs exactly one of 'experiment' (a "
                "registered experiment name), 'spec' (a sweep "
                "document) or 'ablation' (an ablation study document)"
            )
        if self.spec is None and (self.allocators or self.workloads):
            raise ValidationError(
                "allocator/workload overrides only apply to 'spec' "
                "(scenario sweep) submissions"
            )

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "JobRequest":
        """Parse a submission body (what ``POST /jobs`` accepts).

        Two shapes are accepted: an envelope —
        ``{"spec": {...}, "scale": "smoke", "seed": 7,
        "allocator": [...], "workload": [...]}``,
        ``{"ablation": {...}, ...}`` or ``{"experiment": "fig2", ...}``
        — and, for convenience, a bare document: anything with a
        top-level ``baseline`` table is an ablation study, anything
        with a top-level ``grid`` table a sweep.  (The ablation check
        runs first — an ablation doc may carry its own ``[sweep]``
        overrides table.)  Every rejection is a typed error naming the
        offending key.
        """
        if not isinstance(body, Mapping):
            raise ValidationError(
                f"a job submission must be a JSON object, got "
                f"{type(body).__name__}"
            )
        if "baseline" in body:
            # A bare ablation document; ablation parsing validates it.
            return cls(ablation=dict(body))
        if "grid" in body or "sweep" in body:
            # A bare TOML-grid document; scenario parsing validates it.
            return cls(spec=dict(body))
        known = {
            "experiment", "spec", "ablation", "scale", "seed",
            "allocator", "workload", "executor",
        }
        unknown = set(body) - known
        if unknown:
            raise ValidationError(
                f"unknown job request key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )

        def names(key: str) -> tuple[str, ...] | None:
            values = body.get(key)
            if values is None:
                return None
            if not (
                isinstance(values, (list, tuple))
                and values
                and all(isinstance(v, str) for v in values)
            ):
                raise ValidationError(
                    f"job request {key!r} must be a non-empty list of "
                    f"names"
                )
            return tuple(values)

        seed = body.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValidationError("job request 'seed' must be an integer")
        scale = body.get("scale")
        if scale is not None and not isinstance(scale, str):
            raise ValidationError("job request 'scale' must be a string")
        experiment = body.get("experiment")
        spec = body.get("spec")
        if spec is not None and not isinstance(spec, Mapping):
            raise ValidationError(
                "job request 'spec' must be a sweep document (object)"
            )
        ablation = body.get("ablation")
        if ablation is not None and not isinstance(ablation, Mapping):
            raise ValidationError(
                "job request 'ablation' must be an ablation study "
                "document (object)"
            )
        executor = body.get("executor")
        if executor is not None and not isinstance(executor, str):
            raise ValidationError(
                "job request 'executor' must be an executor name "
                "(string)"
            )
        return cls(
            experiment=experiment,
            spec=dict(spec) if spec is not None else None,
            ablation=dict(ablation) if ablation is not None else None,
            scale=scale,
            seed=seed,
            allocators=names("allocator"),
            workloads=names("workload"),
            executor=executor,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON form (what the status document echoes back)."""
        doc: dict[str, Any] = {}
        if self.experiment is not None:
            doc["experiment"] = self.experiment
        if self.spec is not None:
            doc["spec"] = dict(self.spec)
        if self.ablation is not None:
            doc["ablation"] = dict(self.ablation)
        if self.scale is not None:
            doc["scale"] = self.scale
        if self.seed is not None:
            doc["seed"] = self.seed
        if self.allocators is not None:
            doc["allocator"] = list(self.allocators)
        if self.workloads is not None:
            doc["workload"] = list(self.workloads)
        if self.executor is not None:
            doc["executor"] = self.executor
        return doc

    def build(self) -> tuple[Experiment, ExperimentScale]:
        """Resolve the request into a runnable experiment + scale.

        All by-name lookups raise their typed errors here — at submit
        time, before anything is queued or computed.
        """
        if self.executor is not None:
            from repro.executors import get_executor_info

            get_executor_info(self.executor)  # typed error when unknown
        scale = get_scale(self.scale)
        if self.seed is not None:
            scale = scale.with_overrides(seed=self.seed)
        if self.experiment is not None:
            from repro.experiments.registry import get_experiment

            return get_experiment(self.experiment), scale
        if self.ablation is not None:
            from repro.ablate import AblationExperiment, parse_ablation

            return AblationExperiment(parse_ablation(self.ablation)), scale
        from repro.experiments.scenario import (
            build_scenario_experiment,
            parse_scenario,
        )

        config = parse_scenario(self.spec)
        if self.allocators:
            config = config.with_allocators(self.allocators)
        if self.workloads:
            config = config.with_workloads(self.workloads)
        return build_scenario_experiment(config), scale


class Job:
    """One submission's lifecycle record.

    Mutable by design — the runner's worker thread advances the state
    and counters while transports poll :meth:`to_dict`.  Counter
    updates are single writes from one thread, so readers only ever
    see a consistent (if momentarily stale) snapshot.
    """

    def __init__(
        self,
        job_id: str,
        experiment: Experiment,
        scale: ExperimentScale,
        request: JobRequest | None = None,
        executor: str | None = None,
    ) -> None:
        self.id = job_id
        self.request = request
        #: Requested execution backend (``None`` → the runner's
        #: default).  An execution knob, not part of the job id.
        self.executor = executor or (
            request.executor if request is not None else None
        )
        self.state = JobState.QUEUED
        self.total_points = 0
        self.computed_points = 0
        self.cached_points = 0
        #: ``{"type": <exception class name>, "message": <one line>}``
        #: for failed/cancelled jobs, ``None`` otherwise.
        self.error: dict[str, str] | None = None
        #: The original exception object behind a FAILED state, so a
        #: synchronous caller that rode someone else's execution can
        #: still re-raise the real thing.
        self._exception: BaseException | None = None
        self.result: ExperimentResult | None = None
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self._experiment = experiment
        self._scale = scale
        self._cancel = threading.Event()
        self._terminal = threading.Event()

    @property
    def experiment_name(self) -> str:
        return self._experiment.name

    @property
    def scale_name(self) -> str:
        return self._scale.name

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (or ``timeout``
        seconds pass); returns whether it did."""
        return self._terminal.wait(timeout)

    def _finish(self, state: str) -> None:
        self.finished = time.time()
        self.state = state
        self._terminal.set()

    def to_dict(self) -> dict[str, Any]:
        """The job's status document (what ``GET /jobs/{id}`` serves)."""
        return {
            "id": self.id,
            "state": self.state,
            "experiment": self.experiment_name,
            "scale": self.scale_name,
            "progress": {
                "total_points": self.total_points,
                "computed_points": self.computed_points,
                "cached_points": self.cached_points,
            },
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job({self.id[:12]}…, {self.experiment_name}@"
            f"{self.scale_name}, {self.state})"
        )


class JobRunner:
    """Transport-agnostic executor of sweep jobs.

    Parameters
    ----------
    cache_dir:
        Root of the sharded :class:`ExperimentStore` job results are
        content-addressed into.  ``None`` disables persistence (jobs
        still run; idempotent resubmission then only helps within this
        runner's lifetime).
    workers:
        Worker-process fan-out per job, with the engine's usual
        semantics (``None``/``1`` → serial).  Never part of the job
        id — worker count cannot affect result bytes.
    on_progress:
        Optional hook called (from the executing thread) with the
        :class:`Job` after every progress update; transports can use
        it for logging or streaming.
    executor:
        Default execution backend — a registry name or an
        :class:`~repro.executors.Executor` instance — for jobs that
        do not name one themselves.  ``None`` keeps the engine's
        historic serial/pool dispatch.  Name-resolved backends are
        instantiated once per runner, reused across jobs, and closed
        by :meth:`close`; an injected instance stays the caller's to
        close.
    store_writer:
        ``writer_id`` for the runner's store: pass one whenever
        another process may write the same ``cache_dir`` concurrently
        (the job service does — ``serve<pid>``) so each process
        appends to its own segment.  ``repro-hydra cache gc`` merges
        segments back into the primary log.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        workers: int | None = None,
        on_progress: Callable[[Job], None] | None = None,
        executor: "str | Executor | None" = None,
        store_writer: str | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.workers = workers
        self.on_progress = on_progress
        self.executor = executor
        self.store_writer = store_writer
        # Fails fast (typed CacheError) on an unusable root, before
        # any job is accepted.
        self._store = (
            ExperimentStore(self.cache_dir, writer_id=store_writer)
            if self.cache_dir is not None
            else None
        )
        self._jobs: dict[str, Job] = {}
        self._queue: SimpleQueue[str | None] = SimpleQueue()
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        #: Backends this runner instantiated by name — shared across
        #: jobs (a subprocess backend keeps its workers warm between
        #: submissions) and closed with the runner.
        self._executors: dict[str, "Executor"] = {}

    # -- registry --------------------------------------------------------

    def jobs(self) -> list[Job]:
        """Every known job, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def get(self, job_id: str) -> Job:
        """The job with ``job_id`` (typed error when unknown)."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    # -- submission ------------------------------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Enqueue ``request`` for background execution (idempotent).

        Returns immediately.  A duplicate submission — same derived
        job id — returns the existing queued/running/done job
        untouched; resubmitting a *failed or cancelled* job requeues a
        fresh attempt under the same id (partial results are already
        cached, so it resumes rather than restarts).
        """
        experiment, scale = request.build()
        job_id = derive_job_id(experiment, scale)
        with self._lock:
            existing = self._jobs.get(job_id)
            if (
                existing is not None
                and existing.state not in (JobState.FAILED,
                                           JobState.CANCELLED)
            ):
                return existing
            job = Job(job_id, experiment, scale, request)
            self._jobs[job_id] = job
            self._ensure_thread()
        self._queue.put(job_id)
        return job

    def run(self, request: JobRequest) -> Job:
        """Execute ``request`` synchronously on the calling thread.

        Same idempotency as :meth:`submit`; library/unattended errors
        re-raise (after being captured on the job) so callers like the
        CLI keep their typed error handling.
        """
        experiment, scale = request.build()
        return self.run_experiment(experiment, scale,
                                   executor=request.executor)

    def run_experiment(
        self,
        experiment: Experiment,
        scale: ExperimentScale,
        executor: str | None = None,
    ) -> Job:
        """Synchronous execution path for an already-built experiment
        (what the CLI uses for every subcommand, ``sweep`` included)."""
        job_id = derive_job_id(experiment, scale)
        while True:
            with self._lock:
                existing = self._jobs.get(job_id)
                if existing is None or existing.state in (
                    JobState.FAILED, JobState.CANCELLED,
                ):
                    job = Job(job_id, experiment, scale,
                              executor=executor)
                    self._jobs[job_id] = job
                    break
                if existing.state == JobState.DONE:
                    return existing
            # A background duplicate is queued or running: ride it.
            # The wait must happen *outside* the lock — the drain
            # worker needs the lock to claim a queued job, so waiting
            # while holding it deadlocks (and would freeze every other
            # runner operation for the length of the sweep).
            existing.wait()
            if existing.state == JobState.DONE:
                return existing
            # It failed or was cancelled while we waited; loop to
            # re-check the registry and retry under the same id
            # (partial results are already cached, so it resumes).
        if not self._execute(job, reraise=True):
            # A racing claimer — the drain worker on a stale queue
            # entry, or a cancel — got the fresh job first; ride its
            # outcome instead, preserving re-raise semantics.
            job.wait()
            if job.state == JobState.FAILED and job._exception is not None:
                raise job._exception
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cooperative cancellation of ``job_id``.

        A queued job is cancelled immediately; a running one stops at
        the next point-batch boundary (its computed batches stay
        cached).  Cancelling a terminal job is a no-op.
        """
        job = self.get(job_id)
        with self._lock:
            if job.state == JobState.QUEUED:
                job._cancel.set()
                job.error = {
                    "type": "SweepCancelled",
                    "message": "cancelled before execution started",
                }
                job._finish(JobState.CANCELLED)
            elif job.state == JobState.RUNNING:
                job._cancel.set()
        return job

    # -- results ---------------------------------------------------------

    def result(self, job_id: str) -> ExperimentResult:
        """The typed :class:`ExperimentResult` of a finished job.

        Served through a fresh ``readonly=True`` store — a pure read
        path that performs zero writes (every point of a done job is
        already content-addressed in the store), falling back to the
        in-memory result only when this runner has no store.
        """
        job = self.get(job_id)
        if job.state != JobState.DONE:
            raise ConfigError(
                f"job {job_id!r} is {job.state}, not done — no result "
                f"to fetch"
            )
        if self._store is None:
            assert job.result is not None  # DONE implies a result
            return job.result
        store = ExperimentStore(self.cache_dir, readonly=True)
        engine = SweepEngine(workers=1, cache=store)
        try:
            return job._experiment.run(job._scale, engine)
        except CacheError:
            # The store was mutated underneath us (gc'd entry …); the
            # in-memory copy is still authoritative for this job.
            if job.result is not None:
                return job.result
            raise

    # -- execution -------------------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._drain, name="repro-job-runner", daemon=True
            )
            self._thread.start()

    def _drain(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
            # Skip ids that were cancelled while queued or superseded
            # (a cheap pre-check; :meth:`_execute` re-checks the state
            # under the lock before claiming, so a cancel that races
            # past this line is still honoured).
            if job is None or job.state != JobState.QUEUED:
                continue
            self._execute(job)

    def _notify(self, job: Job) -> None:
        if self.on_progress is not None:
            self.on_progress(job)

    def _execute(self, job: Job, reraise: bool = False) -> bool:
        """Run ``job`` to a terminal state; returns whether this call
        claimed the execution.  The ``queued → running`` transition is
        atomic under the runner lock, so a cancel that landed while
        the job sat in the queue stays cancelled and two threads can
        never both execute the same job."""
        with self._lock:
            if job.state != JobState.QUEUED:
                return False
            job.started = time.time()
            job.state = JobState.RUNNING
        try:
            executor = self._resolve_executor(job.executor)
        except Exception as exc:
            job._exception = exc
            job.error = {
                "type": type(exc).__name__,
                "message": " ".join(str(exc).split()),
            }
            job._finish(JobState.FAILED)
            self._notify(job)
            if reraise:
                raise
            return True
        engine = SweepEngine(
            workers=self.workers,
            cache=self._store,
            on_point_computed=lambda index: self._point_computed(job),
            should_cancel=job._cancel.is_set,
            executor=executor,
        )
        try:
            sweeps = tuple(job._experiment.sweeps(job._scale))
            job.total_points = sum(len(s.points) for s in sweeps)
            self._notify(job)
            results = []
            for spec in sweeps:
                result = engine.run(spec)
                job.cached_points += result.stats.cached_points
                self._notify(job)
                results.append(result)
            job.result = job._experiment.aggregate(
                RawRun(sweeps=tuple(results), scale=job._scale)
            )
            job.error = None  # a DONE job never carries an error
            job._finish(JobState.DONE)
        except SweepCancelled as exc:
            job.error = {"type": "SweepCancelled", "message": str(exc)}
            job._finish(JobState.CANCELLED)
        except KeyboardInterrupt:
            # The pool reaps its own executor on ^C; record the
            # interruption as a cancellation and let the caller unwind.
            job.error = {
                "type": "KeyboardInterrupt",
                "message": "interrupted while running",
            }
            job._finish(JobState.CANCELLED)
            raise
        except Exception as exc:
            job._exception = exc
            job.error = {
                "type": type(exc).__name__,
                "message": " ".join(str(exc).split()),
            }
            job._finish(JobState.FAILED)
            if reraise:
                raise
        finally:
            self._notify(job)
        return True

    def _point_computed(self, job: Job) -> None:
        job.computed_points += 1
        self._notify(job)

    def _resolve_executor(self, spec: str | None) -> "Executor | None":
        """The backend instance for ``spec`` (job's choice, falling
        back to the runner default; ``None`` → engine's built-in
        dispatch).  Name-resolved backends are cached per runner so a
        subprocess backend keeps its workers warm across jobs."""
        chosen: "str | Executor | None" = spec or self.executor
        if chosen is None or not isinstance(chosen, str):
            return chosen
        with self._lock:
            if chosen not in self._executors:
                from repro.executors import get_executor

                self._executors[chosen] = get_executor(
                    chosen, workers=self.workers
                )
            return self._executors[chosen]

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop the background worker thread (idempotent).

        Jobs still queued stay ``queued``; the runner can be reused —
        the next :meth:`submit` restarts the thread.  Backends this
        runner instantiated by name are closed (a reused runner simply
        re-instantiates them); an injected executor instance and the
        process-wide worker pool are deliberately left alone (their
        owner — CLI, server, pytest session — reaps them).
        """
        thread = self._thread
        if thread is not None and thread.is_alive():
            self._queue.put(None)
            thread.join(timeout=5.0)
        self._thread = None
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
        for executor in executors:
            executor.close()

    def __enter__(self) -> "JobRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
