"""Joint period optimisation for a *fixed* security-task assignment.

The OPT baseline (paper Sec. IV-B.2) enumerates all ``M^NS`` assignments
and, per assignment, "determine[s] the value of the period vector T that
maximizes the cumulative tightness by solving a convex optimization
problem".  Substituting rates ``y_s = 1/T_s`` makes that problem an exact
linear program (DESIGN §2.2):

    max  Σ_s ω_s · T_des_s · y_s
    s.t. K_s^m · y_s + Σ_{h ∈ hpS(s) on m} C_h · y_h ≤ 1 − U_R^m
         1/T_max_s ≤ y_s ≤ 1/T_des_s

with ``K_s^m = C_s + Σ_{r on m} C_r + Σ_{h on m} C_h`` (divide Eq. (6) by
``T_s`` to see it).  Every constraint's left side is increasing in every
``y``, so the assignment is feasible iff the all-slowest point
``y_s = 1/T_max_s`` is feasible — a fast pruning test used by the
exhaustive and branch-and-bound searches.

This module also provides the *sequential* per-assignment solver (fix
each period greedily in priority order via Eq. (7)), which is what
HYDRA's inner loop and the SingleCore baseline use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.analysis.interference import InterferenceEnv
from repro.errors import ValidationError
from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.model.task import SecurityTask
from repro.opt.lp import solve_lp
from repro.opt.period import adapt_period, adapt_period_exact

__all__ = [
    "AssignmentSolution",
    "assignment_feasible",
    "solve_assignment_lp",
    "solve_assignment_sequential",
]


@dataclass(frozen=True)
class AssignmentSolution:
    """Optimal periods for one fixed assignment.

    Attributes
    ----------
    assignment:
        Security task name → core index (echo of the input).
    periods:
        Security task name → optimal period.
    tightness:
        Cumulative weighted tightness ``Σ ω_s · T_des_s / T_s``.
    """

    assignment: dict[str, int]
    periods: dict[str, float]
    tightness: float


def _validated_order(
    system: SystemModel, assignment: Mapping[str, int]
) -> list[SecurityTask]:
    """Priority-ordered security tasks, with assignment sanity checks."""
    tasks = list(system.security_tasks)
    if set(assignment) != {t.name for t in tasks}:
        raise ValidationError(
            "assignment must cover exactly the system's security tasks"
        )
    for name, core in assignment.items():
        system.platform.validate_core(core)
    return security_priority_order(tasks)


def _core_groups(
    ordered: list[SecurityTask], assignment: Mapping[str, int]
) -> dict[int, list[SecurityTask]]:
    """Group priority-ordered tasks by their assigned core (order kept)."""
    groups: dict[int, list[SecurityTask]] = {}
    for task in ordered:
        groups.setdefault(assignment[task.name], []).append(task)
    return groups


def assignment_feasible(
    system: SystemModel, assignment: Mapping[str, int]
) -> bool:
    """Exact feasibility of a fixed assignment under the linearised test.

    By constraint monotonicity this holds iff every task meets Eq. (6)
    when *all* security periods sit at their maxima.
    """
    ordered = _validated_order(system, assignment)
    for core, group in _core_groups(ordered, assignment).items():
        rt_util = system.rt_partition.utilization_of(core)
        budget = 1.0 - rt_util
        if budget <= 0.0 and group:
            return False
        hp_wcet = 0.0  # Σ C_h over higher-priority tasks on this core
        hp_rate_load = 0.0  # Σ C_h / T_max_h
        rt_wcet = sum(t.wcet for t in system.rt_partition.tasks_on(core))
        for task in group:
            k = task.wcet + rt_wcet + hp_wcet
            lhs = k / task.period_max + hp_rate_load
            if lhs > budget + 1e-9:
                return False
            hp_wcet += task.wcet
            hp_rate_load += task.wcet / task.period_max
    return True


def solve_assignment_lp(
    system: SystemModel,
    assignment: Mapping[str, int],
    backend: str = "simplex",
) -> AssignmentSolution | None:
    """Maximise cumulative weighted tightness for a fixed assignment.

    Returns ``None`` when the assignment is infeasible.  This is the
    exact optimum the OPT baseline needs per enumerated assignment.
    """
    ordered = _validated_order(system, assignment)
    if not ordered:
        return AssignmentSolution(dict(assignment), {}, 0.0)
    index = {task.name: i for i, task in enumerate(ordered)}
    n = len(ordered)

    objective = [0.0] * n
    for task in ordered:
        objective[index[task.name]] = -(
            system.weight_of(task) * task.period_des
        )

    a_ub: list[list[float]] = []
    b_ub: list[float] = []
    for core, group in _core_groups(ordered, assignment).items():
        rt_tasks = system.rt_partition.tasks_on(core)
        rt_util = sum(t.wcet / t.period for t in rt_tasks)
        rt_wcet = sum(t.wcet for t in rt_tasks)
        budget = 1.0 - rt_util
        if budget <= 0.0 and group:
            return None
        hp_on_core: list[SecurityTask] = []
        for task in group:
            row = [0.0] * n
            k = task.wcet + rt_wcet + sum(h.wcet for h in hp_on_core)
            row[index[task.name]] = k
            for h in hp_on_core:
                row[index[h.name]] = h.wcet
            a_ub.append(row)
            b_ub.append(budget)
            hp_on_core.append(task)

    bounds = [
        (1.0 / task.period_max, 1.0 / task.period_des) for task in ordered
    ]
    result = solve_lp(objective, a_ub=a_ub, b_ub=b_ub, bounds=bounds,
                      backend=backend)
    if not result.is_optimal:
        return None
    periods = {
        task.name: 1.0 / float(result.x[index[task.name]]) for task in ordered
    }
    return AssignmentSolution(
        assignment=dict(assignment),
        periods=periods,
        tightness=-float(result.objective),
    )


def solve_assignment_sequential(
    system: SystemModel,
    assignment: Mapping[str, int],
    exact: bool = False,
) -> AssignmentSolution | None:
    """Fix periods greedily in priority order for a fixed assignment.

    This mirrors HYDRA's inner optimisation (Eq. 7 per task, highest
    priority first) but with the core choice already made; the paper's
    SingleCore baseline is exactly this with every task mapped to the
    dedicated core.  ``exact=True`` switches Eq. (5)'s linear envelope
    for exact response-time analysis (extension).

    Returns ``None`` if some task has no feasible period — note this can
    reject assignments the LP accepts, because greedy minimal periods
    maximise the interference passed down to lower-priority tasks.
    """
    ordered = _validated_order(system, assignment)
    solver = adapt_period_exact if exact else adapt_period
    placed: dict[int, list[tuple[SecurityTask, float]]] = {}
    periods: dict[str, float] = {}
    tightness = 0.0
    for task in ordered:
        core = assignment[task.name]
        env = InterferenceEnv.on_core(
            system.rt_partition.tasks_on(core), placed.get(core, [])
        )
        solution = solver(task, env)
        if solution is None:
            return None
        periods[task.name] = solution.period
        tightness += system.weight_of(task) * solution.tightness
        placed.setdefault(core, []).append((task, solution.period))
    return AssignmentSolution(
        assignment=dict(assignment), periods=periods, tightness=tightness
    )
