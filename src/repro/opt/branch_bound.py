"""Branch-and-bound optimal assignment search (extension, DESIGN §7).

The exhaustive baseline solves an LP for each of the ``M^NS``
assignments.  This module finds the *same* optimum (asserted by tests)
while visiting far fewer nodes by branching on one security task at a
time, in priority order, and pruning with two sound rules:

* **Feasibility pruning.**  Adding tasks only adds interference terms, so
  an infeasible partial assignment (checked at the all-``T_max`` corner,
  see :func:`repro.opt.joint.assignment_feasible`) can never become
  feasible again — the subtree is dropped.
* **Bound pruning.**  The cumulative tightness of a completed assignment
  extending a partial one is at most the LP optimum of the *partial*
  assignment plus ``Σ ω`` of the still-unassigned tasks (each tightness
  is ≤ 1 and extra tasks only tighten existing constraints).  If that
  upper bound cannot beat the incumbent, the subtree is dropped.

Symmetric cores (identical real-time content) would allow further
pruning; it is deliberately not exploited so that the search remains
valid for arbitrary heterogeneous partitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.model.task import SecurityTask, TaskSet
from repro.opt.exhaustive import OptimalSolution
from repro.opt.joint import (
    AssignmentSolution,
    assignment_feasible,
    solve_assignment_lp,
)

__all__ = ["branch_bound_optimal", "BnBStats"]


@dataclass
class BnBStats:
    """Search statistics for introspection and the ablation bench."""

    nodes: int = 0
    leaves_solved: int = 0
    pruned_infeasible: int = 0
    pruned_bound: int = 0


def _partial_system(system: SystemModel, tasks: list[SecurityTask]) -> SystemModel:
    """A copy of ``system`` restricted to the given security tasks."""
    return SystemModel(
        platform=system.platform,
        rt_partition=system.rt_partition,
        security_tasks=TaskSet(tasks),
        weights={
            t.name: system.weight_of(t) for t in tasks
        },
    )


def branch_bound_optimal(
    system: SystemModel,
    backend: str = "simplex",
) -> tuple[OptimalSolution | None, BnBStats]:
    """Tightness-optimal assignment via depth-first branch and bound.

    Returns the same optimum as :func:`repro.opt.exhaustive.exhaustive_optimal`
    (or ``None`` when nothing is feasible) together with search
    statistics.
    """
    ordered = security_priority_order(system.security_tasks)
    cores = list(system.platform.cores())
    stats = BnBStats()
    best: AssignmentSolution | None = None

    # Weight of the suffix starting at depth d: optimistic tightness mass
    # still obtainable from unassigned tasks.
    suffix_weight = [0.0] * (len(ordered) + 1)
    for depth in range(len(ordered) - 1, -1, -1):
        suffix_weight[depth] = (
            suffix_weight[depth + 1] + system.weight_of(ordered[depth])
        )

    def recurse(depth: int, assignment: dict[str, int]) -> None:
        nonlocal best
        stats.nodes += 1
        prefix_tasks = ordered[:depth]
        if depth > 0:
            partial = _partial_system(system, prefix_tasks)
            if not assignment_feasible(partial, assignment):
                stats.pruned_infeasible += 1
                return
            if best is not None:
                solved = solve_assignment_lp(partial, assignment,
                                             backend=backend)
                if solved is None:  # pragma: no cover - feasible ⇒ solvable
                    stats.pruned_infeasible += 1
                    return
                bound = solved.tightness + suffix_weight[depth]
                if bound <= best.tightness + 1e-12:
                    stats.pruned_bound += 1
                    return
        if depth == len(ordered):
            solution = solve_assignment_lp(system, assignment, backend=backend)
            stats.leaves_solved += 1
            if solution is not None and (
                best is None or solution.tightness > best.tightness + 1e-12
            ):
                best = solution
            return
        task = ordered[depth]
        for core in cores:
            assignment[task.name] = core
            recurse(depth + 1, assignment)
            del assignment[task.name]

    recurse(0, {})
    if best is None:
        return None, stats
    return (
        OptimalSolution(
            solution=best,
            explored=stats.leaves_solved,
            pruned=stats.pruned_infeasible + stats.pruned_bound,
        ),
        stats,
    )
