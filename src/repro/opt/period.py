"""Period adaptation for a single security task (paper Eq. 7).

For a fixed core and fixed higher-priority periods, Eq. (7) asks for the
period ``Ts`` maximising the tightness ``η = T_des/Ts`` subject to

    T_des ≤ Ts ≤ T_max      and      Cs + I_s^m ≤ Ts,

with the linearised interference ``I_s^m = K' + U·Ts`` of Eq. (5).  The
feasible region is the interval ``[max(T_des, (Cs+K')/(1−U)), T_max]``
and the objective is decreasing in ``Ts``, so the optimum is the left
endpoint — a closed form.  The paper reaches the same optimum by solving
the problem as a geometric program (see :mod:`repro.opt.gp`, which this
module's result is property-tested against).

An exact-RTA variant replaces the linear envelope with the true
fixed-point response time.  Because a security task sits at the bottom of
its core's priority order, its response time does not depend on its own
period, so the exact optimum is simply ``max(T_des, R)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.interference import InterferenceEnv, min_feasible_period
from repro.analysis.rta import response_time
from repro.model.task import SecurityTask

__all__ = ["PeriodSolution", "adapt_period", "adapt_period_exact"]


@dataclass(frozen=True, slots=True)
class PeriodSolution:
    """Outcome of a (feasible) period-adaptation solve.

    Attributes
    ----------
    period:
        The optimal period ``Ts*``.
    tightness:
        ``η = T_des / Ts*``.
    binding:
        Which constraint fixed the optimum: ``"desired"`` when the task
        achieves its desired period, ``"interference"`` when the
        schedulability constraint is the binding one.
    """

    period: float
    tightness: float
    binding: str

    def __post_init__(self) -> None:
        if self.period <= 0 or not math.isfinite(self.period):
            raise ValueError(f"invalid period {self.period!r}")


def adapt_period(
    task: SecurityTask, env: InterferenceEnv
) -> PeriodSolution | None:
    """Solve Eq. (7) in closed form.

    Parameters
    ----------
    task:
        The security task whose period is being adapted.
    env:
        Interference environment of the candidate core: the real-time
        tasks partitioned there plus any higher-priority security tasks
        already assigned there (with their fixed periods).

    Returns
    -------
    The optimal :class:`PeriodSolution`, or ``None`` when the problem is
    infeasible on this core (no period in ``[T_des, T_max]`` satisfies
    the schedulability constraint) — the paper's "``M'_s`` excludes this
    core" case.
    """
    lower = min_feasible_period(task, env)
    if lower > task.period_max * (1.0 + 1e-12):
        return None
    if lower <= task.period_des:
        return PeriodSolution(
            period=task.period_des, tightness=1.0, binding="desired"
        )
    period = min(lower, task.period_max)
    return PeriodSolution(
        period=period,
        tightness=task.period_des / period,
        binding="interference",
    )


def adapt_period_exact(
    task: SecurityTask, env: InterferenceEnv
) -> PeriodSolution | None:
    """Exact-RTA variant of :func:`adapt_period` (extension, DESIGN §7).

    Uses the true worst-case response time of ``task`` below the
    interferers in ``env`` instead of the linear envelope.  Always at
    least as permissive as :func:`adapt_period` (property-tested), which
    quantifies the pessimism the paper accepts for GP compatibility.
    """
    response = response_time(task.wcet, env.interferers, limit=task.period_max)
    if not math.isfinite(response):
        return None
    if response <= task.period_des:
        return PeriodSolution(
            period=task.period_des, tightness=1.0, binding="desired"
        )
    return PeriodSolution(
        period=response,
        tightness=task.period_des / response,
        binding="interference",
    )
