"""Optimisation substrate (paper Sec. III-A and Appendix).

* :mod:`repro.opt.period` — closed-form period adaptation (Eq. 7).
* :mod:`repro.opt.period_gp` — the same problem via the paper's GP route.
* :mod:`repro.opt.gp` — from-scratch geometric-program solver
  (log transform + interior point), replacing GPkit/CVXOPT.
* :mod:`repro.opt.lp` — from-scratch two-phase simplex LP solver.
* :mod:`repro.opt.joint` — joint per-assignment optimisation (exact LP)
  and the sequential greedy variant.
* :mod:`repro.opt.exhaustive` — the OPT baseline's ``M^NS`` enumeration.
* :mod:`repro.opt.branch_bound` — pruned optimal search (extension).
"""

from repro.opt.branch_bound import BnBStats, branch_bound_optimal
from repro.opt.exhaustive import OptimalSolution, exhaustive_optimal
from repro.opt.gp import GeometricProgram, GpResult, Monomial, Posynomial
from repro.opt.joint import (
    AssignmentSolution,
    assignment_feasible,
    solve_assignment_lp,
    solve_assignment_sequential,
)
from repro.opt.lp import LpResult, solve_lp
from repro.opt.period import PeriodSolution, adapt_period, adapt_period_exact
from repro.opt.period_gp import adapt_period_gp, build_period_gp

__all__ = [
    "PeriodSolution",
    "adapt_period",
    "adapt_period_exact",
    "adapt_period_gp",
    "build_period_gp",
    "Monomial",
    "Posynomial",
    "GeometricProgram",
    "GpResult",
    "LpResult",
    "solve_lp",
    "AssignmentSolution",
    "assignment_feasible",
    "solve_assignment_lp",
    "solve_assignment_sequential",
    "OptimalSolution",
    "exhaustive_optimal",
    "BnBStats",
    "branch_bound_optimal",
]
