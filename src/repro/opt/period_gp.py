"""Period adaptation via the paper's geometric-program formulation.

The appendix of the paper rewrites Eq. (7) as the GP

    min   T_des⁻¹ · Ts              (inverse tightness, a monomial)
    s.t.  T_des · Ts⁻¹ ≤ 1          (period lower bound)
          T_max⁻¹ · Ts ≤ 1          (period upper bound)
          (Cs + K')·Ts⁻¹ + U ≤ 1    (Eq. (6) divided by Ts)

and solves the log-transformed convex problem with an interior-point
method.  This module builds exactly that program on top of
:mod:`repro.opt.gp` — the from-scratch replacement for the paper's
GPkit/CVXOPT stack — so the reproduction exercises the same solution
route the authors used.  The closed form in :mod:`repro.opt.period` is
the analytical optimum of the same program; the property-based tests
assert the two agree.
"""

from __future__ import annotations

from repro.analysis.interference import InterferenceEnv
from repro.errors import InfeasibleError
from repro.model.task import SecurityTask
from repro.opt.gp import GeometricProgram, Monomial
from repro.opt.period import PeriodSolution

__all__ = ["build_period_gp", "adapt_period_gp"]

_VAR = "Ts"


def build_period_gp(
    task: SecurityTask, env: InterferenceEnv
) -> GeometricProgram:
    """Construct the appendix GP for one task on one core."""
    objective = Monomial(1.0 / task.period_des, {_VAR: 1.0})
    constraints = [
        Monomial(task.period_des, {_VAR: -1.0}),
        Monomial(1.0 / task.period_max, {_VAR: 1.0}),
    ]
    busy = Monomial(task.wcet + env.total_wcet, {_VAR: -1.0})
    if env.utilization > 0.0:
        schedulability = busy + Monomial(env.utilization, {})
    else:
        schedulability = busy
    constraints.append(schedulability)
    return GeometricProgram(objective, constraints)


def adapt_period_gp(
    task: SecurityTask, env: InterferenceEnv, tol: float = 1e-9
) -> PeriodSolution | None:
    """Solve Eq. (7) through the GP/interior-point route.

    Same contract as :func:`repro.opt.period.adapt_period`: the optimal
    :class:`PeriodSolution` or ``None`` when no admissible period exists
    on this core.
    """
    program = build_period_gp(task, env)
    try:
        result = program.solve(tol=tol)
    except InfeasibleError:
        return None
    period = result.variables[_VAR]
    # Clamp the numerically-optimal period into the admissible box (the
    # interior-point iterate sits strictly inside it by construction).
    period = min(max(period, task.period_des), task.period_max)
    binding = (
        "desired" if period <= task.period_des * (1.0 + 1e-9) else "interference"
    )
    return PeriodSolution(
        period=period,
        tightness=task.period_des / period,
        binding=binding,
    )
