"""A small geometric-programming (GP) solver.

The paper's appendix reformulates period adaptation as a GP:

    min  f0(y)   s.t.  fi(y) ≤ 1  (posynomials),  gj(y) = 1  (monomials)

and solves the log-transformed convex problem with an interior-point
method (via GPkit/CVXOPT on the authors' testbed).  Neither package can
be installed here, so this module implements the same pipeline from
scratch:

* a tiny posynomial algebra (:class:`Monomial`, :class:`Posynomial`);
* the log transform ``y = e^t`` turning each posynomial constraint into a
  log-sum-exp convex function;
* a two-phase log-barrier interior-point method with damped Newton steps.

It is deliberately general (any number of variables, any posynomial
constraints) so it can also solve GP formulations beyond Eq. (7); its
answers are property-tested against the closed form of
:mod:`repro.opt.period`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import InfeasibleError, SolverError, ValidationError

__all__ = [
    "Monomial",
    "Posynomial",
    "GeometricProgram",
    "GpResult",
]


@dataclass(frozen=True)
class Monomial:
    """``c · Π y_v^{a_v}`` with positive coefficient ``c``."""

    coeff: float
    exponents: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.coeff <= 0 or not math.isfinite(self.coeff):
            raise ValidationError(
                f"monomial coefficient must be positive and finite, got "
                f"{self.coeff!r}"
            )
        object.__setattr__(self, "exponents", dict(self.exponents))

    def __mul__(self, other: "Monomial | float") -> "Monomial":
        if isinstance(other, (int, float)):
            return Monomial(self.coeff * other, self.exponents)
        exps = dict(self.exponents)
        for var, a in other.exponents.items():
            exps[var] = exps.get(var, 0.0) + a
        return Monomial(self.coeff * other.coeff, exps)

    __rmul__ = __mul__

    def __add__(self, other: "Monomial | Posynomial") -> "Posynomial":
        return Posynomial([self]) + other

    def __pow__(self, power: float) -> "Monomial":
        return Monomial(
            self.coeff**power,
            {v: a * power for v, a in self.exponents.items()},
        )

    def evaluate(self, values: Mapping[str, float]) -> float:
        result = self.coeff
        for var, a in self.exponents.items():
            result *= values[var] ** a
        return result

    def variables(self) -> set[str]:
        return {v for v, a in self.exponents.items() if a != 0.0}


class Posynomial:
    """A sum of monomials (all coefficients positive)."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[Monomial]) -> None:
        self._terms = tuple(terms)
        if not self._terms:
            raise ValidationError("a posynomial needs at least one monomial")

    @property
    def terms(self) -> tuple[Monomial, ...]:
        return self._terms

    def __add__(self, other: "Posynomial | Monomial") -> "Posynomial":
        if isinstance(other, Monomial):
            return Posynomial((*self._terms, other))
        return Posynomial((*self._terms, *other.terms))

    __radd__ = __add__

    def evaluate(self, values: Mapping[str, float]) -> float:
        return sum(term.evaluate(values) for term in self._terms)

    def variables(self) -> set[str]:
        result: set[str] = set()
        for term in self._terms:
            result |= term.variables()
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Posynomial({len(self._terms)} terms over {self.variables()})"


def _as_posynomial(p: Posynomial | Monomial) -> Posynomial:
    return Posynomial([p]) if isinstance(p, Monomial) else p


class _LogSumExp:
    """Log-space form of a posynomial: ``f(t) = log Σ_k exp(A_k·t + b_k)``.

    Provides value, gradient and Hessian for Newton's method.
    """

    __slots__ = ("a", "b")

    def __init__(
        self, posy: Posynomial, variable_order: Sequence[str]
    ) -> None:
        index = {v: i for i, v in enumerate(variable_order)}
        rows = len(posy.terms)
        self.a = np.zeros((rows, len(variable_order)))
        self.b = np.zeros(rows)
        for k, term in enumerate(posy.terms):
            self.b[k] = math.log(term.coeff)
            for var, exp in term.exponents.items():
                if exp != 0.0:
                    self.a[k, index[var]] = exp

    def value(self, t: np.ndarray) -> float:
        z = self.a @ t + self.b
        zmax = float(np.max(z))
        return zmax + math.log(float(np.sum(np.exp(z - zmax))))

    def value_grad_hess(
        self, t: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        z = self.a @ t + self.b
        zmax = float(np.max(z))
        w = np.exp(z - zmax)
        total = float(np.sum(w))
        p = w / total
        value = zmax + math.log(total)
        grad = self.a.T @ p
        weighted = self.a * p[:, None]
        hess = self.a.T @ weighted - np.outer(grad, grad)
        return value, grad, hess


@dataclass(frozen=True)
class GpResult:
    """Solution of a geometric program.

    ``variables`` holds the optimal (primal) values of the original
    positive variables; ``objective`` is the optimal posynomial objective
    value.
    """

    variables: dict[str, float]
    objective: float
    iterations: int


class GeometricProgram:
    """``min f0(y) s.t. fi(y) ≤ 1`` over positive variables ``y``.

    Monomial equality constraints ``g(y) = 1`` can be expressed by the
    caller as the pair ``g ≤ 1`` and ``g^{-1} ≤ 1``.
    """

    def __init__(
        self,
        objective: Posynomial | Monomial,
        constraints: Sequence[Posynomial | Monomial] = (),
    ) -> None:
        self.objective = _as_posynomial(objective)
        self.constraints = [_as_posynomial(c) for c in constraints]
        variables: set[str] = set(self.objective.variables())
        for c in self.constraints:
            variables |= c.variables()
        if not variables:
            raise ValidationError("the GP has no variables")
        self.variable_order: tuple[str, ...] = tuple(sorted(variables))

    # -- interior-point machinery -------------------------------------

    def solve(
        self,
        tol: float = 1e-9,
        feas_tol: float = 1e-8,
        max_barrier_rounds: int = 60,
    ) -> GpResult:
        """Solve the GP; raises :class:`InfeasibleError` when no point
        satisfies all constraints (to ``feas_tol`` in log space) and
        :class:`SolverError` on numerical failure."""
        order = self.variable_order
        f0 = _LogSumExp(self.objective, order)
        fis = [_LogSumExp(c, order) for c in self.constraints]

        t = self._phase_one(fis, feas_tol)
        iterations = 0
        if not fis:
            # Unconstrained log-convex minimisation.
            t, it = self._newton(f0, [], t, barrier=0.0, tol=tol)
            iterations += it
        else:
            barrier = 1.0
            mu = 20.0
            for _ in range(max_barrier_rounds):
                t, it = self._newton(f0, fis, t, barrier=barrier, tol=tol)
                iterations += it
                if len(fis) / barrier < tol:
                    break
                barrier *= mu
            else:  # pragma: no cover - defensive
                raise SolverError("barrier method exceeded round limit")

        values = {
            var: math.exp(t[i]) for i, var in enumerate(order)
        }
        return GpResult(
            variables=values,
            objective=self.objective.evaluate(values),
            iterations=iterations,
        )

    def _phase_one(
        self, fis: list[_LogSumExp], feas_tol: float
    ) -> np.ndarray:
        """Find a strictly feasible log-space point, or raise
        :class:`InfeasibleError`.

        Minimises ``s`` subject to ``fi(t) ≤ s`` by subgradient-free
        damped Newton on the softmax surrogate
        ``Φβ(t) = (1/β)·log Σ exp(β·fi(t))`` (a smooth, convex upper
        bound of ``max_i fi(t)`` that tightens as β grows).
        """
        n = len(self.variable_order)
        t = np.zeros(n)
        if not fis:
            return t
        betas = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
                 65536.0)
        for beta in betas:
            t = self._minimize_softmax(fis, t, beta)
            worst = max(f.value(t) for f in fis)
            if worst < -1e-6:
                return t
        worst = max(f.value(t) for f in fis)
        # The softmax surrogate sits log(m)/β above the true max, so a
        # boundary-feasible problem (min-max exactly 0) can only be
        # certified to that resolution.
        boundary_tol = max(
            feas_tol, 2.0 * math.log(max(len(fis), 2)) / betas[-1]
        )
        if worst <= boundary_tol:
            # Feasible only on (or numerically at) the boundary: no
            # interior exists, but the point itself is the optimum of
            # the degenerate single-point region.
            return t
        raise InfeasibleError(
            f"geometric program is infeasible (min max-violation "
            f"{worst:.3e} in log space)"
        )

    def _minimize_softmax(
        self, fis: list[_LogSumExp], t0: np.ndarray, beta: float
    ) -> np.ndarray:
        t = t0.copy()
        for _ in range(200):
            value, grad, hess = self._softmax_vgh(fis, t, beta)
            step = self._newton_step(grad, hess)
            if float(np.linalg.norm(grad)) < 1e-10:
                break
            # Backtracking line search on the surrogate.
            alpha = 1.0
            base = value
            slope = float(grad @ step)
            for _ in range(60):
                candidate = t + alpha * step
                if self._softmax_value(fis, candidate, beta) <= (
                    base + 0.25 * alpha * slope
                ):
                    break
                alpha *= 0.5
            else:
                break
            t = t + alpha * step
            if alpha * float(np.linalg.norm(step)) < 1e-12:
                break
        return t

    @staticmethod
    def _softmax_value(
        fis: list[_LogSumExp], t: np.ndarray, beta: float
    ) -> float:
        vals = np.array([f.value(t) for f in fis])
        vmax = float(np.max(vals))
        return vmax + math.log(float(np.sum(np.exp(beta * (vals - vmax))))) / beta

    @staticmethod
    def _softmax_vgh(
        fis: list[_LogSumExp], t: np.ndarray, beta: float
    ) -> tuple[float, np.ndarray, np.ndarray]:
        n = t.shape[0]
        vals = np.empty(len(fis))
        grads = np.empty((len(fis), n))
        hesses = np.empty((len(fis), n, n))
        for i, f in enumerate(fis):
            vals[i], grads[i], hesses[i] = f.value_grad_hess(t)
        vmax = float(np.max(vals))
        w = np.exp(beta * (vals - vmax))
        w /= float(np.sum(w))
        value = vmax + math.log(float(np.sum(np.exp(beta * (vals - vmax))))) / beta
        grad = grads.T @ w
        hess = np.tensordot(w, hesses, axes=1)
        hess += beta * (grads.T @ (grads * w[:, None]) - np.outer(grad, grad))
        return value, grad, hess

    def _newton(
        self,
        f0: _LogSumExp,
        fis: list[_LogSumExp],
        t0: np.ndarray,
        barrier: float,
        tol: float,
    ) -> tuple[np.ndarray, int]:
        """Damped Newton on ``barrier·f0(t) − Σ log(−fi(t))`` (or plain
        ``f0`` when there are no constraints)."""
        t = t0.copy()
        iterations = 0

        def merit(point: np.ndarray) -> float:
            v0 = f0.value(point)
            if not fis:
                return v0
            total = barrier * v0
            for f in fis:
                slack = -f.value(point)
                if slack <= 0:
                    return math.inf
                total -= math.log(slack)
            return total

        if fis and math.isinf(merit(t)):
            # The start sits on the constraint boundary (degenerate
            # feasible region, e.g. T_des = T_max): no interior to walk
            # through, the boundary point itself is the optimum.
            return t, iterations

        for _ in range(200):
            iterations += 1
            v0, g0, h0 = f0.value_grad_hess(t)
            if fis:
                grad = barrier * g0
                hess = barrier * h0
                for f in fis:
                    vi, gi, hi = f.value_grad_hess(t)
                    slack = -vi
                    if slack <= 0:
                        slack = 1e-14
                    grad += gi / slack
                    hess += np.outer(gi, gi) / slack**2 + hi / slack
            else:
                grad, hess = g0, h0
            step = self._newton_step(grad, hess)
            decrement = float(-grad @ step)
            if decrement / 2.0 < tol:
                break
            alpha = 1.0
            base = merit(t)
            slope = float(grad @ step)
            for _ in range(80):
                candidate = t + alpha * step
                if merit(candidate) <= base + 0.25 * alpha * slope:
                    break
                alpha *= 0.5
            else:
                break
            t = t + alpha * step
        return t, iterations

    @staticmethod
    def _newton_step(grad: np.ndarray, hess: np.ndarray) -> np.ndarray:
        n = grad.shape[0]
        reg = 1e-12
        for _ in range(16):
            try:
                return np.linalg.solve(hess + reg * np.eye(n), -grad)
            except np.linalg.LinAlgError:
                reg *= 100.0
        raise SolverError("Newton system is singular beyond regularisation")
