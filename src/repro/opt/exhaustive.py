"""Exhaustive search over all ``M^NS`` security-task assignments.

This is the paper's "optimal" baseline (Sec. IV-B.2, Fig. 3): enumerate
every task→core mapping, solve the joint period optimisation per
assignment (an LP — see :mod:`repro.opt.joint`), and keep the assignment
with the best cumulative weighted tightness.

Cost grows exponentially in the number of security tasks, which is the
paper's motivation for HYDRA; the reproduction keeps it practical with
the monotone feasibility pre-check and (optionally) the branch-and-bound
variant in :mod:`repro.opt.branch_bound`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.opt.joint import (
    AssignmentSolution,
    assignment_feasible,
    solve_assignment_lp,
)

__all__ = ["OptimalSolution", "exhaustive_optimal"]


@dataclass(frozen=True)
class OptimalSolution:
    """Best assignment found by an optimal search.

    Attributes
    ----------
    solution:
        The per-assignment optimum (assignment, periods, tightness).
    explored:
        Number of assignments fully solved (post-pruning).
    pruned:
        Number of assignments rejected by the fast feasibility check.
    """

    solution: AssignmentSolution
    explored: int
    pruned: int

    @property
    def tightness(self) -> float:
        return self.solution.tightness

    @property
    def assignment(self) -> dict[str, int]:
        return self.solution.assignment

    @property
    def periods(self) -> dict[str, float]:
        return self.solution.periods


def exhaustive_optimal(
    system: SystemModel,
    backend: str = "simplex",
    prune: bool = True,
) -> OptimalSolution | None:
    """Enumerate every assignment; return the tightness-optimal one.

    Returns ``None`` when no assignment is feasible (the task set is
    unschedulable even for the optimal allocator).  ``prune=False``
    disables the monotone feasibility pre-check (used by tests to verify
    the pruning is lossless).
    """
    ordered = security_priority_order(system.security_tasks)
    names = [task.name for task in ordered]
    cores = list(system.platform.cores())

    best: AssignmentSolution | None = None
    explored = 0
    pruned = 0
    for combo in itertools.product(cores, repeat=len(names)):
        assignment = dict(zip(names, combo))
        if prune and not assignment_feasible(system, assignment):
            pruned += 1
            continue
        solution = solve_assignment_lp(system, assignment, backend=backend)
        if solution is None:
            continue
        explored += 1
        if best is None or solution.tightness > best.tightness + 1e-12:
            best = solution
    if best is None:
        return None
    return OptimalSolution(solution=best, explored=explored, pruned=pruned)
