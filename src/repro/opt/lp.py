"""A dense two-phase simplex linear-programming solver.

Solves problems of the form

    min  c·x
    s.t. A_ub · x ≤ b_ub
         A_eq · x = b_eq
         lb ≤ x ≤ ub    (elementwise; ±inf allowed)

The joint period-optimisation of the OPT baseline
(:mod:`repro.opt.joint`) is an LP in the rate variables ``y = 1/T``
(DESIGN §2.2), and the paper's environment (GPkit/CVXOPT, or PuLP) is
not installable offline — so the solver is implemented here from
scratch.  Bland's anti-cycling rule guarantees termination; results are
cross-checked against ``scipy.optimize.linprog`` in the test suite and
available through ``backend="scipy"`` when scipy is installed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SolverError, ValidationError

__all__ = ["LpResult", "solve_lp"]

_EPS = 1e-9


@dataclass(frozen=True)
class LpResult:
    """Outcome of an LP solve.

    ``status`` is one of ``"optimal"``, ``"infeasible"`` or
    ``"unbounded"``; ``x`` and ``objective`` are ``None`` unless optimal.
    """

    status: str
    x: np.ndarray | None = None
    objective: float | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def solve_lp(
    c: Sequence[float],
    a_ub: Sequence[Sequence[float]] | None = None,
    b_ub: Sequence[float] | None = None,
    a_eq: Sequence[Sequence[float]] | None = None,
    b_eq: Sequence[float] | None = None,
    bounds: Sequence[tuple[float, float]] | None = None,
    backend: str = "simplex",
) -> LpResult:
    """Solve the LP described in the module docstring.

    Parameters
    ----------
    c:
        Objective coefficients (minimised).
    a_ub, b_ub:
        ``A_ub·x ≤ b_ub`` rows, optional.
    a_eq, b_eq:
        ``A_eq·x = b_eq`` rows, optional.
    bounds:
        Per-variable ``(lb, ub)``; defaults to ``(0, +inf)`` like the
        standard form.  Use ``-math.inf`` / ``math.inf`` for free sides.
    backend:
        ``"simplex"`` (this module) or ``"scipy"``
        (``scipy.optimize.linprog``, HiGHS).
    """
    c_arr = np.asarray(c, dtype=float)
    n = c_arr.shape[0]
    if n == 0:
        raise ValidationError("LP needs at least one variable")
    aub = np.asarray(a_ub, dtype=float) if a_ub is not None else np.zeros((0, n))
    bub = np.asarray(b_ub, dtype=float) if b_ub is not None else np.zeros(0)
    aeq = np.asarray(a_eq, dtype=float) if a_eq is not None else np.zeros((0, n))
    beq = np.asarray(b_eq, dtype=float) if b_eq is not None else np.zeros(0)
    if aub.shape != (bub.shape[0], n) or aeq.shape != (beq.shape[0], n):
        raise ValidationError("inconsistent LP matrix shapes")
    if bounds is None:
        bounds = [(0.0, math.inf)] * n
    if len(bounds) != n:
        raise ValidationError("one (lb, ub) pair required per variable")
    for lb, ub in bounds:
        if lb > ub:
            return LpResult(status="infeasible")

    if backend == "scipy":
        return _solve_scipy(c_arr, aub, bub, aeq, beq, bounds)
    if backend != "simplex":
        raise ValidationError(f"unknown LP backend {backend!r}")
    return _solve_simplex(c_arr, aub, bub, aeq, beq, bounds)


def _solve_scipy(c, aub, bub, aeq, beq, bounds) -> LpResult:
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy present in CI
        raise SolverError("scipy backend requested but scipy missing") from exc
    res = linprog(
        c,
        A_ub=aub if aub.size else None,
        b_ub=bub if bub.size else None,
        A_eq=aeq if aeq.size else None,
        b_eq=beq if beq.size else None,
        bounds=bounds,
        method="highs",
    )
    if res.status == 2:
        return LpResult(status="infeasible")
    if res.status == 3:
        return LpResult(status="unbounded")
    if not res.success:  # pragma: no cover - defensive
        raise SolverError(f"scipy linprog failed: {res.message}")
    return LpResult(status="optimal", x=np.asarray(res.x), objective=float(res.fun))


# ---------------------------------------------------------------------------
# Simplex implementation
# ---------------------------------------------------------------------------


def _solve_simplex(c, aub, bub, aeq, beq, bounds) -> LpResult:
    """Reduce to standard form and run the two-phase tableau simplex."""
    n = c.shape[0]

    # --- variable substitution ------------------------------------------
    # Every original variable x_j becomes either (x'_j + lb_j) for finite
    # lb, or (x⁺_j − x⁻_j) when lb = −inf.  ``columns[j]`` lists the
    # (index, sign) pairs of standard-form variables composing x_j;
    # ``offsets[j]`` is the additive constant.
    columns: list[list[tuple[int, float]]] = []
    offsets = np.zeros(n)
    num_std = 0
    extra_ub_rows: list[tuple[int, float]] = []  # (orig var, ub) pairs
    for j, (lb, ub) in enumerate(bounds):
        if math.isinf(lb) and lb > 0 or math.isinf(ub) and ub < 0:
            raise ValidationError(f"invalid bounds for variable {j}: {lb}, {ub}")
        if math.isinf(lb):
            columns.append([(num_std, 1.0), (num_std + 1, -1.0)])
            num_std += 2
        else:
            columns.append([(num_std, 1.0)])
            offsets[j] = lb
            num_std += 1
        if not math.isinf(ub):
            extra_ub_rows.append((j, ub))

    def expand_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(num_std)
        for j, coeff in enumerate(row):
            if coeff != 0.0:
                for idx, sign in columns[j]:
                    out[idx] += coeff * sign
        return out

    rows: list[np.ndarray] = []
    rhs: list[float] = []
    senses: list[str] = []  # "le" or "eq"
    for i in range(aub.shape[0]):
        rows.append(expand_row(aub[i]))
        rhs.append(float(bub[i] - aub[i] @ offsets))
        senses.append("le")
    for j, ub in extra_ub_rows:
        unit = np.zeros(n)
        unit[j] = 1.0
        rows.append(expand_row(unit))
        rhs.append(float(ub - offsets[j]))
        senses.append("le")
    for i in range(aeq.shape[0]):
        rows.append(expand_row(aeq[i]))
        rhs.append(float(beq[i] - aeq[i] @ offsets))
        senses.append("eq")

    c_std = np.zeros(num_std)
    for j, coeff in enumerate(c):
        for idx, sign in columns[j]:
            c_std[idx] += coeff * sign
    objective_offset = float(c @ offsets)

    m = len(rows)
    if m == 0:
        # No constraints: optimum is at a bound or unbounded.
        x_std = np.zeros(num_std)
        if np.any(c_std < -_EPS):
            return LpResult(status="unbounded")
        x = _recover(x_std, columns, offsets, n)
        return LpResult(status="optimal", x=x, objective=objective_offset)

    # --- slack variables and non-negative rhs ----------------------------
    num_slack = sum(1 for s in senses if s == "le")
    total = num_std + num_slack
    a_full = np.zeros((m, total))
    b_full = np.zeros(m)
    slack_at = num_std
    for i, (row, b_i, sense) in enumerate(zip(rows, rhs, senses)):
        a_full[i, :num_std] = row
        b_full[i] = b_i
        if sense == "le":
            a_full[i, slack_at] = 1.0
            slack_at += 1
    for i in range(m):
        if b_full[i] < 0:
            a_full[i] *= -1.0
            b_full[i] *= -1.0

    # --- phase 1 ----------------------------------------------------------
    tableau = np.zeros((m, total + m))
    tableau[:, :total] = a_full
    tableau[:, total:] = np.eye(m)
    basis = list(range(total, total + m))
    cost1 = np.zeros(total + m)
    cost1[total:] = 1.0
    value1, status = _simplex_core(tableau, b_full, cost1, basis)
    if status == "unbounded":  # pragma: no cover - phase 1 is bounded below
        raise SolverError("phase-1 simplex reported unbounded")
    if value1 > 1e-7:
        return LpResult(status="infeasible")
    keep = _drive_out_artificials(tableau, b_full, basis, total)

    # --- phase 2 ----------------------------------------------------------
    tableau2 = np.ascontiguousarray(tableau[keep][:, :total])
    b2 = b_full[keep]
    basis2 = [basis[i] for i in keep]
    cost2 = np.zeros(total)
    cost2[:num_std] = c_std
    value2, status = _simplex_core(tableau2, b2, cost2, basis2)
    if status == "unbounded":
        return LpResult(status="unbounded")
    x_std = np.zeros(total)
    for i, var in enumerate(basis2):
        x_std[var] = b2[i]
    x = _recover(x_std[:num_std], columns, offsets, n)
    return LpResult(
        status="optimal", x=x, objective=float(value2 + objective_offset)
    )


def _recover(x_std, columns, offsets, n) -> np.ndarray:
    x = np.array(offsets, dtype=float)
    for j in range(n):
        for idx, sign in columns[j]:
            x[j] += sign * x_std[idx]
    return x


def _simplex_core(
    tableau: np.ndarray,
    rhs: np.ndarray,
    cost: np.ndarray,
    basis: list[int],
    max_pivots: int = 100_000,
) -> tuple[float, str]:
    """Run the primal simplex on an explicit tableau, in place.

    ``tableau`` (m×k) and ``rhs`` (m) must describe a basic feasible
    solution with basic columns listed in ``basis``.  Uses Bland's rule.
    Returns the optimal objective value and a status string.
    """
    m, k = tableau.shape
    for _ in range(max_pivots):
        # Reduced costs: c_j − c_B · B⁻¹ A_j.  The tableau is kept in
        # canonical form, so B⁻¹A is the tableau itself.
        cb = cost[basis]
        reduced = cost - cb @ tableau
        reduced[basis] = 0.0  # exactly zero for basic columns
        entering = -1
        for j in range(k):
            if reduced[j] < -_EPS:
                entering = j  # Bland: smallest index
                break
        if entering < 0:
            return float(cb @ rhs), "optimal"
        # Ratio test (Bland: smallest basis index among ties).
        leaving = -1
        best_ratio = math.inf
        for i in range(m):
            coef = tableau[i, entering]
            if coef > _EPS:
                ratio = rhs[i] / coef
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return math.nan, "unbounded"
        _pivot(tableau, rhs, leaving, entering)
        basis[leaving] = entering
    raise SolverError("simplex exceeded the pivot limit")  # pragma: no cover


def _pivot(tableau: np.ndarray, rhs: np.ndarray, row: int, col: int) -> None:
    pivot = tableau[row, col]
    tableau[row] /= pivot
    rhs[row] /= pivot
    for i in range(tableau.shape[0]):
        if i != row and tableau[i, col] != 0.0:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            rhs[i] -= factor * rhs[row]


def _drive_out_artificials(
    tableau: np.ndarray, rhs: np.ndarray, basis: list[int], total: int
) -> list[int]:
    """After phase 1, pivot any artificial variable out of the basis (its
    value is zero).  Rows where no real column can serve as a pivot are
    redundant constraints; they are excluded from the returned list of
    rows to keep for phase 2.
    """
    m = tableau.shape[0]
    keep: list[int] = []
    for i in range(m):
        if basis[i] >= total:
            pivot_col = -1
            for j in range(total):
                if abs(tableau[i, j]) > _EPS:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, rhs, i, pivot_col)
                basis[i] = pivot_col
                keep.append(i)
            # else: redundant row, dropped.
        else:
            keep.append(i)
    return keep
