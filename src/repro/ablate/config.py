"""Ablation study configuration: TOML in, validated config out.

An ablation document names a *baseline* design point (one component
per axis) and the axes to ablate; the run set is then derived — the
baseline plus one swap-one variant per registered alternative on every
named axis — so adding a component to a registry automatically widens
every ablation study that touches its axis::

    [ablation]
    name = "paper-baseline"
    # optional: restrict which axes are ablated (default: all five)
    # axes = ["heuristic", "ordering", "admission", "allocator", "workload"]

    [baseline]
    cores = [2]
    # optional; defaults are the paper's design point
    # heuristic = "best-fit"
    # ordering  = "utilization"
    # admission = "rta"
    # allocator = "hydra"
    # workload  = "paper-synthetic"

    [sweep]
    # optional overrides, exactly as in a scenario sweep document;
    # defaults come from the --scale preset
    # seed = 2018
    # tasksets_per_point = 6
    # utilization = { start = 0.25, stop = 0.75, step = 0.25 }

Parsing deliberately *reuses* :func:`repro.experiments.scenario.parse_scenario`:
the baseline is assembled into a one-cell scenario document and pushed
through the scenario validator, so every axis-membership check, cores
check, and utilization-range check — and their exact typed error
messages — are shared with ``repro-hydra sweep`` instead of
reimplemented.
"""

from __future__ import annotations

import dataclasses
import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.errors import ValidationError
from repro.experiments.scenario import ScenarioConfig, parse_scenario

__all__ = [
    "AXES",
    "AblationConfig",
    "axis_components",
    "parse_ablation",
    "load_ablation",
]

#: The ablatable design axes, in the fixed study order (this order —
#: not document order — determines run-set generation, so run ids are
#: stable across cosmetically different configs).
AXES = ("heuristic", "ordering", "admission", "allocator", "workload")

#: Paper design point (Sec. IV): best-fit partitioning, utilisation
#: ordering, exact RTA admission, the HYDRA allocator, the synthetic
#: workload recipe.
_BASELINE_DEFAULTS = {
    "heuristic": "best-fit",
    "ordering": "utilization",
    "admission": "rta",
    "allocator": "hydra",
    "workload": "paper-synthetic",
}


def axis_components(axis: str) -> tuple[str, ...]:
    """Every registered component on ``axis``, in registry order.

    This is the swap-one candidate pool — growing a registry grows the
    ablation run set with no config change.
    """
    if axis == "heuristic":
        from repro.partition.heuristics import HEURISTICS

        return tuple(HEURISTICS)
    if axis == "ordering":
        from repro.partition.heuristics import ORDERINGS

        return tuple(ORDERINGS)
    if axis == "admission":
        from repro.analysis.schedulability import ADMISSION_TESTS

        return tuple(ADMISSION_TESTS)
    if axis == "allocator":
        from repro.allocators import allocator_names

        return tuple(allocator_names())
    if axis == "workload":
        from repro.workloads import workload_names

        return tuple(workload_names())
    raise ValidationError(
        f"unknown ablation axis {axis!r}; known axes: {list(AXES)}"
    )


@dataclass(frozen=True)
class AblationConfig:
    """Validated ablation study description.

    ``baseline`` is a one-cell :class:`ScenarioConfig` (both the
    allocator and workload axes explicit, so every run's cell labels
    and cache keys name the full design point); ``axes`` are the axes
    whose registered alternatives get a swap-one variant each.
    """

    name: str
    axes: tuple[str, ...]
    baseline: ScenarioConfig
    title: str = ""
    description: str = ""

    def baseline_component(self, axis: str) -> str:
        """The baseline's component on ``axis``."""
        values = {
            "heuristic": self.baseline.heuristics,
            "ordering": self.baseline.orderings,
            "admission": self.baseline.admissions,
            "allocator": self.baseline.allocators,
            "workload": self.baseline.workloads,
        }.get(axis)
        if values is None:
            raise ValidationError(
                f"unknown ablation axis {axis!r}; known axes: {list(AXES)}"
            )
        return values[0]

    def with_axes(self, axes: Sequence[str]) -> "AblationConfig":
        """A copy ablating only ``axes`` (the CLI ``--axis`` filter).

        Validates like the TOML key: every axis must be known and
        duplicates are rejected, not silently double-counted.  The
        result keeps the canonical :data:`AXES` order regardless of
        the order given.
        """
        _validate_axes(axes, source="--axis")
        return dataclasses.replace(
            self, axes=tuple(a for a in AXES if a in set(axes))
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(f"invalid ablation config: {message}")


def _validate_axes(axes: Sequence[str], source: str) -> None:
    seen: set[str] = set()
    for axis in axes:
        if axis not in AXES:
            raise ValidationError(
                f"invalid ablation config: {source} axis {axis!r} is "
                f"unknown; expected a subset of {list(AXES)}"
            )
        if axis in seen:
            raise ValidationError(
                f"invalid ablation config: {source} axis {axis!r} "
                f"given more than once"
            )
        seen.add(axis)
    _require(bool(seen), f"{source} needs at least one axis")


def parse_ablation(document: Mapping[str, Any]) -> AblationConfig:
    """Validate a parsed TOML document into an :class:`AblationConfig`.

    Every rejection names the offending key and the accepted values.
    Baseline component membership, cores, and ``[sweep]`` overrides
    are validated by :func:`~repro.experiments.scenario.parse_scenario`
    on the assembled one-cell scenario document, so their error
    wording is identical to the sweep path.
    """
    _require(isinstance(document, Mapping), "top level must be a table")
    unknown = set(document) - {"ablation", "baseline", "sweep"}
    _require(
        not unknown,
        f"unknown top-level section(s) {sorted(unknown)}; expected "
        f"[ablation], [baseline] and optionally [sweep]",
    )
    ablation = document.get("ablation", {})
    _require(isinstance(ablation, Mapping), "[ablation] must be a table")
    known = {"name", "title", "description", "axes"}
    unknown = set(ablation) - known
    _require(
        not unknown,
        f"unknown [ablation] key(s) {sorted(unknown)}; expected "
        f"{sorted(known)}",
    )
    name = ablation.get("name", "ablation")
    _require(
        isinstance(name, str) and name != "",
        "[ablation] name must be a non-empty string",
    )
    axes_value = ablation.get("axes")
    if axes_value is None:
        axes = AXES
    else:
        _require(
            isinstance(axes_value, list)
            and all(isinstance(a, str) for a in axes_value),
            "[ablation] axes must be a list of axis names",
        )
        _validate_axes(axes_value, source="[ablation] axes")
        axes = tuple(a for a in AXES if a in set(axes_value))

    baseline = document.get("baseline")
    _require(
        isinstance(baseline, Mapping),
        "missing [baseline] section (cores plus one component per axis)",
    )
    known = {"cores"} | set(AXES)
    unknown = set(baseline) - known
    _require(
        not unknown,
        f"unknown [baseline] key(s) {sorted(unknown)}; expected "
        f"{sorted(known)}",
    )
    components = {}
    for axis in AXES:
        value = baseline.get(axis, _BASELINE_DEFAULTS[axis])
        _require(
            isinstance(value, str),
            f"[baseline] {axis} must be a single component name (string)",
        )
        components[axis] = value

    sweep = document.get("sweep", {})
    _require(isinstance(sweep, Mapping), "[sweep] must be a table")
    unknown = set(sweep) - {"seed", "tasksets_per_point", "utilization"}
    _require(
        not unknown,
        f"unknown [sweep] key(s) {sorted(unknown)}; expected "
        f"['seed', 'tasksets_per_point', 'utilization'] (name/title/"
        f"description live in [ablation])",
    )

    # Assemble the baseline as a one-cell scenario document and let the
    # scenario validator do membership / cores / utilization checks.
    scenario_document = {
        "sweep": {"name": name, **{k: sweep[k] for k in sweep}},
        "grid": {
            "cores": baseline.get("cores"),
            "heuristic": [components["heuristic"]],
            "ordering": [components["ordering"]],
            "admission": [components["admission"]],
            "allocator": [components["allocator"]],
            "workload": [components["workload"]],
        },
    }
    baseline_config = parse_scenario(scenario_document)
    return AblationConfig(
        name=name,
        axes=axes,
        baseline=baseline_config,
        title=str(ablation.get("title", "")),
        description=str(ablation.get("description", "")),
    )


def load_ablation(path: str | Path) -> AblationConfig:
    """Parse and validate an ablation TOML file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ValidationError(f"cannot read ablation config: {exc}") from None
    try:
        document = tomllib.loads(raw.decode())
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
        raise ValidationError(f"{path} is not valid TOML: {exc}") from None
    return parse_ablation(document)
