"""The ablation study as a first-class Experiment.

:class:`AblationExperiment` puts the whole study — baseline plus every
swap-one variant (see :mod:`repro.ablate.runset`) — on the standard
:class:`~repro.experiments.api.Experiment` protocol, so it runs
through the same :class:`~repro.experiments.parallel.SweepEngine` /
:class:`~repro.jobs.JobRunner` stack as every paper figure: parallel
(``--workers``), cancellable, resumable, per-point content-addressed
caching, serial ≡ pooled ≡ cached byte-identical.  It is not
registered by name (like
:class:`~repro.experiments.scenario.ScenarioExperiment`): the CLI's
``ablate`` subcommand builds one from ``--config``, and the job
service builds one from a ``POST /jobs`` ablation document.

The domain result is :class:`AblationResult` — typed, versioned, with
an exact JSON round trip (``encode_data``/``decode_data``) and a flat
CSV view — holding the baseline summary, the per-component importance
reports *ranked most-important-first*, explicit ``harmful`` verdicts
(swapping the baseline component out improves the metric), and any
skipped variants with reasons.  The scoring arithmetic itself lives in
:mod:`repro.metrics.importance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.ablate.config import AblationConfig
from repro.ablate.runset import AblationRun, SkippedVariant, run_id, run_set
from repro.experiments.api import Experiment, RawRun
from repro.experiments.reporting import format_table
from repro.metrics.importance import (
    ImportanceScore,
    rank_scores,
    score_swap,
    swap_verdict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentScale
    from repro.experiments.parallel import SweepSpec

__all__ = [
    "METRICS",
    "RunSummary",
    "ComponentReport",
    "AblationResult",
    "AblationExperiment",
]

#: Scored metrics in priority order (both "higher is better"): the
#: acceptance ratio ranks first, mean tightness breaks ties.
METRICS = ("acceptance", "mean_tightness")


@dataclass(frozen=True)
class RunSummary:
    """One run's aggregate tallies across every core count and
    utilisation point, plus its stable content-addressed id."""

    run_id: str
    label: str
    accepted: int
    total: int
    tightness_sum: float

    @property
    def acceptance(self) -> float:
        """Accepted fraction over every evaluated task set."""
        return self.accepted / self.total if self.total else 0.0

    @property
    def mean_tightness(self) -> float:
        """Mean tightness over the accepted task sets (0 when none)."""
        return self.tightness_sum / self.accepted if self.accepted else 0.0

    def metrics(self) -> dict[str, float]:
        return {
            "acceptance": self.acceptance,
            "mean_tightness": self.mean_tightness,
        }


@dataclass(frozen=True)
class ComponentReport:
    """One swap's scored outcome: the variant run, its per-metric
    deltas against the baseline, and the verdict."""

    axis: str
    component: str
    run: RunSummary
    score: ImportanceScore
    verdict: str


@dataclass(frozen=True)
class AblationResult:
    """The study's domain result (ranked most-important-first)."""

    name: str
    scale: str
    cores: tuple[int, ...]
    tasksets_per_point: int
    axes: tuple[str, ...]
    baseline_components: tuple[tuple[str, str], ...]
    baseline: RunSummary
    components: tuple[ComponentReport, ...]
    skipped: tuple[SkippedVariant, ...]

    def harmful(self) -> tuple[ComponentReport, ...]:
        """The swaps flagged harmful, in rank order."""
        return tuple(c for c in self.components if c.verdict == "harmful")


def _summarize_run(
    run: AblationRun,
    sweeps: Sequence[Any],
    scale: "ExperimentScale",
) -> RunSummary:
    label = run.label
    accepted = 0
    total = 0
    tightness_sum = 0.0
    for result in sweeps:
        for payload in result.payloads:
            cell = payload["cells"][label]
            accepted += int(cell["accepted"])
            total += int(cell["total"])
            tightness_sum += float(cell["tightness_sum"])
    return RunSummary(
        run_id=run_id(run, scale),
        label=label,
        accepted=accepted,
        total=total,
        tightness_sum=tightness_sum,
    )


def _summary_to_data(summary: RunSummary) -> dict[str, Any]:
    return {
        "run_id": summary.run_id,
        "label": summary.label,
        "accepted": summary.accepted,
        "total": summary.total,
        "tightness_sum": summary.tightness_sum,
    }


def _summary_from_data(data: Mapping[str, Any]) -> RunSummary:
    return RunSummary(
        run_id=str(data["run_id"]),
        label=str(data["label"]),
        accepted=int(data["accepted"]),
        total=int(data["total"]),
        tightness_sum=float(data["tightness_sum"]),
    )


class AblationExperiment(Experiment):
    """A swap-one ablation study on the experiment protocol."""

    version = 1
    tags = ("ablate",)
    columns = (
        "rank", "axis", "component", "run_id", "acceptance",
        "mean_tightness", "acceptance_delta", "tightness_delta", "verdict",
    )

    def __init__(self, config: AblationConfig) -> None:
        self.config = config
        self.name = f"ablate:{config.name}"
        self.title = (
            config.title or f"Ablation study '{config.name}'"
        )
        self.description = config.description

    # -- execution --------------------------------------------------------

    def sweeps(self, scale: "ExperimentScale") -> list["SweepSpec"]:
        """Every run's scenario sweeps, baseline first, one spec per
        core count per run — plain concatenation, so the engine and
        job runner need no ablation awareness at all."""
        from repro.experiments.scenario import ScenarioExperiment

        runs, _ = run_set(self.config)
        return [
            spec
            for run in runs
            for spec in ScenarioExperiment(run.config).sweeps(scale)
        ]

    # -- aggregation ------------------------------------------------------

    def aggregate_domain(self, raw: RawRun) -> AblationResult:
        runs, skipped = run_set(self.config)
        per_run = len(self.config.baseline.cores)
        summaries = []
        for index, run in enumerate(runs):
            chunk = raw.sweeps[index * per_run:(index + 1) * per_run]
            summaries.append(_summarize_run(run, chunk, raw.scale))
        baseline = summaries[0]
        reports = {}
        for run, summary in zip(runs[1:], summaries[1:]):
            score = score_swap(
                run.axis,
                run.component,
                baseline.metrics(),
                summary.metrics(),
                METRICS,
            )
            reports[(run.axis, run.component)] = ComponentReport(
                axis=run.axis,
                component=run.component,
                run=summary,
                score=score,
                verdict=swap_verdict(score),
            )
        ranked = rank_scores(r.score for r in reports.values())
        tasksets = (
            self.config.baseline.tasksets_per_point
            if self.config.baseline.tasksets_per_point is not None
            else raw.scale.tasksets_per_point
        )
        return AblationResult(
            name=self.config.name,
            scale=raw.scale.name,
            cores=self.config.baseline.cores,
            tasksets_per_point=tasksets,
            axes=self.config.axes,
            baseline_components=tuple(
                (axis, self.config.baseline_component(axis))
                for axis in self.config.axes
            ),
            baseline=baseline,
            components=tuple(
                reports[(s.axis, s.component)] for s in ranked
            ),
            skipped=skipped,
        )

    # -- serialisation ----------------------------------------------------

    def encode_data(self, domain: AblationResult) -> dict[str, Any]:
        return {
            "name": domain.name,
            "scale": domain.scale,
            "cores": list(domain.cores),
            "tasksets_per_point": domain.tasksets_per_point,
            "axes": list(domain.axes),
            "baseline_components": [
                [axis, component]
                for axis, component in domain.baseline_components
            ],
            "baseline": _summary_to_data(domain.baseline),
            "components": [
                {
                    "axis": report.axis,
                    "component": report.component,
                    "run": _summary_to_data(report.run),
                    "deltas": [
                        [metric, delta]
                        for metric, delta in report.score.deltas
                    ],
                    "verdict": report.verdict,
                }
                for report in domain.components
            ],
            "skipped": [
                {"axis": s.axis, "component": s.component, "reason": s.reason}
                for s in domain.skipped
            ],
        }

    def decode_data(self, data: Mapping[str, Any]) -> AblationResult:
        return AblationResult(
            name=str(data["name"]),
            scale=str(data["scale"]),
            cores=tuple(int(c) for c in data["cores"]),
            tasksets_per_point=int(data["tasksets_per_point"]),
            axes=tuple(str(a) for a in data["axes"]),
            baseline_components=tuple(
                (str(axis), str(component))
                for axis, component in data["baseline_components"]
            ),
            baseline=_summary_from_data(data["baseline"]),
            components=tuple(
                ComponentReport(
                    axis=str(c["axis"]),
                    component=str(c["component"]),
                    run=_summary_from_data(c["run"]),
                    score=ImportanceScore(
                        axis=str(c["axis"]),
                        component=str(c["component"]),
                        deltas=tuple(
                            (str(metric), float(delta))
                            for metric, delta in c["deltas"]
                        ),
                    ),
                    verdict=str(c["verdict"]),
                )
                for c in data["components"]
            ),
            skipped=tuple(
                SkippedVariant(
                    axis=str(s["axis"]),
                    component=str(s["component"]),
                    reason=str(s["reason"]),
                )
                for s in data["skipped"]
            ),
        )

    # -- reporting --------------------------------------------------------

    def render_domain(self, domain: AblationResult) -> str:
        cores = ", ".join(str(c) for c in domain.cores)
        lines = [
            f"Ablation '{domain.name}' — swap-one component importance "
            f"(scale {domain.scale}, cores {cores}, "
            f"{domain.tasksets_per_point} task sets/point)",
            f"baseline: {domain.baseline.label}  "
            f"[run {domain.baseline.run_id[:12]}]",
            f"  acceptance {domain.baseline.acceptance:.4f}   "
            f"mean tightness {domain.baseline.mean_tightness:.4f}   "
            f"({domain.baseline.accepted}/{domain.baseline.total} "
            f"accepted)",
            "",
        ]
        rows = []
        for rank, report in enumerate(domain.components, start=1):
            rows.append(
                (
                    rank,
                    report.axis,
                    report.component,
                    report.run.run_id[:12],
                    f"{report.run.acceptance:.4f}",
                    f"{report.score.delta('acceptance'):+.4f}",
                    f"{report.run.mean_tightness:.4f}",
                    f"{report.score.delta('mean_tightness'):+.4f}",
                    report.verdict,
                )
            )
        lines.append(
            format_table(
                [
                    "rank", "axis", "component", "run", "acceptance",
                    "Δ acc", "tightness", "Δ tight", "verdict",
                ],
                rows,
                title=(
                    "Importance ranking (Δ = variant − baseline; "
                    "positive importance = the baseline component "
                    "carries weight)"
                ),
            )
        )
        harmful = domain.harmful()
        if harmful:
            lines.append("")
            lines.append(
                "harmful components (replacing the baseline choice "
                "improves the metric):"
            )
            for report in harmful:
                incumbent = dict(domain.baseline_components)[report.axis]
                lines.append(
                    f"  {report.axis}: {incumbent} → {report.component} "
                    f"(acceptance {report.score.delta('acceptance'):+.4f}, "
                    f"tightness "
                    f"{report.score.delta('mean_tightness'):+.4f})"
                )
        else:
            lines.append("")
            lines.append(
                "harmful components: none — every swap degrades (or "
                "ties) the baseline"
            )
        if domain.skipped:
            lines.append("")
            for s in domain.skipped:
                lines.append(
                    f"skipped: {s.axis}={s.component} — {s.reason}"
                )
        return "\n".join(lines)

    def table_rows(self, domain: AblationResult) -> list[Sequence[Any]]:
        rows: list[Sequence[Any]] = [
            (
                0, "baseline", domain.baseline.label,
                domain.baseline.run_id, domain.baseline.acceptance,
                domain.baseline.mean_tightness, 0.0, 0.0, "baseline",
            )
        ]
        for rank, report in enumerate(domain.components, start=1):
            rows.append(
                (
                    rank,
                    report.axis,
                    report.component,
                    report.run.run_id,
                    report.run.acceptance,
                    report.run.mean_tightness,
                    report.score.delta("acceptance"),
                    report.score.delta("mean_tightness"),
                    report.verdict,
                )
            )
        return rows
