"""Deterministic ablation run-set generation with stable run ids.

The run set of an :class:`~repro.ablate.config.AblationConfig` is the
baseline plus one *swap-one* variant per registered component on every
ablated axis (the incumbent itself is skipped — swapping a component
for itself is the baseline).  Generation is fully deterministic: axes
in the canonical :data:`~repro.ablate.config.AXES` order, components
in registry order, baseline first — so the i-th run of a config is
always the same run, and
:meth:`~repro.ablate.experiment.AblationExperiment.aggregate_domain`
can pair raw sweep results back to runs positionally.

**Run ids are content-addressed.**  Each run *is* a one-cell
:class:`~repro.experiments.scenario.ScenarioConfig` (the baseline with
exactly one axis replaced), and its id is the
:meth:`~repro.experiments.api.Experiment.spec_hash` of the
corresponding :class:`~repro.experiments.scenario.ScenarioExperiment`
at the study's scale — the same fingerprint the job runner derives job
ids from.  Because every run reuses the scenario sweep machinery
unchanged (same seeds, same per-point cache keys), repeated ``ablate``
invocations — and any earlier ``sweep`` run that evaluated the same
cell — are warm-cache hits, and *adding* a component to a registry
never invalidates the other runs' cached points.

All runs share ``seed + cores`` per core count, so every variant
evaluates against the same per-point RNG streams as the baseline:
runs differing only in analysis components (heuristic, ordering,
admission, allocator) see byte-identical task sets, which is what
makes their metric deltas paired comparisons rather than noise.

Variants that cannot run are *recorded*, not silently dropped: the
``singlecore`` allocator needs at least two cores (one is dedicated to
security), so on a single-core study its swap is reported in
``AblationResult.skipped`` with the reason.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ablate.config import AblationConfig, axis_components
from repro.experiments.scenario import ScenarioConfig, combo_label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentScale

__all__ = ["AblationRun", "SkippedVariant", "run_set", "run_id"]

#: ScenarioConfig field holding each axis's component tuple.
_AXIS_FIELDS = {
    "heuristic": "heuristics",
    "ordering": "orderings",
    "admission": "admissions",
    "allocator": "allocators",
    "workload": "workloads",
}


@dataclass(frozen=True)
class AblationRun:
    """One run of the study: the baseline (``axis is None``) or the
    variant swapping ``component`` in on ``axis``."""

    axis: str | None
    component: str | None
    config: ScenarioConfig

    @property
    def is_baseline(self) -> bool:
        return self.axis is None

    @property
    def label(self) -> str:
        """The run's single cell label (full design point,
        ``workload::allocator|heuristic/ordering/admission``)."""
        return combo_label(**self.config.combos[0])


@dataclass(frozen=True)
class SkippedVariant:
    """A swap that cannot run on this study's platform, with why."""

    axis: str
    component: str
    reason: str


def _variant_config(
    config: AblationConfig, axis: str, component: str
) -> ScenarioConfig:
    """The baseline scenario with exactly one axis swapped."""
    return dataclasses.replace(
        config.baseline,
        name=f"{config.name}:{axis}={component}",
        **{_AXIS_FIELDS[axis]: (component,)},
    )


def run_set(
    config: AblationConfig,
) -> tuple[tuple[AblationRun, ...], tuple[SkippedVariant, ...]]:
    """The study's deterministic run set: ``(runs, skipped)``.

    ``runs[0]`` is always the baseline; variants follow in canonical
    axis order, components in registry order, incumbents excluded.
    """
    baseline = dataclasses.replace(
        config.baseline, name=f"{config.name}:baseline"
    )
    runs = [AblationRun(axis=None, component=None, config=baseline)]
    skipped = []
    for axis in config.axes:
        incumbent = config.baseline_component(axis)
        for component in axis_components(axis):
            if component == incumbent:
                continue
            if (
                axis == "allocator"
                and component == "singlecore"
                and any(c < 2 for c in config.baseline.cores)
            ):
                skipped.append(
                    SkippedVariant(
                        axis=axis,
                        component=component,
                        reason=(
                            "singlecore dedicates one core to security "
                            "tasks, so it needs every core count >= 2"
                        ),
                    )
                )
                continue
            runs.append(
                AblationRun(
                    axis=axis,
                    component=component,
                    config=_variant_config(config, axis, component),
                )
            )
    return tuple(runs), tuple(skipped)


def run_id(run: AblationRun, scale: "ExperimentScale") -> str:
    """The run's stable content-addressed id at ``scale``.

    The ``spec_hash`` of the run's one-cell scenario experiment — the
    exact fingerprint :func:`repro.jobs.derive_job_id` builds job ids
    from, covering the spec and every sweep (and therefore every
    per-point cache key).  Identical run, identical id, across
    processes and releases.
    """
    from repro.experiments.scenario import ScenarioExperiment

    return ScenarioExperiment(run.config).spec_hash(scale)
