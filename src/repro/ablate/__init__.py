"""Automated ablation & component-importance studies.

The registries enumerate every swappable component — placement
heuristics, task orderings, admission tests, allocators, workload
families — which is exactly the input an ablation study needs.  This
package turns the paper's hand-built Sec. VI comparisons into a
generic facility:

* :mod:`repro.ablate.config` — the TOML schema (``[ablation]`` +
  ``[baseline]`` + optional ``[sweep]``), validated by *reusing* the
  scenario-sweep parser.
* :mod:`repro.ablate.runset` — deterministic baseline-plus-swap-one
  run-set generation with stable content-addressed run ids.
* :mod:`repro.ablate.experiment` — :class:`AblationExperiment`, the
  study on the standard experiment protocol (parallel, cancellable,
  cached through the engine), producing a ranked
  :class:`AblationResult` with harmful-component flagging.  The
  scoring arithmetic lives in :mod:`repro.metrics.importance`.

Run one with ``repro-hydra ablate --config examples/ablate.toml`` or
submit the same document to the job service (``POST /jobs``); both
paths share cache keys, so reruns are served entirely from cache.
"""

from repro.ablate.config import (
    AXES,
    AblationConfig,
    axis_components,
    load_ablation,
    parse_ablation,
)
from repro.ablate.experiment import (
    METRICS,
    AblationExperiment,
    AblationResult,
    ComponentReport,
    RunSummary,
)
from repro.ablate.runset import AblationRun, SkippedVariant, run_id, run_set

__all__ = [
    "AXES",
    "METRICS",
    "AblationConfig",
    "AblationExperiment",
    "AblationResult",
    "AblationRun",
    "ComponentReport",
    "RunSummary",
    "SkippedVariant",
    "axis_components",
    "load_ablation",
    "parse_ablation",
    "run_id",
    "run_set",
]
