"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """A model object was constructed with invalid parameters.

    Also a :class:`ValueError` so that generic input-validation handlers
    keep working.
    """


class ConfigError(ReproError, ValueError):
    """A by-name lookup or configuration value did not resolve.

    Raised when a user-supplied name (heuristic, ordering, admission
    test, allocator, experiment …) matches nothing registered; the
    message always lists the known names.  Also a :class:`ValueError`
    so generic input-validation handlers keep working.
    """


class PartitioningError(ReproError):
    """The real-time task set could not be partitioned onto the cores."""

    def __init__(self, message: str, unplaced_task: object = None) -> None:
        super().__init__(message)
        #: The first task that could not be placed, if known.
        self.unplaced_task = unplaced_task


class CacheError(ReproError, OSError):
    """The on-disk result store cannot be created, read, or written.

    Raised fail-fast when a cache/store root is unusable — before any
    sweep point has burned compute that could not be persisted.  Also an
    :class:`OSError` so pre-existing handlers for filesystem failures
    keep working.
    """


class SweepCancelled(ReproError):
    """A sweep was cooperatively cancelled between point batches.

    Raised by :class:`~repro.experiments.parallel.SweepEngine` when its
    ``should_cancel`` hook reports a pending cancellation; already
    computed batches stay cached, so a resubmitted job resumes from
    where the cancel landed.
    """


class ExecutorError(ReproError):
    """An execution backend could not complete a sweep point.

    Raised by :mod:`repro.executors` backends when a point exhausts
    its bounded retries (worker deaths, task timeouts) or a worker
    reports that the point runner itself raised.  Deterministic
    points make retries safe, so reaching this error means the
    failure is persistent, not transient.
    """


class ExecutorTaskError(ExecutorError):
    """A sweep point's runner raised inside a worker.

    Carries the worker-reported exception type and message — the
    failure is the *task's*, not the transport's, so executors
    surface it immediately instead of burning retries on a
    deterministic error.
    """

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        #: Exception class name reported by the worker (e.g.
        #: ``"ValidationError"``).
        self.error_type = error_type


class UnknownJobError(ReproError, KeyError):
    """A job id matched nothing the :class:`~repro.jobs.JobRunner`
    knows about.

    Also a :class:`KeyError` so generic by-id lookup handlers keep
    working.
    """

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id

    def __str__(self) -> str:  # KeyError quotes its args; keep prose
        return self.args[0]


class InfeasibleError(ReproError):
    """An optimisation problem has an empty feasible region."""


class SolverError(ReproError):
    """A numerical solver failed to converge or reported an internal error."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class AllocationError(ReproError):
    """A security-task allocator could not produce a valid allocation."""
