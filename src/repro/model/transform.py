"""Pure transformations of systems and task sets.

Design-space exploration constantly asks "the same system, but …":
scaled security load, a stretched period bound, one more core, a
different real-time partition.  These helpers produce *new* model
objects (everything in :mod:`repro.model` is immutable) and are shared
by the advice module, the sensitivity analyses and the test-suite.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.model.system import Partition, SystemModel
from repro.model.task import SecurityTask, TaskSet

__all__ = [
    "scale_security_wcets",
    "with_security_task",
    "with_period_max",
    "with_extra_cores",
    "with_security_tasks",
]


def with_security_tasks(
    system: SystemModel, security_tasks: TaskSet | Iterable[SecurityTask]
) -> SystemModel:
    """The same platform/partition with a different security workload.

    Weight overrides are kept only for tasks that still exist.
    """
    if not isinstance(security_tasks, TaskSet):
        security_tasks = TaskSet(security_tasks)
    weights = {
        name: weight
        for name, weight in system.weights.items()
        if name in security_tasks
    }
    return SystemModel(
        platform=system.platform,
        rt_partition=system.rt_partition,
        security_tasks=security_tasks,
        weights=weights,
    )


def scale_security_wcets(system: SystemModel, factor: float) -> SystemModel:
    """Multiply every security WCET by ``factor``.

    Raises :class:`ValidationError` when the scaling pushes some WCET
    past its desired period (the task could then never run at the
    desired rate, even alone).
    """
    if factor <= 0:
        raise ValidationError(f"factor must be positive, got {factor}")
    scaled = TaskSet(
        replace(task, wcet=task.wcet * factor)
        for task in system.security_tasks
    )
    return with_security_tasks(system, scaled)


def with_security_task(
    system: SystemModel, task: SecurityTask
) -> SystemModel:
    """Replace (by name) or append one security task."""
    existing = list(system.security_tasks)
    for i, current in enumerate(existing):
        if current.name == task.name:
            existing[i] = task
            break
    else:
        existing.append(task)
    return with_security_tasks(system, existing)


def with_period_max(
    system: SystemModel, task_name: str, period_max: float
) -> SystemModel:
    """The same system with one task's ``T_max`` replaced."""
    task = system.security_tasks[task_name]
    return with_security_task(system, replace(task, period_max=period_max))


def with_extra_cores(system: SystemModel, count: int = 1) -> SystemModel:
    """The same system on a platform with ``count`` additional (empty)
    cores; the real-time partition is unchanged."""
    if count < 1:
        raise ValidationError(f"count must be ≥ 1, got {count}")
    platform = Platform(system.platform.num_cores + count)
    partition = Partition(
        platform,
        system.rt_partition.tasks,
        system.rt_partition.as_mapping(),
    )
    return SystemModel(
        platform=platform,
        rt_partition=partition,
        security_tasks=system.security_tasks,
        weights=dict(system.weights),
    )
