"""System-level model: real-time partition and full system description.

A :class:`Partition` records which real-time task runs on which core (the
paper's indicator matrix ``I = [I_r^m]``).  A :class:`SystemModel` bundles
the platform, the partitioned real-time task set and the security task
set; it is the single input object consumed by every allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.model.task import RealTimeTask, SecurityTask, TaskSet

__all__ = ["Partition", "SystemModel"]


class Partition:
    """An assignment of real-time tasks to cores.

    Immutable.  Maps each task *name* to a core index and offers per-core
    views used by the interference analysis (Eq. 5 needs "the real-time
    tasks partitioned to core m").
    """

    __slots__ = ("_platform", "_tasks", "_core_of", "_on_core")

    def __init__(
        self,
        platform: Platform,
        tasks: TaskSet | Iterable[RealTimeTask],
        core_of: Mapping[str, int],
    ) -> None:
        if not isinstance(tasks, TaskSet):
            tasks = TaskSet(tasks)
        self._platform = platform
        self._tasks = tasks
        mapping: dict[str, int] = {}
        on_core: dict[int, list[RealTimeTask]] = {m: [] for m in platform}
        for task in tasks:
            if task.name not in core_of:
                raise ValidationError(
                    f"partition misses an assignment for task {task.name!r}"
                )
            core = core_of[task.name]
            platform.validate_core(core)
            mapping[task.name] = core
            on_core[core].append(task)
        extra = set(core_of) - set(mapping)
        if extra:
            raise ValidationError(
                f"partition assigns unknown task(s): {sorted(extra)!r}"
            )
        self._core_of = mapping
        self._on_core = {m: tuple(ts) for m, ts in on_core.items()}

    @property
    def platform(self) -> Platform:
        """The platform this partition targets."""
        return self._platform

    @property
    def tasks(self) -> TaskSet:
        """All partitioned real-time tasks."""
        return self._tasks

    def core_of(self, task: RealTimeTask | str) -> int:
        """Core index hosting ``task`` (task object or name)."""
        name = task if isinstance(task, str) else task.name
        try:
            return self._core_of[name]
        except KeyError:
            raise ValidationError(f"task {name!r} is not partitioned") from None

    def tasks_on(self, core: int) -> tuple[RealTimeTask, ...]:
        """Real-time tasks assigned to ``core`` (the paper's
        ``{τr : I_r^m = 1}``)."""
        self._platform.validate_core(core)
        return self._on_core[core]

    def utilization_of(self, core: int) -> float:
        """Total real-time utilisation on ``core``."""
        return sum(task.utilization for task in self.tasks_on(core))

    def utilizations(self) -> list[float]:
        """Per-core real-time utilisation, indexed by core."""
        return [self.utilization_of(m) for m in self._platform]

    def as_mapping(self) -> dict[str, int]:
        """Copy of the task-name → core mapping."""
        return dict(self._core_of)

    def indicator(self) -> list[list[int]]:
        """The paper's indicator matrix ``I`` as ``I[m][r]`` over set order."""
        return [
            [1 if self._core_of[t.name] == m else 0 for t in self._tasks]
            for m in self._platform
        ]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Partition):
            return (
                self._platform == other._platform
                and self._tasks == other._tasks
                and self._core_of == other._core_of
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        per_core = {
            self._platform.core_label(m): [t.name for t in self._on_core[m]]
            for m in self._platform
        }
        return f"Partition({per_core!r})"


@dataclass(frozen=True)
class SystemModel:
    """Complete input to a security-task allocator.

    Attributes
    ----------
    platform:
        The multicore platform.
    rt_partition:
        Partition of the (already schedulable) real-time tasks.  The paper
        assumes this is given; :mod:`repro.partition` produces it.
    security_tasks:
        The security tasks to allocate, in any order (allocators sort by
        priority internally).
    weights:
        Optional name → ``ω`` mapping for the objective of Eq. (3).
        Missing names default to the task's own :attr:`SecurityTask.weight`.
    """

    platform: Platform
    rt_partition: Partition
    security_tasks: TaskSet
    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rt_partition.platform != self.platform:
            raise ValidationError(
                "partition platform differs from system platform"
            )
        for task in self.security_tasks:
            if not isinstance(task, SecurityTask):
                raise ValidationError(
                    f"{task!r} in security_tasks is not a SecurityTask"
                )
        rt_names = set(self.rt_partition.tasks.names)
        clash = rt_names & set(self.security_tasks.names)
        if clash:
            raise ValidationError(
                f"task names shared between real-time and security sets: "
                f"{sorted(clash)!r}"
            )
        for name in self.weights:
            if name not in self.security_tasks:
                raise ValidationError(
                    f"weight given for unknown security task {name!r}"
                )

    def weight_of(self, task: SecurityTask | str) -> float:
        """Objective weight ``ω`` for ``task``."""
        if isinstance(task, str):
            task = self.security_tasks[task]
        return float(self.weights.get(task.name, task.weight))

    @property
    def rt_tasks(self) -> TaskSet:
        """All real-time tasks (across all cores)."""
        return self.rt_partition.tasks

    @property
    def total_rt_utilization(self) -> float:
        """System-wide real-time utilisation."""
        return sum(task.utilization for task in self.rt_tasks)

    @property
    def total_security_utilization_des(self) -> float:
        """System-wide security utilisation at the desired periods."""
        return sum(task.utilization_des for task in self.security_tasks)
