"""Task models for the HYDRA reproduction.

The paper (Sec. II) schedules two kinds of sporadic tasks:

* **Real-time tasks** ``τr = (Cr, Tr, Dr)`` — WCET, minimum inter-arrival
  time (period) and relative deadline.  Deadlines are implicit
  (``Dr = Tr``) and priorities are rate monotonic and distinct.
* **Security tasks** ``τs = (Cs, T_des_s, T_max_s)`` — WCET, desired
  (minimum acceptable) period and the maximum period beyond which the
  security monitoring is considered ineffective.  Security tasks always
  execute with a priority *below every real-time task*; among themselves
  they are prioritised by ``T_max`` (smaller ``T_max`` → higher priority).

All times are plain floats in a single consistent unit; the experiment
code uses milliseconds throughout, mirroring the paper's parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.errors import ValidationError

__all__ = [
    "RealTimeTask",
    "SecurityTask",
    "TaskSet",
    "total_utilization",
]


def _require_positive(value: float, name: str, task_name: str) -> None:
    if not math.isfinite(value) or value <= 0.0:
        raise ValidationError(
            f"task {task_name!r}: {name} must be a positive finite number, "
            f"got {value!r}"
        )


@dataclass(frozen=True, slots=True)
class RealTimeTask:
    """A sporadic hard real-time task ``(C, T, D)``.

    Parameters
    ----------
    name:
        Human-readable identifier; must be unique within a task set.
    wcet:
        Worst-case execution time ``C``.
    period:
        Minimum inter-arrival time ``T``.
    deadline:
        Relative deadline ``D``.  Defaults to the period (implicit
        deadline), which is what the paper assumes.
    priority:
        Fixed priority.  Smaller values denote *higher* priority.  ``None``
        until assigned (see :func:`repro.model.priority.assign_rate_monotonic`).
    """

    name: str
    wcet: float
    period: float
    deadline: float | None = None
    priority: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        _require_positive(self.wcet, "wcet", self.name)
        _require_positive(self.period, "period", self.name)
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        _require_positive(self.deadline, "deadline", self.name)
        if self.wcet > self.deadline:
            raise ValidationError(
                f"task {self.name!r}: wcet {self.wcet} exceeds deadline "
                f"{self.deadline}; the task can never meet its deadline"
            )
        if self.deadline > self.period:
            raise ValidationError(
                f"task {self.name!r}: constrained/arbitrary deadlines beyond "
                f"the period are not supported (D={self.deadline}, "
                f"T={self.period})"
            )

    @property
    def utilization(self) -> float:
        """Processor share ``C / T`` demanded by the task."""
        return self.wcet / self.period

    @property
    def is_implicit_deadline(self) -> bool:
        """Whether ``D == T`` (the paper's model)."""
        return self.deadline == self.period

    def with_priority(self, priority: int) -> "RealTimeTask":
        """Return a copy of the task with ``priority`` assigned."""
        return replace(self, priority=priority)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RT({self.name}: C={self.wcet:g}, T={self.period:g}, "
            f"D={self.deadline:g})"
        )


@dataclass(frozen=True, slots=True)
class SecurityTask:
    """A sporadic security task ``(C, T_des, T_max)`` (paper Sec. II-C).

    The *actual* period is an output of the allocation algorithms, so it is
    deliberately **not** stored here; see
    :class:`repro.core.allocator.SecurityAssignment`.

    Parameters
    ----------
    name:
        Human-readable identifier; must be unique within a task set.
    wcet:
        Worst-case execution time ``C``.
    period_des:
        Desired period ``T_des`` (the best, i.e. smallest, acceptable
        period — ``1/T_des`` is the desired monitoring frequency).
    period_max:
        Maximum period ``T_max`` beyond which monitoring is ineffective.
    weight:
        Objective weight ``ω`` in Eq. (3); higher-priority tasks receive
        larger weights.  Defaults to 1.
    surface:
        Optional label of the attack surface this task monitors (e.g.
        ``"filesystem"`` or ``"network"``); used by the attack-injection
        simulator to decide which security task can detect which attack.
    """

    name: str
    wcet: float
    period_des: float
    period_max: float
    weight: float = 1.0
    surface: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        _require_positive(self.wcet, "wcet", self.name)
        _require_positive(self.period_des, "period_des", self.name)
        _require_positive(self.period_max, "period_max", self.name)
        _require_positive(self.weight, "weight", self.name)
        if self.period_des > self.period_max:
            raise ValidationError(
                f"task {self.name!r}: period_des {self.period_des} exceeds "
                f"period_max {self.period_max}"
            )
        if self.wcet > self.period_des:
            raise ValidationError(
                f"task {self.name!r}: wcet {self.wcet} exceeds the desired "
                f"period {self.period_des}; even an idle core cannot "
                f"schedule it at the desired rate"
            )

    @property
    def utilization_des(self) -> float:
        """Utilisation ``C / T_des`` at the desired (highest) rate."""
        return self.wcet / self.period_des

    @property
    def utilization_min(self) -> float:
        """Utilisation ``C / T_max`` at the maximum (slowest) period."""
        return self.wcet / self.period_max

    @property
    def min_tightness(self) -> float:
        """Lower bound of the tightness metric, ``T_des / T_max``."""
        return self.period_des / self.period_max

    def tightness(self, period: float) -> float:
        """Tightness ``η = T_des / T`` of running this task at ``period``.

        Raises :class:`ValidationError` if ``period`` lies outside
        ``[T_des, T_max]`` (allowing for a small numerical tolerance).
        """
        tolerance = 1e-9 * max(1.0, self.period_max)
        if not (
            self.period_des - tolerance <= period <= self.period_max + tolerance
        ):
            raise ValidationError(
                f"task {self.name!r}: period {period} outside the admissible "
                f"range [{self.period_des}, {self.period_max}]"
            )
        return self.period_des / period

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Sec({self.name}: C={self.wcet:g}, Tdes={self.period_des:g}, "
            f"Tmax={self.period_max:g})"
        )


class TaskSet(Sequence):
    """An immutable, name-indexed collection of tasks.

    Works for both real-time and security tasks; enforces unique names.
    Supports iteration, ``len``, integer indexing and name lookup.
    """

    __slots__ = ("_tasks", "_by_name")

    def __init__(self, tasks: Iterable[RealTimeTask | SecurityTask] = ()) -> None:
        self._tasks = tuple(tasks)
        by_name: dict[str, RealTimeTask | SecurityTask] = {}
        for task in self._tasks:
            if task.name in by_name:
                raise ValidationError(f"duplicate task name {task.name!r}")
            by_name[task.name] = task
        self._by_name = by_name

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator:
        return iter(self._tasks)

    def __getitem__(self, index):
        if isinstance(index, str):
            return self._by_name[index]
        return self._tasks[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, str):
            return item in self._by_name
        return item in self._tasks

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaskSet):
            return self._tasks == other._tasks
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSet({list(self._tasks)!r})"

    @property
    def names(self) -> tuple[str, ...]:
        """Tuple of task names in set order."""
        return tuple(task.name for task in self._tasks)

    @property
    def utilization(self) -> float:
        """Total utilisation of the set.

        Real-time tasks contribute ``C/T``; security tasks contribute
        their *desired* utilisation ``C/T_des`` (the paper's convention
        when budgeting security utilisation against real-time
        utilisation).
        """
        return total_utilization(self._tasks)

    def extended(self, tasks: Iterable[RealTimeTask | SecurityTask]) -> "TaskSet":
        """Return a new set with ``tasks`` appended."""
        return TaskSet((*self._tasks, *tasks))

    def sorted_by(self, key, reverse: bool = False) -> "TaskSet":
        """Return a new set sorted by ``key``."""
        return TaskSet(sorted(self._tasks, key=key, reverse=reverse))


def total_utilization(tasks: Iterable[RealTimeTask | SecurityTask]) -> float:
    """Sum the utilisation of a mixed collection of tasks.

    Security tasks are counted at their desired rate (``C/T_des``), which
    is the convention used by the paper's workload generator ("total
    utilisation of the security tasks were set to be no more than 30% of
    the real-time tasks").
    """
    total = 0.0
    for task in tasks:
        if isinstance(task, SecurityTask):
            total += task.utilization_des
        else:
            total += task.utilization
    return total
