"""Multicore platform model.

The paper assumes a platform of ``M`` identical cores
``M = {π1, …, πM}`` with partitioned fixed-priority preemptive
scheduling.  A :class:`Platform` is little more than a validated core
count plus naming helpers, but keeping it as a first-class object lets
the allocators, analyses and the simulator share one vocabulary for
"core m".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ValidationError

__all__ = ["Platform"]


@dataclass(frozen=True, slots=True)
class Platform:
    """A symmetric multicore platform with ``num_cores`` identical cores.

    Cores are identified by integer indices ``0 … num_cores - 1``
    (the paper's ``π1 … πM`` one-based labels are only used for
    display).
    """

    num_cores: int

    def __post_init__(self) -> None:
        if not isinstance(self.num_cores, int) or self.num_cores < 1:
            raise ValidationError(
                f"a platform needs at least one core, got {self.num_cores!r}"
            )

    def cores(self) -> range:
        """The core indices, ``range(num_cores)``."""
        return range(self.num_cores)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cores())

    def __len__(self) -> int:
        return self.num_cores

    def __contains__(self, core: object) -> bool:
        return isinstance(core, int) and 0 <= core < self.num_cores

    def core_label(self, core: int) -> str:
        """Human-readable one-based label, e.g. ``"π3"``."""
        self.validate_core(core)
        return f"π{core + 1}"

    def validate_core(self, core: int) -> None:
        """Raise :class:`ValidationError` if ``core`` is not a valid index."""
        if core not in self:
            raise ValidationError(
                f"core index {core!r} outside platform with "
                f"{self.num_cores} cores"
            )

    def without_core(self, core: int) -> "Platform":
        """Platform with one fewer core (used by the SingleCore baseline,
        which reserves one core exclusively for security tasks)."""
        self.validate_core(core)
        if self.num_cores == 1:
            raise ValidationError(
                "cannot reserve the only core of a single-core platform"
            )
        return Platform(self.num_cores - 1)
