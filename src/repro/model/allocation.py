"""Allocation result types (paper Sec. III).

Every allocation scheme consumes a :class:`~repro.model.system.SystemModel`
and produces an :class:`Allocation`: either a complete security-task →
(core, period) mapping, or a verdict of *unschedulable* naming the first
task that could not be placed (the paper's Algorithm 1 line 9).

:class:`AllocationResult` is the richer envelope the first-class
allocator API (:mod:`repro.allocators`) returns: the allocation itself
plus the resolved security partition, per-task tightness, solver
diagnostics, and wall-clock timing — everything a report, a sweep cell,
or the simulator needs, independent of which strategy produced it.

These types live in :mod:`repro.model` (not :mod:`repro.core`) because
they are pure data: strategies in any layer — bin-packing heuristics,
LP/GP solvers, exhaustive searches — produce them, and consumers
(experiments, simulator, CLI) read them without importing any solver.
:mod:`repro.core.allocator` re-exports them for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ValidationError
from repro.model.system import SystemModel
from repro.model.task import SecurityTask

__all__ = [
    "SecurityAssignment",
    "Allocation",
    "AllocationResult",
    "as_allocation",
]


@dataclass(frozen=True, slots=True)
class SecurityAssignment:
    """One security task placed on a core with an adapted period."""

    task: SecurityTask
    core: int
    period: float

    def __post_init__(self) -> None:
        tolerance = 1e-6 * max(1.0, self.period_max)
        if not (
            self.task.period_des - tolerance
            <= self.period
            <= self.task.period_max + tolerance
        ):
            raise ValidationError(
                f"assigned period {self.period} for {self.task.name!r} "
                f"violates [{self.task.period_des}, {self.task.period_max}]"
            )

    @property
    def period_max(self) -> float:
        """The task's loosest acceptable period (delegated)."""
        return self.task.period_max

    @property
    def tightness(self) -> float:
        """``η = T_des / T`` achieved by this assignment."""
        return self.task.period_des / self.period

    @property
    def utilization(self) -> float:
        """Utilisation consumed on the core, ``C / T``."""
        return self.task.wcet / self.period


@dataclass(frozen=True)
class Allocation:
    """Result of a security-task allocation attempt.

    A *schedulable* allocation carries one :class:`SecurityAssignment`
    per security task (in priority order); an unschedulable one carries
    the name of the first task for which no core was feasible.
    """

    scheme: str
    schedulable: bool
    assignments: tuple[SecurityAssignment, ...] = ()
    failed_task: str | None = None
    #: Free-form diagnostics (search statistics, solver info, …).
    info: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.schedulable and self.failed_task is not None:
            raise ValidationError(
                "a schedulable allocation cannot name a failed task"
            )
        if not self.schedulable and self.assignments:
            raise ValidationError(
                "an unschedulable allocation must not carry assignments"
            )

    # -- lookup helpers ------------------------------------------------

    def assignment_for(self, task: SecurityTask | str) -> SecurityAssignment:
        """The assignment of ``task`` (or name); ``KeyError`` if absent."""
        name = task if isinstance(task, str) else task.name
        for assignment in self.assignments:
            if assignment.task.name == name:
                return assignment
        raise KeyError(name)

    def periods(self) -> dict[str, float]:
        """Task name → assigned period."""
        return {a.task.name: a.period for a in self.assignments}

    def cores(self) -> dict[str, int]:
        """Task name → assigned core."""
        return {a.task.name: a.core for a in self.assignments}

    def tasks_on(self, core: int) -> tuple[SecurityAssignment, ...]:
        """Assignments placed on ``core``."""
        return tuple(a for a in self.assignments if a.core == core)

    # -- metrics ---------------------------------------------------------

    def cumulative_tightness(
        self, weights: Mapping[str, float] | None = None
    ) -> float:
        """``Σ ω_s · η_s`` (unweighted when ``weights`` is ``None``)."""
        if not self.schedulable:
            return 0.0
        if weights is None:
            return sum(a.tightness for a in self.assignments)
        return sum(
            weights.get(a.task.name, 1.0) * a.tightness
            for a in self.assignments
        )

    def mean_tightness(self) -> float:
        """Average tightness over the security tasks (0 if unschedulable)."""
        if not self.assignments:
            return 0.0
        return self.cumulative_tightness() / len(self.assignments)

    def security_utilization(self) -> float:
        """Total utilisation consumed by the allocated security tasks."""
        return sum(a.utilization for a in self.assignments)


@dataclass(frozen=True)
class AllocationResult:
    """Typed envelope around one strategy's allocation attempt.

    This is what :func:`repro.allocators.run_allocator` returns and
    what every consumer of the first-class allocator API receives: the
    raw :class:`Allocation` plus uniform metadata no individual
    strategy has to remember to produce.

    Attributes
    ----------
    allocator:
        Registry spec the strategy was resolved from (equals
        ``allocation.scheme`` for the built-ins).
    allocation:
        The underlying allocation (assignments or failure verdict).
    diagnostics:
        Solver/search statistics: the allocation's own ``info`` merged
        with anything the runner adds (LP solve counts, nodes, …).
    elapsed_s:
        Wall-clock seconds the ``allocate`` call took.
    """

    allocator: str
    allocation: Allocation
    diagnostics: Mapping[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0

    # -- delegation -------------------------------------------------------

    @property
    def scheme(self) -> str:
        """Name of the strategy that produced the allocation."""
        return self.allocation.scheme

    @property
    def schedulable(self) -> bool:
        """Whether every security task was placed feasibly."""
        return self.allocation.schedulable

    @property
    def failed_task(self) -> str | None:
        """Name of the first unplaceable task, or ``None``."""
        return self.allocation.failed_task

    @property
    def assignments(self) -> tuple[SecurityAssignment, ...]:
        """Per-task placements, in security-priority order."""
        return self.allocation.assignments

    def security_partition(self) -> dict[str, int]:
        """Security task name → core (the partition the strategy chose)."""
        return self.allocation.cores()

    def periods(self) -> dict[str, float]:
        """Security task name → assigned period."""
        return self.allocation.periods()

    def tightness_by_task(self) -> dict[str, float]:
        """Security task name → achieved tightness ``η``."""
        return {a.task.name: a.tightness for a in self.allocation.assignments}

    def mean_tightness(self) -> float:
        """Mean achieved tightness ``η`` over the assignments."""
        return self.allocation.mean_tightness()

    def cumulative_tightness(
        self, weights: Mapping[str, float] | None = None
    ) -> float:
        """Weighted tightness sum (paper Eq. 2; uniform by default)."""
        return self.allocation.cumulative_tightness(weights)

    def summary(self) -> str:
        """One-line human summary (the CLI's describe/run output)."""
        if not self.schedulable:
            return (
                f"{self.allocator}: unschedulable "
                f"(failed task: {self.failed_task or 'n/a'}) "
                f"[{self.elapsed_s * 1e3:.2f} ms]"
            )
        return (
            f"{self.allocator}: {len(self.assignments)} task(s) placed, "
            f"mean tightness {self.mean_tightness():.3f} "
            f"[{self.elapsed_s * 1e3:.2f} ms]"
        )


def as_allocation(
    scheme: str,
    system: SystemModel,
    assignment: Mapping[str, int],
    periods: Mapping[str, float],
    info: Mapping[str, object] | None = None,
) -> Allocation:
    """Build a schedulable :class:`Allocation` from plain mappings.

    Keeps priority order, which downstream consumers (simulator,
    reports) rely on.
    """
    from repro.model.priority import security_priority_order

    ordered = security_priority_order(system.security_tasks)
    assignments = tuple(
        SecurityAssignment(
            task=task, core=assignment[task.name], period=periods[task.name]
        )
        for task in ordered
    )
    return Allocation(
        scheme=scheme,
        schedulable=True,
        assignments=assignments,
        info=dict(info or {}),
    )
