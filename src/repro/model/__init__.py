"""Task, platform and system models (paper Sec. II).

Public surface:

* :class:`~repro.model.task.RealTimeTask`,
  :class:`~repro.model.task.SecurityTask`,
  :class:`~repro.model.task.TaskSet` — the sporadic task models.
* :class:`~repro.model.platform.Platform` — ``M`` identical cores.
* :class:`~repro.model.system.Partition` — real-time task → core map.
* :class:`~repro.model.system.SystemModel` — the allocator input bundle.
* :class:`~repro.model.allocation.Allocation`,
  :class:`~repro.model.allocation.AllocationResult` — what allocation
  strategies produce (see :mod:`repro.allocators`).
* Priority policies in :mod:`repro.model.priority`.
"""

from repro.model.allocation import (
    Allocation,
    AllocationResult,
    SecurityAssignment,
    as_allocation,
)
from repro.model.platform import Platform
from repro.model.priority import (
    assign_rate_monotonic,
    higher_priority_security,
    rate_monotonic_order,
    security_priority_order,
    weights_by_priority,
)
from repro.model.system import Partition, SystemModel
from repro.model.task import (
    RealTimeTask,
    SecurityTask,
    TaskSet,
    total_utilization,
)
from repro.model.transform import (
    scale_security_wcets,
    with_extra_cores,
    with_period_max,
    with_security_task,
    with_security_tasks,
)

__all__ = [
    "Platform",
    "Partition",
    "SystemModel",
    "Allocation",
    "AllocationResult",
    "SecurityAssignment",
    "as_allocation",
    "RealTimeTask",
    "SecurityTask",
    "TaskSet",
    "total_utilization",
    "assign_rate_monotonic",
    "rate_monotonic_order",
    "security_priority_order",
    "higher_priority_security",
    "weights_by_priority",
    "scale_security_wcets",
    "with_security_tasks",
    "with_security_task",
    "with_period_max",
    "with_extra_cores",
]
