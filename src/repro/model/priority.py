"""Priority assignment policies.

The paper fixes two priority orders:

* Real-time tasks use **rate monotonic** (RM) priorities — shorter period
  means higher priority — and priorities are *distinct* (ties broken
  deterministically).
* Security tasks are prioritised by their maximum period:
  ``pri(τs1) > pri(τs2)  iff  T_max_s1 < T_max_s2`` (Sec. II-C), and every
  security task runs below every real-time task.

Throughout the package, a *smaller* integer priority value denotes a
*higher* priority (the usual convention in response-time analysis
literature).  Real-time tasks occupy priority levels ``0 … NR-1`` and
security tasks occupy levels ``NR … NR+NS-1`` so that a single total
order covers the whole system.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.model.task import RealTimeTask, SecurityTask, TaskSet

__all__ = [
    "assign_rate_monotonic",
    "security_priority_order",
    "higher_priority_security",
    "rate_monotonic_order",
    "weights_by_priority",
]


def rate_monotonic_order(tasks: Iterable[RealTimeTask]) -> list[RealTimeTask]:
    """Return tasks sorted in rate monotonic order (highest priority first).

    Ties on the period are broken by WCET (larger first, which is the more
    pessimistic interferer ordering) and then by name so that the order is
    total and deterministic, satisfying the paper's "distinct priorities"
    assumption.
    """
    return sorted(tasks, key=lambda t: (t.period, -t.wcet, t.name))


def assign_rate_monotonic(tasks: Iterable[RealTimeTask]) -> TaskSet:
    """Assign distinct RM priorities ``0 … NR-1`` and return a new set.

    The returned :class:`TaskSet` is sorted from highest to lowest
    priority.
    """
    ordered = rate_monotonic_order(tasks)
    return TaskSet(
        task.with_priority(level) for level, task in enumerate(ordered)
    )


def security_priority_order(tasks: Iterable[SecurityTask]) -> list[SecurityTask]:
    """Return security tasks sorted from highest to lowest priority.

    Priority is by ``T_max`` ascending (Sec. II-C); ties are broken by
    desired period, WCET (larger first) and name to keep the order total
    and deterministic.
    """
    return sorted(
        tasks, key=lambda t: (t.period_max, t.period_des, -t.wcet, t.name)
    )


def higher_priority_security(
    task: SecurityTask, tasks: Iterable[SecurityTask]
) -> list[SecurityTask]:
    """The set ``hpS(τs)`` of security tasks with higher priority than
    ``task``, in priority order.

    ``task`` itself is excluded.  ``tasks`` may or may not contain
    ``task``.
    """
    ordered = security_priority_order(tasks)
    result: list[SecurityTask] = []
    for candidate in ordered:
        if candidate.name == task.name:
            break
        result.append(candidate)
    return result


def weights_by_priority(
    tasks: Sequence[SecurityTask], highest: float | None = None
) -> dict[str, float]:
    """Derive objective weights ``ω`` from the security priority order.

    Eq. (3) of the paper weights the tightness of each security task by a
    priority-reflecting factor ("higher priority tasks would have large
    ω").  This helper produces the simple linear weighting
    ``ω = NS, NS-1, …, 1`` from highest to lowest priority, or scales the
    top weight to ``highest`` if given.

    Returns a name → weight mapping.
    """
    ordered = security_priority_order(tasks)
    count = len(ordered)
    if count == 0:
        return {}
    top = float(highest) if highest is not None else float(count)
    step = top / count
    return {
        task.name: top - level * step for level, task in enumerate(ordered)
    }
