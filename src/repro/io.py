"""Serialisation: JSON for models and allocations, CSV for result rows.

A reproduction is only auditable if its inputs and outputs can leave
the process: this module round-trips every model object through plain
JSON-compatible dictionaries (stable keys, no pickling) and exports
experiment series as CSV for external plotting.

Round-trip guarantees (tested): ``X == from_dict(to_dict(X))`` for
tasks, task sets, partitions, systems; allocations round-trip through
their task/core/period content.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.core.allocator import Allocation, SecurityAssignment
from repro.errors import ValidationError
from repro.model.platform import Platform
from repro.model.system import Partition, SystemModel
from repro.model.task import RealTimeTask, SecurityTask, TaskSet

__all__ = [
    "task_to_dict",
    "task_from_dict",
    "taskset_to_dict",
    "taskset_from_dict",
    "partition_to_dict",
    "partition_from_dict",
    "system_to_dict",
    "system_from_dict",
    "allocation_to_dict",
    "allocation_from_dict",
    "save_json",
    "load_json",
    "rows_to_csv",
]


# -- tasks -------------------------------------------------------------------


def task_to_dict(task: RealTimeTask | SecurityTask) -> dict[str, Any]:
    """Serialise one task; the ``type`` key discriminates the kind."""
    if isinstance(task, RealTimeTask):
        return {
            "type": "rt",
            "name": task.name,
            "wcet": task.wcet,
            "period": task.period,
            "deadline": task.deadline,
        }
    if isinstance(task, SecurityTask):
        return {
            "type": "security",
            "name": task.name,
            "wcet": task.wcet,
            "period_des": task.period_des,
            "period_max": task.period_max,
            "weight": task.weight,
            "surface": task.surface,
        }
    raise ValidationError(f"not a task: {task!r}")


def task_from_dict(data: Mapping[str, Any]) -> RealTimeTask | SecurityTask:
    """Inverse of :func:`task_to_dict`."""
    kind = data.get("type")
    if kind == "rt":
        return RealTimeTask(
            name=data["name"],
            wcet=float(data["wcet"]),
            period=float(data["period"]),
            deadline=float(data["deadline"]) if data.get("deadline") else None,
        )
    if kind == "security":
        return SecurityTask(
            name=data["name"],
            wcet=float(data["wcet"]),
            period_des=float(data["period_des"]),
            period_max=float(data["period_max"]),
            weight=float(data.get("weight", 1.0)),
            surface=data.get("surface"),
        )
    raise ValidationError(f"unknown task type {kind!r}")


def taskset_to_dict(tasks: TaskSet) -> dict[str, Any]:
    return {"tasks": [task_to_dict(t) for t in tasks]}


def taskset_from_dict(data: Mapping[str, Any]) -> TaskSet:
    return TaskSet(task_from_dict(d) for d in data["tasks"])


# -- partition / system --------------------------------------------------------


def partition_to_dict(partition: Partition) -> dict[str, Any]:
    return {
        "num_cores": partition.platform.num_cores,
        "tasks": [task_to_dict(t) for t in partition.tasks],
        "core_of": partition.as_mapping(),
    }


def partition_from_dict(data: Mapping[str, Any]) -> Partition:
    platform = Platform(int(data["num_cores"]))
    tasks = TaskSet(task_from_dict(d) for d in data["tasks"])
    return Partition(platform, tasks, dict(data["core_of"]))


def system_to_dict(system: SystemModel) -> dict[str, Any]:
    return {
        "partition": partition_to_dict(system.rt_partition),
        "security_tasks": taskset_to_dict(system.security_tasks),
        "weights": dict(system.weights),
    }


def system_from_dict(data: Mapping[str, Any]) -> SystemModel:
    partition = partition_from_dict(data["partition"])
    return SystemModel(
        platform=partition.platform,
        rt_partition=partition,
        security_tasks=taskset_from_dict(data["security_tasks"]),
        weights=dict(data.get("weights", {})),
    )


# -- allocations ----------------------------------------------------------------


def allocation_to_dict(allocation: Allocation) -> dict[str, Any]:
    return {
        "scheme": allocation.scheme,
        "schedulable": allocation.schedulable,
        "failed_task": allocation.failed_task,
        "assignments": [
            {
                "task": task_to_dict(a.task),
                "core": a.core,
                "period": a.period,
            }
            for a in allocation.assignments
        ],
        "info": {k: _jsonable(v) for k, v in allocation.info.items()},
    }


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of info values to JSON-safe types."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def allocation_from_dict(data: Mapping[str, Any]) -> Allocation:
    assignments = tuple(
        SecurityAssignment(
            task=task_from_dict(entry["task"]),
            core=int(entry["core"]),
            period=float(entry["period"]),
        )
        for entry in data.get("assignments", ())
    )
    return Allocation(
        scheme=data["scheme"],
        schedulable=bool(data["schedulable"]),
        assignments=assignments,
        failed_task=data.get("failed_task"),
        info=dict(data.get("info", {})),
    )


# -- files -----------------------------------------------------------------------


def save_json(obj: Mapping[str, Any], path: str | Path) -> Path:
    """Write a serialised object as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON file written by :func:`save_json`."""
    return json.loads(Path(path).read_text())


def rows_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    path: str | Path,
) -> Path:
    """Export tabular experiment results (e.g. a Fig. 2 panel) as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path
