"""The SingleCore baseline (paper Sec. IV).

An alternative design point: partition the real-time tasks onto ``M−1``
cores and dedicate the remaining core to *all* security tasks.  The
dedicated core sees no real-time interference (the first term of Eq. (5)
vanishes) but low-priority security tasks still interfere with each
other, so periods are adapted sequentially in priority order exactly as
in HYDRA's inner loop — only the core choice disappears.

:func:`build_singlecore_system` prepares the companion
:class:`~repro.model.system.SystemModel`: same platform, real-time tasks
repacked into the first ``M−1`` cores (best-fit, like the paper), last
core left empty.  Returns ``None`` when the real-time set does not fit
on ``M−1`` cores — in the acceptance-ratio experiments that counts as
*unschedulable under SingleCore*.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.interference import InterferenceEnv
from repro.analysis.schedulability import AdmissionTest
from repro.core.allocator import Allocation, Allocator, SecurityAssignment
from repro.errors import AllocationError
from repro.model.platform import Platform
from repro.model.priority import security_priority_order
from repro.model.system import Partition, SystemModel
from repro.model.task import RealTimeTask, SecurityTask, TaskSet
from repro.opt.period import adapt_period, adapt_period_exact
from repro.partition.heuristics import try_partition_tasks

__all__ = ["SingleCoreAllocator", "build_singlecore_system"]


def build_singlecore_system(
    platform: Platform,
    rt_tasks: Iterable[RealTimeTask],
    security_tasks: TaskSet | Iterable[SecurityTask],
    heuristic: str = "best-fit",
    admission: str | AdmissionTest = "rta",
    weights: dict[str, float] | None = None,
    ordering: str = "utilization",
) -> SystemModel | None:
    """Build the SingleCore variant of a system.

    Real-time tasks are packed onto cores ``0 … M−2``; core ``M−1`` is
    reserved for security.  ``None`` when the pack fails (the SingleCore
    scheme cannot host this workload at all).
    """
    if platform.num_cores < 2:
        raise AllocationError(
            "the SingleCore scheme needs at least two cores (one must be "
            "dedicated to security tasks)"
        )
    if not isinstance(security_tasks, TaskSet):
        security_tasks = TaskSet(security_tasks)
    reduced = Platform(platform.num_cores - 1)
    packed = try_partition_tasks(
        rt_tasks, reduced, heuristic=heuristic, admission=admission,
        ordering=ordering,
    )
    if packed is None:
        return None
    partition = Partition(platform, packed.tasks, packed.as_mapping())
    return SystemModel(
        platform=platform,
        rt_partition=partition,
        security_tasks=security_tasks,
        weights=weights or {},
    )


class SingleCoreAllocator(Allocator):
    """Allocate every security task to one dedicated core.

    Parameters
    ----------
    dedicated_core:
        Core index reserved for security tasks.  ``None`` (default)
        auto-detects: the highest-indexed core with no real-time tasks.
    solver:
        ``"closed-form"`` (linearised Eq. (6), the paper) or
        ``"exact-rta"``.
    """

    name = "singlecore"

    def __init__(
        self, dedicated_core: int | None = None, solver: str = "closed-form"
    ) -> None:
        if solver not in ("closed-form", "exact-rta"):
            raise ValueError(f"unknown period solver {solver!r}")
        self.dedicated_core = dedicated_core
        self.solver_name = solver
        self._solve = (
            adapt_period if solver == "closed-form" else adapt_period_exact
        )

    def _resolve_core(self, system: SystemModel) -> int:
        if self.dedicated_core is not None:
            system.platform.validate_core(self.dedicated_core)
            return self.dedicated_core
        for core in reversed(list(system.platform)):
            if not system.rt_partition.tasks_on(core):
                return core
        raise AllocationError(
            "SingleCore needs a core free of real-time tasks; use "
            "build_singlecore_system() to prepare the partition"
        )

    def allocate(self, system: SystemModel) -> Allocation:
        core = self._resolve_core(system)
        rt_on_core = system.rt_partition.tasks_on(core)
        if rt_on_core:
            raise AllocationError(
                f"dedicated core {core} still hosts real-time tasks "
                f"{[t.name for t in rt_on_core]!r}"
            )
        placed: list[tuple[SecurityTask, float]] = []
        assignments: list[SecurityAssignment] = []
        for task in security_priority_order(system.security_tasks):
            env = InterferenceEnv.on_core((), placed)
            solution = self._solve(task, env)
            if solution is None:
                return Allocation(
                    scheme=self.name,
                    schedulable=False,
                    failed_task=task.name,
                )
            placed.append((task, solution.period))
            assignments.append(
                SecurityAssignment(task=task, core=core, period=solution.period)
            )
        return Allocation(
            scheme=self.name,
            schedulable=True,
            assignments=tuple(assignments),
            info={"dedicated_core": core, "solver": self.solver_name},
        )
