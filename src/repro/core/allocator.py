"""Common allocator interface.

The result types (:class:`~repro.model.allocation.SecurityAssignment`,
:class:`~repro.model.allocation.Allocation`,
:class:`~repro.model.allocation.AllocationResult`) live in
:mod:`repro.model.allocation` — they are pure data shared by every
layer; this module keeps re-exporting them so pre-existing imports
(``from repro.core.allocator import Allocation``) stay valid.

What lives *here* is the behavioural contract: the :class:`Allocator`
ABC every allocation scheme in the paper (HYDRA, SingleCore, OPT), every
ablation variant, and every registered strategy
(:mod:`repro.allocators`) implements.
"""

from __future__ import annotations

import abc

from repro.model.allocation import (  # noqa: F401 - compat re-exports
    Allocation,
    AllocationResult,
    SecurityAssignment,
    as_allocation,
)
from repro.model.system import SystemModel

__all__ = [
    "SecurityAssignment",
    "Allocation",
    "AllocationResult",
    "Allocator",
    "as_allocation",
]


class Allocator(abc.ABC):
    """Base class for security-task allocation schemes.

    This is the single strategy protocol of the allocator API: one
    method, ``allocate(system) -> Allocation``, over the shared
    :class:`~repro.model.system.SystemModel` input (which carries the
    :class:`~repro.model.platform.Platform`).  Register implementations
    with :func:`repro.allocators.register_allocator` to make them
    sweepable from TOML grids and the CLI.
    """

    #: Short scheme identifier used in results and reports.
    name: str = "base"

    @abc.abstractmethod
    def allocate(self, system: SystemModel) -> Allocation:
        """Allocate the system's security tasks.

        Must return an :class:`Allocation` (never raise for ordinary
        unschedulability — that outcome is data, not an error).
        """

    def __call__(self, system: SystemModel) -> Allocation:
        return self.allocate(system)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
