"""Designer feedback for unschedulable systems.

Algorithm 1 returns *Unschedulable* when some security task fits no
core, and the paper notes that "this unschedulability result will
provide hints to the designers to update the parameters of security
tasks (and/or the real-time tasks, if possible)".  This module turns
that remark into an API: :func:`diagnose` replays HYDRA up to the
failure point and computes, per remedy, the smallest parameter change
that would let the failing task through:

* **stretch-period-max** — the smallest ``T_max`` under which some core
  accepts the task (with the higher-priority placements HYDRA already
  made);
* **reduce-wcet** — the largest WCET the task could have and still fit
  its current ``T_max`` on the best core;
* **add-core** — whether one extra (empty) core would make the whole
  system schedulable;
* **shed-utilization** — the interferer utilisation the friendliest
  core would need to shed for the task to fit at ``T_max``.

:func:`max_security_scale` answers the dual sizing question — the
largest uniform security-WCET scaling a system tolerates — by bisecting
the allocator's verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.interference import InterferenceEnv
from repro.core.allocator import Allocator
from repro.core.hydra import HydraAllocator
from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.model.task import SecurityTask
from repro.model.transform import (
    scale_security_wcets,
    with_extra_cores,
    with_period_max,
)
from repro.opt.period import adapt_period

__all__ = ["DesignHint", "DesignReport", "diagnose", "max_security_scale"]


@dataclass(frozen=True)
class DesignHint:
    """One actionable remedy for an unschedulable system."""

    kind: str  # stretch-period-max | reduce-wcet | add-core | shed-utilization
    task: str | None
    current: float
    required: float
    description: str


@dataclass(frozen=True)
class DesignReport:
    """Outcome of :func:`diagnose`."""

    schedulable: bool
    failed_task: str | None = None
    hints: tuple[DesignHint, ...] = ()
    #: Interference environment per core at the failure point
    #: (diagnostic detail: (K', U) pairs).
    core_state: dict = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable report."""
        if self.schedulable:
            return "System is schedulable; no design changes needed."
        lines = [f"Unschedulable at security task {self.failed_task!r}."]
        if not self.hints:
            lines.append("No single-parameter remedy found.")
        for hint in self.hints:
            lines.append(f"  - {hint.description}")
        return "\n".join(lines)


def _failure_environments(
    system: SystemModel, failed: SecurityTask
) -> dict[int, InterferenceEnv]:
    """Replay HYDRA's greedy placements up to (excluding) ``failed`` and
    return each core's interference environment at that instant."""
    placed: dict[int, list[tuple[SecurityTask, float]]] = {
        core: [] for core in system.platform
    }
    for task in security_priority_order(system.security_tasks):
        if task.name == failed.name:
            break
        best_core, best = None, None
        for core in system.platform:
            env = InterferenceEnv.on_core(
                system.rt_partition.tasks_on(core), placed[core]
            )
            solution = adapt_period(task, env)
            if solution is not None and (
                best is None or solution.tightness > best.tightness + 1e-12
            ):
                best, best_core = solution, core
        if best is None or best_core is None:
            # An earlier task already fails; environments up to here
            # still describe the failure point faithfully.
            break
        placed[best_core].append((task, best.period))
    return {
        core: InterferenceEnv.on_core(
            system.rt_partition.tasks_on(core), placed[core]
        )
        for core in system.platform
    }


def diagnose(
    system: SystemModel, allocator: Allocator | None = None
) -> DesignReport:
    """Explain an unschedulable system and propose minimal remedies.

    Uses HYDRA by default; any allocator exposing the standard
    interface works for the schedulable/failed-task verdict (the remedy
    arithmetic always follows HYDRA's greedy semantics, which is what
    Algorithm 1's failure means).
    """
    allocator = allocator or HydraAllocator()
    allocation = allocator.allocate(system)
    if allocation.schedulable:
        return DesignReport(schedulable=True)

    failed_name = allocation.failed_task
    failed = system.security_tasks[failed_name]
    environments = _failure_environments(system, failed)
    hints: list[DesignHint] = []

    # Remedy 1: stretch T_max to the smallest feasible period anywhere.
    # Security priority is T_max-ascending, so the stretch itself can
    # demote the task past peers whose T_max lies inside the stretch —
    # those peers then place *before* it and eat the capacity the first
    # estimate assumed was free.  Iterate to a fixed point: recompute
    # the requirement with the task at the priority position its new
    # T_max implies, until the estimate stops moving (each round can
    # only demote further, so at most one round per security task).
    def _requirement(envs) -> float:
        return min(
            (
                max(
                    failed.period_des,
                    (failed.wcet + env.total_wcet)
                    / (1.0 - env.utilization),
                )
                for env in envs.values()
                if env.utilization < 1.0
            ),
            default=math.inf,
        )

    best_period = _requirement(environments)
    for _ in range(len(system.security_tasks)):
        if not math.isfinite(best_period):
            break
        stretched = with_period_max(system, failed.name, best_period)
        stretched_requirement = _requirement(
            _failure_environments(
                stretched, stretched.security_tasks[failed.name]
            )
        )
        if stretched_requirement <= best_period * (1.0 + 1e-12):
            break
        best_period = stretched_requirement
    if math.isfinite(best_period):
        hints.append(
            DesignHint(
                kind="stretch-period-max",
                task=failed.name,
                current=failed.period_max,
                required=best_period,
                description=(
                    f"raise T_max of {failed.name!r} from "
                    f"{failed.period_max:.1f} to ≥ {best_period:.1f} "
                    f"(monitoring tightness would drop to "
                    f"{failed.period_des / best_period:.3f})"
                ),
            )
        )

    # Remedy 2: shrink the task's WCET until its current T_max works on
    # the friendliest core: C ≤ (1−U)·T_max − K'.
    best_wcet = max(
        (
            (1.0 - env.utilization) * failed.period_max - env.total_wcet
            for env in environments.values()
            if env.utilization < 1.0
        ),
        default=-math.inf,
    )
    if best_wcet > 0.0 and best_wcet < failed.wcet:
        hints.append(
            DesignHint(
                kind="reduce-wcet",
                task=failed.name,
                current=failed.wcet,
                required=best_wcet,
                description=(
                    f"reduce the WCET of {failed.name!r} from "
                    f"{failed.wcet:.1f} to ≤ {best_wcet:.1f} "
                    f"(e.g. split the check or sample fewer objects)"
                ),
            )
        )

    # Remedy 3: an additional core.
    extra = allocator.allocate(with_extra_cores(system))
    if extra.schedulable:
        hints.append(
            DesignHint(
                kind="add-core",
                task=None,
                current=float(system.platform.num_cores),
                required=float(system.platform.num_cores + 1),
                description=(
                    f"one additional core makes the whole system "
                    f"schedulable ({system.platform.num_cores} → "
                    f"{system.platform.num_cores + 1} cores)"
                ),
            )
        )

    # Remedy 4: utilisation the friendliest core must shed so the task
    # fits at T_max: need U ≤ 1 − (C + K')/T_max.
    shed_candidates = []
    for env in environments.values():
        target = 1.0 - (failed.wcet + env.total_wcet) / failed.period_max
        if target >= 0.0:
            shed_candidates.append(env.utilization - target)
    if shed_candidates:
        shed = min(shed_candidates)
        if shed > 0.0:
            hints.append(
                DesignHint(
                    kind="shed-utilization",
                    task=failed.name,
                    current=shed,
                    required=0.0,
                    description=(
                        f"free ≥ {shed:.3f} utilisation on the least-"
                        f"loaded core (move or slow a real-time or "
                        f"higher-priority security task)"
                    ),
                )
            )

    return DesignReport(
        schedulable=False,
        failed_task=failed.name,
        hints=tuple(hints),
        core_state={
            core: (env.total_wcet, env.utilization)
            for core, env in environments.items()
        },
    )


def max_security_scale(
    system: SystemModel,
    allocator: Allocator | None = None,
    tolerance: float = 1e-3,
    upper: float = 64.0,
) -> float:
    """Largest uniform security-WCET scaling the system tolerates.

    The sizing counterpart of classic breakdown utilisation: bisects the
    allocator's schedulable/unschedulable verdict over a multiplicative
    factor applied to every security WCET.  Returns 0 when even a
    vanishing security load fails, and ``upper`` when the search cap is
    schedulable.
    """
    allocator = allocator or HydraAllocator()

    def scaled_ok(scale: float) -> bool:
        from repro.errors import ValidationError

        try:
            candidate = scale_security_wcets(system, scale)
        except ValidationError:
            return False  # scaling pushed some WCET past its T_des
        return allocator.allocate(candidate).schedulable

    if not scaled_ok(tolerance):
        return 0.0
    if scaled_ok(upper):
        return upper
    low, high = tolerance, upper
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if scaled_ok(mid):
            low = mid
        else:
            high = mid
    return low
