"""HYDRA — the paper's Algorithm 1.

Iterate over the security tasks from highest to lowest priority; for the
current task, solve the period-adaptation problem of Eq. (7) on *every*
core against that core's real-time tasks plus the higher-priority
security tasks already committed there; assign the task to the core with
the maximum achievable tightness (``argmax η``, ties broken towards the
lowest core index for determinism) and freeze its period.  If no core is
feasible, the whole task set is declared unschedulable — the algorithm
does not backtrack.

The inner solve is pluggable:

* ``"closed-form"`` (default) — the analytical optimum of Eq. (7).
* ``"gp"`` — the paper's geometric-program route through
  :mod:`repro.opt.gp` (same optimum, exercises the interior-point path).
* ``"exact-rta"`` — exact response-time analysis instead of the
  linearised Eq. (5) (extension; strictly more permissive).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.interference import InterferenceEnv
from repro.core.allocator import Allocation, Allocator, SecurityAssignment
from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.model.task import SecurityTask
from repro.opt.period import PeriodSolution, adapt_period, adapt_period_exact
from repro.opt.period_gp import adapt_period_gp

__all__ = ["HydraAllocator", "PERIOD_SOLVERS"]

#: Available inner period solvers, name → callable.
PERIOD_SOLVERS: dict[
    str, Callable[[SecurityTask, InterferenceEnv], PeriodSolution | None]
] = {
    "closed-form": adapt_period,
    "gp": adapt_period_gp,
    "exact-rta": adapt_period_exact,
}


class HydraAllocator(Allocator):
    """The HYDRA design-space exploration algorithm (Algorithm 1)."""

    name = "hydra"

    def __init__(self, solver: str = "closed-form") -> None:
        if solver not in PERIOD_SOLVERS:
            raise ValueError(
                f"unknown period solver {solver!r}; expected one of "
                f"{sorted(PERIOD_SOLVERS)}"
            )
        self.solver_name = solver
        self._solve = PERIOD_SOLVERS[solver]
        if solver != "closed-form":
            self.name = f"hydra[{solver}]"

    def allocate(self, system: SystemModel) -> Allocation:
        ordered = security_priority_order(system.security_tasks)
        # Security tasks already committed per core, with frozen periods.
        placed: dict[int, list[tuple[SecurityTask, float]]] = {
            core: [] for core in system.platform
        }
        assignments: list[SecurityAssignment] = []

        for task in ordered:
            best_core: int | None = None
            best: PeriodSolution | None = None
            for core in system.platform:
                env = InterferenceEnv.on_core(
                    system.rt_partition.tasks_on(core), placed[core]
                )
                candidate = self._solve(task, env)
                if candidate is None:
                    continue
                if best is None or candidate.tightness > best.tightness + 1e-12:
                    best, best_core = candidate, core
            if best is None or best_core is None:
                # Algorithm 1 line 9: no suitable period on any core.
                return Allocation(
                    scheme=self.name,
                    schedulable=False,
                    failed_task=task.name,
                )
            placed[best_core].append((task, best.period))
            assignments.append(
                SecurityAssignment(
                    task=task, core=best_core, period=best.period
                )
            )

        return Allocation(
            scheme=self.name,
            schedulable=True,
            assignments=tuple(assignments),
            info={"solver": self.solver_name},
        )
