"""Independent verification of allocations.

Allocators are trusted nowhere in this package: this module re-derives,
from first principles, whether an :class:`~repro.core.allocator.Allocation`
is actually valid for a system — coverage, period bounds, and the
schedulability constraint (linearised Eq. (6) by default, exact RTA on
request) for every security task given everything above it on its core.
Used by the test-suite as an oracle over all allocators and available to
users who load allocations from disk (:mod:`repro.io`) or produce them
with external tools.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.blocking import rt_schedulable_with_blocking
from repro.analysis.interference import InterferenceEnv
from repro.analysis.rta import response_time
from repro.core.allocator import Allocation
from repro.model.priority import security_priority_order
from repro.model.system import SystemModel

__all__ = ["Violation", "VerificationResult", "verify_allocation"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken requirement found by the verifier."""

    kind: str  # coverage | core | period-bounds | schedulability | blocking
    task: str | None
    detail: str


@dataclass(frozen=True)
class VerificationResult:
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        if self.ok:
            return "allocation verified: all constraints hold"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(
            f"  [{v.kind}] {v.task or '-'}: {v.detail}"
            for v in self.violations
        )
        return "\n".join(lines)


def verify_allocation(
    system: SystemModel,
    allocation: Allocation,
    exact: bool = False,
    non_preemptive: bool = False,
) -> VerificationResult:
    """Check every requirement the paper places on an allocation.

    Parameters
    ----------
    system, allocation:
        The system and the allocation to audit.
    exact:
        Verify schedulability with exact RTA instead of the (stricter)
        linearised Eq. (6).  An allocation valid under Eq. (6) is always
        valid under RTA, not vice versa.
    non_preemptive:
        Additionally require every core's real-time tasks to tolerate a
        blocking term equal to the largest security WCET placed there
        (the §V non-preemptive execution model).
    """
    violations: list[Violation] = []
    if not allocation.schedulable:
        violations.append(
            Violation(
                kind="coverage",
                task=allocation.failed_task,
                detail="allocation is marked unschedulable",
            )
        )
        return VerificationResult(tuple(violations))

    expected = set(system.security_tasks.names)
    actual = {a.task.name for a in allocation.assignments}
    for missing in sorted(expected - actual):
        violations.append(
            Violation(
                kind="coverage", task=missing,
                detail="security task has no assignment",
            )
        )
    for extra in sorted(actual - expected):
        violations.append(
            Violation(
                kind="coverage", task=extra,
                detail="assignment for a task not in the system",
            )
        )
    if len(allocation.assignments) != len(actual):
        violations.append(
            Violation(
                kind="coverage", task=None,
                detail="duplicate assignments present",
            )
        )

    for assignment in allocation.assignments:
        if assignment.core not in system.platform:
            violations.append(
                Violation(
                    kind="core",
                    task=assignment.task.name,
                    detail=f"core {assignment.core} does not exist",
                )
            )
        task = assignment.task
        if not (
            task.period_des - 1e-9
            <= assignment.period
            <= task.period_max + 1e-9
        ):
            violations.append(
                Violation(
                    kind="period-bounds",
                    task=task.name,
                    detail=(
                        f"period {assignment.period} outside "
                        f"[{task.period_des}, {task.period_max}]"
                    ),
                )
            )

    if violations:
        return VerificationResult(tuple(violations))

    # Schedulability per core, in security priority order.
    periods = allocation.periods()
    cores = allocation.cores()
    ordered = security_priority_order(system.security_tasks)
    for core in system.platform:
        rt_tasks = system.rt_partition.tasks_on(core)
        hp: list = []
        for task in ordered:
            if cores[task.name] != core:
                continue
            period = periods[task.name]
            env = InterferenceEnv.on_core(rt_tasks, hp)
            if exact:
                fine = (
                    response_time(task.wcet, env.interferers, limit=period)
                    <= period + 1e-6
                )
            else:
                fine = task.wcet + env.interference(period) <= period + 1e-6
            if not fine:
                violations.append(
                    Violation(
                        kind="schedulability",
                        task=task.name,
                        detail=(
                            f"misses its implicit deadline on core {core} "
                            f"at period {period:.3f}"
                        ),
                    )
                )
            hp.append((task, period))
        if non_preemptive:
            security_wcets = [
                a.task.wcet
                for a in allocation.assignments
                if a.core == core
            ]
            blocking = max(security_wcets, default=0.0)
            if blocking > 0 and not rt_schedulable_with_blocking(
                list(rt_tasks), blocking
            ):
                violations.append(
                    Violation(
                        kind="blocking",
                        task=None,
                        detail=(
                            f"core {core}: real-time tasks cannot absorb "
                            f"{blocking:.3f} of non-preemptive blocking"
                        ),
                    )
                )

    return VerificationResult(tuple(violations))
