"""Security-task allocation schemes — the paper's core contribution.

* :class:`~repro.core.hydra.HydraAllocator` — Algorithm 1.
* :class:`~repro.core.singlecore.SingleCoreAllocator` — the dedicated-
  core baseline (plus :func:`~repro.core.singlecore.build_singlecore_system`).
* :class:`~repro.core.optimal.OptimalAllocator` — the exhaustive /
  branch-and-bound optimum.
* Ablation variants in :mod:`repro.core.variants`.
"""

from repro.core.advice import (
    DesignHint,
    DesignReport,
    diagnose,
    max_security_scale,
)
from repro.core.allocator import (
    Allocation,
    AllocationResult,
    Allocator,
    SecurityAssignment,
    as_allocation,
)
from repro.core.hydra import PERIOD_SOLVERS, HydraAllocator
from repro.core.nonpreemptive import NonPreemptiveHydraAllocator
from repro.core.optimal import OptimalAllocator
from repro.core.singlecore import SingleCoreAllocator, build_singlecore_system
from repro.core.verify import (
    VerificationResult,
    Violation,
    verify_allocation,
)
from repro.core.variants import (
    FirstFeasibleAllocator,
    LpRefinedHydraAllocator,
    SlackiestCoreAllocator,
)

__all__ = [
    "Allocation",
    "AllocationResult",
    "Allocator",
    "SecurityAssignment",
    "as_allocation",
    "HydraAllocator",
    "PERIOD_SOLVERS",
    "SingleCoreAllocator",
    "build_singlecore_system",
    "OptimalAllocator",
    "NonPreemptiveHydraAllocator",
    "FirstFeasibleAllocator",
    "SlackiestCoreAllocator",
    "LpRefinedHydraAllocator",
    "DesignHint",
    "DesignReport",
    "diagnose",
    "max_security_scale",
    "Violation",
    "VerificationResult",
    "verify_allocation",
]
