"""Blocking-aware HYDRA for non-preemptive security tasks (§V).

The plain HYDRA allocation is unsound when security tasks execute
non-preemptively: the extension ablation shows real-time tasks missing
thousands of deadlines from blocking.  This allocator restores the
"never perturb the real-time tasks" contract:

* a core is only a candidate for a security task if every real-time
  task on it remains schedulable under a blocking term equal to the
  *largest* non-preemptive security WCET that would then live there
  (:mod:`repro.analysis.blocking`);
* among the surviving cores, the usual Eq. (7) period adaptation and
  argmax-tightness rule apply unchanged.

The per-core blocking budget is precomputed once
(:func:`repro.analysis.blocking.max_tolerable_blocking`), so the filter
is a constant-time comparison per (task, core).
"""

from __future__ import annotations

from repro.analysis.blocking import max_tolerable_blocking
from repro.analysis.interference import InterferenceEnv
from repro.core.allocator import Allocation, Allocator, SecurityAssignment
from repro.core.hydra import PERIOD_SOLVERS
from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.model.task import SecurityTask
from repro.opt.period import PeriodSolution

__all__ = ["NonPreemptiveHydraAllocator"]


class NonPreemptiveHydraAllocator(Allocator):
    """HYDRA variant that keeps real-time tasks safe under
    non-preemptive security execution."""

    name = "hydra[np]"

    def __init__(self, solver: str = "closed-form") -> None:
        if solver not in PERIOD_SOLVERS:
            raise ValueError(f"unknown period solver {solver!r}")
        self.solver_name = solver
        self._solve = PERIOD_SOLVERS[solver]

    def allocate(self, system: SystemModel) -> Allocation:
        budgets = {
            core: max_tolerable_blocking(system.rt_partition.tasks_on(core))
            for core in system.platform
        }
        placed: dict[int, list[tuple[SecurityTask, float]]] = {
            core: [] for core in system.platform
        }
        assignments: list[SecurityAssignment] = []

        for task in security_priority_order(system.security_tasks):
            best_core: int | None = None
            best: PeriodSolution | None = None
            for core in system.platform:
                if task.wcet > budgets[core] + 1e-12:
                    continue  # would block some RT task past its deadline
                env = InterferenceEnv.on_core(
                    system.rt_partition.tasks_on(core), placed[core]
                )
                candidate = self._solve(task, env)
                if candidate is None:
                    continue
                if best is None or candidate.tightness > best.tightness + 1e-12:
                    best, best_core = candidate, core
            if best is None or best_core is None:
                return Allocation(
                    scheme=self.name,
                    schedulable=False,
                    failed_task=task.name,
                )
            placed[best_core].append((task, best.period))
            assignments.append(
                SecurityAssignment(task=task, core=best_core,
                                   period=best.period)
            )

        return Allocation(
            scheme=self.name,
            schedulable=True,
            assignments=tuple(assignments),
            info={
                "solver": self.solver_name,
                "blocking_budgets": dict(budgets),
            },
        )
