"""The OPT baseline: tightness-optimal assignment (paper Sec. IV-B.2).

Wraps the exhaustive ``M^NS`` enumeration (or the branch-and-bound
extension) behind the common :class:`~repro.core.allocator.Allocator`
interface so experiments can swap it in anywhere HYDRA fits.  Each
enumerated assignment is scored by the joint period LP, which maximises
the cumulative weighted tightness exactly (DESIGN §2.2).
"""

from __future__ import annotations

from repro.core.allocator import Allocation, Allocator, as_allocation
from repro.model.system import SystemModel
from repro.opt.branch_bound import branch_bound_optimal
from repro.opt.exhaustive import exhaustive_optimal

__all__ = ["OptimalAllocator"]


class OptimalAllocator(Allocator):
    """Exact design-space search over every task→core assignment.

    Parameters
    ----------
    search:
        ``"exhaustive"`` (the paper's method) or ``"branch-bound"``
        (extension; provably the same optimum, usually far fewer LP
        solves).
    backend:
        LP backend, ``"simplex"`` (built-in) or ``"scipy"``.
    """

    name = "optimal"

    def __init__(
        self, search: str = "exhaustive", backend: str = "simplex"
    ) -> None:
        if search not in ("exhaustive", "branch-bound"):
            raise ValueError(
                f"unknown search {search!r}; expected 'exhaustive' or "
                f"'branch-bound'"
            )
        self.search = search
        self.backend = backend
        if search != "exhaustive":
            self.name = f"optimal[{search}]"

    def allocate(self, system: SystemModel) -> Allocation:
        if self.search == "exhaustive":
            result = exhaustive_optimal(system, backend=self.backend)
            stats: dict[str, object] = {}
        else:
            result, bnb = branch_bound_optimal(system, backend=self.backend)
            stats = {
                "nodes": bnb.nodes,
                "pruned_infeasible": bnb.pruned_infeasible,
                "pruned_bound": bnb.pruned_bound,
            }
        if result is None:
            return Allocation(
                scheme=self.name, schedulable=False, failed_task=None
            )
        info = {
            "explored": result.explored,
            "pruned": result.pruned,
            "tightness": result.tightness,
            **stats,
        }
        return as_allocation(
            self.name, system, result.assignment, result.periods, info=info
        )
