"""Ablation variants of HYDRA for the design-space exploration benches.

HYDRA makes two greedy choices per task: *which core* (argmax tightness)
and *which period* (minimum feasible).  Each variant perturbs exactly one
of those choices so the ablation benches can attribute HYDRA's behaviour:

* :class:`FirstFeasibleAllocator` — take the first feasible core instead
  of the tightness-maximising one (cheapest possible core choice).
* :class:`SlackiestCoreAllocator` — take the feasible core with the most
  remaining utilisation slack (a worst-fit flavour that spreads the
  security load).
* :class:`LpRefinedHydraAllocator` — keep HYDRA's assignment but re-solve
  all periods jointly with the LP, recovering tightness the sequential
  greedy gives away (upper-bounds what smarter period choices could buy
  *without* changing the assignment).
"""

from __future__ import annotations

from repro.analysis.interference import InterferenceEnv
from repro.core.allocator import Allocation, Allocator, SecurityAssignment
from repro.core.hydra import PERIOD_SOLVERS, HydraAllocator
from repro.model.priority import security_priority_order
from repro.model.system import SystemModel
from repro.model.task import SecurityTask
from repro.opt.joint import solve_assignment_lp
from repro.opt.period import PeriodSolution

__all__ = [
    "FirstFeasibleAllocator",
    "SlackiestCoreAllocator",
    "LpRefinedHydraAllocator",
]


class _GreedyCoreAllocator(Allocator):
    """Shared HYDRA-style loop with a pluggable core-selection rule."""

    name = "greedy-base"

    def __init__(self, solver: str = "closed-form") -> None:
        if solver not in PERIOD_SOLVERS:
            raise ValueError(f"unknown period solver {solver!r}")
        self.solver_name = solver
        self._solve = PERIOD_SOLVERS[solver]

    def _choose(
        self,
        candidates: list[tuple[int, PeriodSolution, InterferenceEnv]],
    ) -> tuple[int, PeriodSolution] | None:
        """Pick ``(core, solution)`` from the non-empty feasible list —
        or ``None`` when the rule rejects every candidate (e.g. a
        next-fit pointer that never looks back)."""
        raise NotImplementedError

    def allocate(self, system: SystemModel) -> Allocation:
        placed: dict[int, list[tuple[SecurityTask, float]]] = {
            core: [] for core in system.platform
        }
        assignments: list[SecurityAssignment] = []
        for task in security_priority_order(system.security_tasks):
            candidates: list[tuple[int, PeriodSolution, InterferenceEnv]] = []
            for core in system.platform:
                env = InterferenceEnv.on_core(
                    system.rt_partition.tasks_on(core), placed[core]
                )
                solution = self._solve(task, env)
                if solution is not None:
                    candidates.append((core, solution, env))
            if not candidates:
                return Allocation(
                    scheme=self.name, schedulable=False, failed_task=task.name
                )
            choice = self._choose(candidates)
            if choice is None:
                return Allocation(
                    scheme=self.name, schedulable=False, failed_task=task.name
                )
            core, solution = choice
            placed[core].append((task, solution.period))
            assignments.append(
                SecurityAssignment(task=task, core=core, period=solution.period)
            )
        return Allocation(
            scheme=self.name,
            schedulable=True,
            assignments=tuple(assignments),
            info={"solver": self.solver_name},
        )


class FirstFeasibleAllocator(_GreedyCoreAllocator):
    """Assign each security task to the lowest-indexed feasible core."""

    name = "first-feasible"

    def _choose(self, candidates):
        return candidates[0][0], candidates[0][1]


class SlackiestCoreAllocator(_GreedyCoreAllocator):
    """Assign each security task to the feasible core with the most
    remaining utilisation slack (worst-fit for security load)."""

    name = "slackiest-core"

    def _choose(self, candidates):
        def slack(entry) -> float:
            core, solution, env = entry
            # env.utilization already includes RT + placed security load.
            return 1.0 - env.utilization
        best = max(candidates, key=lambda e: (slack(e), -e[0]))
        return best[0], best[1]


class LpRefinedHydraAllocator(Allocator):
    """HYDRA's assignment + joint LP period refinement (extension).

    The greedy period choice is lexicographic: each task takes the
    smallest feasible period even when that starves lower-priority tasks.
    Re-solving the periods jointly (the assignment kept fixed) maximises
    the cumulative weighted tightness achievable for HYDRA's own
    assignment; by construction it is never worse.
    """

    name = "hydra+lp"

    def __init__(self, solver: str = "closed-form", backend: str = "simplex"):
        self._hydra = HydraAllocator(solver=solver)
        self.backend = backend

    def allocate(self, system: SystemModel) -> Allocation:
        base = self._hydra.allocate(system)
        if not base.schedulable:
            return Allocation(
                scheme=self.name,
                schedulable=False,
                failed_task=base.failed_task,
            )
        refined = solve_assignment_lp(
            system, base.cores(), backend=self.backend
        )
        if refined is None:  # pragma: no cover - feasible stays feasible
            return base
        assignments = tuple(
            SecurityAssignment(
                task=a.task, core=a.core, period=refined.periods[a.task.name]
            )
            for a in base.assignments
        )
        return Allocation(
            scheme=self.name,
            schedulable=True,
            assignments=assignments,
            info={
                "greedy_tightness": base.cumulative_tightness(),
                "refined_tightness": refined.tightness,
            },
        )
