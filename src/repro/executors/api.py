"""The executor protocol: *where* sweep points run, behind one surface.

The :class:`~repro.experiments.parallel.SweepEngine` decides *which*
points of a :class:`~repro.experiments.parallel.SweepSpec` must be
computed (cache misses, cancellation batches); an :class:`Executor`
decides *where* those computations happen — in-process, over the
process-wide fork pool, or across long-lived worker subprocesses
speaking a newline-delimited-JSON task protocol.  Because every point
is deterministic (its SeedSequence stream depends only on the spec and
the point index) and every payload is plain JSON, executors are
interchangeable: any registered backend must produce byte-identical
results, which the golden fixtures and the CI smoke pin.

Executors self-register with
:func:`~repro.executors.registry.register_executor` exactly like
allocators and workloads do; ``python -m repro executors``
lists/describes them and ``--executor NAME`` selects one per run.

The unit of work is deliberately *the sweep point*, not an arbitrary
callable: a point is addressed by ``(spec, index)`` and both halves
serialise to plain JSON, so the same protocol works for an in-process
loop, a pickled pool call, a subprocess line protocol — and, later, a
multi-host transport — without executors ever needing to ship code.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepSpec

__all__ = ["Executor"]


class Executor(ABC):
    """One execution backend for sweep points.

    Contract
    --------
    * :meth:`run_points` computes the given point indices of one spec
      and returns ``(index, payload)`` pairs **in the requested
      order**, with each payload equal — as a JSON value — to what
      :func:`repro.experiments.parallel.execute_point` returns for
      that index.  Determinism makes retries safe: running a point
      twice yields the same payload.
    * Executors never touch the result store; the engine persists
      payloads from the submitting process, so cache behaviour is
      identical across backends.
    * :meth:`close` releases any long-lived resources (worker
      processes, sockets) and is idempotent; a closed executor may
      lazily re-acquire them if used again, mirroring
      :class:`~repro.experiments.pool.WorkerPool`.
    """

    #: Registry spec of the backend (set by the concrete class).
    name: str = ""

    #: Requested fan-out (1 means serial); informational for backends
    #: that have no workers at all.
    workers: int = 1

    @abstractmethod
    def run_points(
        self, spec: "SweepSpec", indices: Sequence[int]
    ) -> list[tuple[int, dict[str, Any]]]:
        """Compute ``indices`` of ``spec``; ordered ``(index, payload)``."""

    def close(self) -> None:
        """Release long-lived resources (idempotent; default: none)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"workers={self.workers})"
        )
