"""Worker-side half of the ``subprocess-workers`` executor.

Run as ``python -m repro.executors.worker`` by
:class:`~repro.executors.subproc.SubprocessExecutor`; never started by
hand.  The protocol is newline-delimited JSON — one object per line,
stdin for commands, stdout for replies — chosen because it is
stdlib-only, human-debuggable (``tee`` the streams), and identical to
what a localhost-TCP or SSH transport would carry:

Parent → worker
    ``{"op": "sweep", "sid": n, "spec": {...}}``
        Cache sweep ``n``'s :class:`~repro.experiments.parallel.
        SweepSpec` (sent once per sweep per worker; re-sent after a
        respawn).
    ``{"op": "task", "id": t, "sid": n, "index": i}``
        Compute point ``i`` of sweep ``n``.
    ``{"op": "ping", "id": t}``
        Liveness probe; answered immediately.
    ``{"op": "shutdown"}``
        Exit cleanly.

Worker → parent
    ``{"op": "ready", "pid": p}``
        Startup complete (preloads imported), ready for tasks.
    ``{"op": "heartbeat", "pid": p}``
        Emitted every ``--heartbeat-interval`` seconds from a
        background thread — *also while a task is computing*, which is
        what lets the parent tell "slow task" from "dead worker".
    ``{"op": "result", "id": t, "index": i, "payload": {...}}``
        The point's JSON payload (byte-identical to in-process
        execution: payloads are plain JSON, and JSON round-trips are
        exact).
    ``{"op": "error", "id": t, "index": i, "type": T, "message": M}``
        The point runner raised ``T`` — a *task* failure, which the
        parent surfaces typed instead of retrying (deterministic
        points fail deterministically).
    ``{"op": "pong", "id": t}``
        Ping reply.

``--preload MODULE`` (repeatable) imports modules before signalling
ready — how plugin point runners registered outside
:mod:`repro.experiments.parallel`'s built-in modules become resolvable
inside workers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from typing import Any, TextIO

__all__ = ["main"]


class _Emitter:
    """Serialised line writer: the heartbeat thread and the task loop
    share one stdout, so every line is written (and flushed) whole."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def send(self, message: dict[str, Any]) -> None:
        line = json.dumps(message, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


def _heartbeat_loop(
    emit: _Emitter, interval: float, stop: threading.Event
) -> None:
    pid = os.getpid()
    while not stop.wait(interval):
        try:
            emit.send({"op": "heartbeat", "pid": pid})
        except (OSError, ValueError):  # parent gone / stream closed
            return


def _run_task(
    emit: _Emitter,
    specs: dict[int, Any],
    message: dict[str, Any],
) -> None:
    from repro.experiments.parallel import execute_point

    task_id = message.get("id")
    index = int(message["index"])
    try:
        spec = specs[int(message["sid"])]
        payload = execute_point(spec, index)
    except BaseException as exc:  # noqa: BLE001 - reported, not hidden
        emit.send(
            {
                "op": "error",
                "id": task_id,
                "index": index,
                "type": type(exc).__name__,
                "message": " ".join(str(exc).split()),
            }
        )
        return
    emit.send(
        {"op": "result", "id": task_id, "index": index, "payload": payload}
    )


def main(argv: list[str] | None = None) -> int:
    """The worker loop: read commands, emit replies, until shutdown/EOF."""
    parser = argparse.ArgumentParser(prog="repro-executor-worker")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0)
    parser.add_argument(
        "--preload", action="append", default=[], metavar="MODULE"
    )
    args = parser.parse_args(argv)

    from importlib import import_module

    for module in args.preload:
        import_module(module)

    from repro.experiments.parallel import SweepSpec

    emit = _Emitter(sys.stdout)
    stop = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop,
        args=(emit, max(0.05, args.heartbeat_interval), stop),
        name="repro-worker-heartbeat",
        daemon=True,
    )
    heartbeat.start()
    emit.send({"op": "ready", "pid": os.getpid()})

    specs: dict[int, SweepSpec] = {}
    try:
        for line in sys.stdin:
            if not line.strip():
                continue
            try:
                message = json.loads(line)
                op = message["op"]
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # torn/foreign line: the parent retries elsewhere
            if op == "shutdown":
                break
            if op == "sweep":
                specs[int(message["sid"])] = SweepSpec.from_dict(
                    message["spec"]
                )
            elif op == "task":
                _run_task(emit, specs, message)
            elif op == "ping":
                emit.send({"op": "pong", "id": message.get("id")})
    finally:
        stop.set()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
