"""The executor registry: one decorator turns a backend into a plugin.

Mirrors :mod:`repro.allocators.registry` and
:mod:`repro.workloads.registry`: backends self-register with
:func:`register_executor` ::

    @register_executor(
        "my-backend",
        title="My backend in one line",
        tags=("extension",),
    )
    def make_my_backend(workers=None):
        return MyExecutor(workers)

and every consumer — ``SweepEngine(executor=...)``, the CLI's
``--executor`` flag, ``POST /jobs`` submissions carrying an
``executor`` key, ``python -m repro executors`` — resolves backends
through this table.  Factories take the requested worker count
(``None`` means "backend default") and return a ready
:class:`~repro.executors.api.Executor`.

Choosing an executor can never change a result byte — backends are
required to be payload-identical — so executor names deliberately do
not participate in cache keys or job ids, exactly like worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigError
from repro.executors.api import Executor

__all__ = [
    "ExecutorInfo",
    "UnknownExecutorError",
    "register_executor",
    "unregister_executor",
    "get_executor",
    "get_executor_info",
    "executor_names",
    "iter_executor_info",
]


class UnknownExecutorError(ConfigError):
    """Raised when a spec resolves to no registered executor."""


#: ``factory(workers) -> Executor`` — ``workers=None`` means default.
ExecutorFactory = Callable[..., Executor]


@dataclass(frozen=True)
class ExecutorInfo:
    """Registry metadata of one execution backend.

    Attributes
    ----------
    name:
        Registry spec — what ``--executor`` and job submissions accept.
    title:
        One-line human title (``python -m repro executors`` shows it).
    description:
        How the backend runs points and what knobs it honours.
    tags:
        Free-form labels (``"local"``, ``"distributed"`` …).
    factory:
        ``factory(workers=None)`` producing a ready :class:`Executor`.
    """

    name: str
    title: str
    description: str = ""
    tags: tuple[str, ...] = ()
    factory: ExecutorFactory = field(repr=False, default=None)  # type: ignore[assignment]

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
        }


#: spec → registered backend metadata (registration order preserved).
_REGISTRY: dict[str, ExecutorInfo] = {}


_builtins_loaded = False


def _ensure_builtin_executors() -> None:
    # The flag flips *before* the imports: the built-ins call
    # register_executor during their own import, which lands back here.
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from importlib import import_module

    import_module("repro.executors.builtin")
    import_module("repro.executors.subproc")


def register_executor(
    name: str,
    *,
    title: str = "",
    description: str = "",
    tags: tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[ExecutorFactory], ExecutorFactory]:
    """Factory decorator registering a backend under ``name``.

    Registering a taken spec raises unless ``replace=True`` (plugins
    overriding a built-in must say so explicitly).
    """

    def decorate(factory: ExecutorFactory) -> ExecutorFactory:
        # No built-in preload here: the built-ins register through this
        # very decorator during _ensure_builtin_executors().  A plugin
        # claiming a built-in name early still collides — the built-in
        # import raises at the first registry lookup.
        if not name:
            raise ConfigError("executor needs a non-empty registry name")
        if name in _REGISTRY and not replace:
            raise ConfigError(
                f"executor {name!r} already registered; pass "
                f"replace=True to override"
            )
        _REGISTRY[name] = ExecutorInfo(
            name=name,
            title=title or getattr(factory, "__doc__", "") or name,
            description=description,
            tags=tuple(tags),
            factory=factory,
        )
        return factory

    return decorate


def unregister_executor(name: str) -> None:
    """Remove ``name`` from the registry (test/plugin hygiene helper)."""
    _REGISTRY.pop(name, None)


def get_executor_info(spec: str) -> ExecutorInfo:
    """The registry entry for ``spec``.

    Raises :class:`UnknownExecutorError` naming every known spec — the
    CLI and the job service turn this into a helpful hint.
    """
    _ensure_builtin_executors()
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise UnknownExecutorError(
            f"unknown executor {spec!r}; known executors: "
            f"{', '.join(sorted(_REGISTRY))} "
            f"(see 'python -m repro executors')"
        ) from None


def get_executor(spec: str, workers: int | None = None) -> Executor:
    """Instantiate the backend registered under ``spec``.

    ``workers`` is the requested fan-out (``None`` → backend default);
    serial backends may ignore it.
    """
    executor = get_executor_info(spec).factory(workers=workers)
    if not isinstance(executor, Executor):
        raise ConfigError(
            f"executor factory {spec!r} returned "
            f"{type(executor).__name__}, not an Executor"
        )
    return executor


def executor_names() -> list[str]:
    """Every registered spec, in registration order."""
    _ensure_builtin_executors()
    return list(_REGISTRY)


def iter_executor_info() -> Iterator[ExecutorInfo]:
    """Registry entries of every backend, in registration order."""
    _ensure_builtin_executors()
    yield from _REGISTRY.values()
