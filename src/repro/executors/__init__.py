"""Pluggable sweep execution backends.

An :class:`Executor` turns ``(spec, indices)`` into ordered
``(index, payload)`` pairs; *how* — in-process, a fork pool, worker
subprocesses, one day another host — is the backend's business.  The
engine persists the payloads, so every backend shares one correctness
bar: byte-identical payloads to :func:`~repro.experiments.parallel.
execute_point` (executor choice can never change a result, which is
also why executor names stay out of cache keys and job ids).

Backends self-register with :func:`register_executor` and are resolved
by name everywhere an executor is accepted: ``SweepEngine(executor=
...)``, the CLI's ``--executor`` flag, job submissions, and the
``python -m repro executors`` listing.

Built-ins:

``serial``
    In-process, in-order — the golden reference.
``pool``
    The process-wide persistent :class:`~repro.experiments.pool.
    WorkerPool` (the engine's historic ``workers=N`` path).
``subprocess-workers``
    Long-lived worker subprocesses speaking newline-delimited JSON,
    with heartbeats, per-task timeouts, and bounded retry of points
    lost to worker deaths (:mod:`repro.executors.subproc`).
"""

from repro.executors.api import Executor
from repro.executors.builtin import PoolExecutor, SerialExecutor
from repro.executors.registry import (
    ExecutorInfo,
    UnknownExecutorError,
    executor_names,
    get_executor,
    get_executor_info,
    iter_executor_info,
    register_executor,
    unregister_executor,
)
from repro.executors.subproc import SubprocessExecutor

__all__ = [
    "Executor",
    "ExecutorInfo",
    "PoolExecutor",
    "SerialExecutor",
    "SubprocessExecutor",
    "UnknownExecutorError",
    "executor_names",
    "get_executor",
    "get_executor_info",
    "iter_executor_info",
    "register_executor",
    "unregister_executor",
]
