"""``subprocess-workers``: long-lived worker subprocesses with fault
tolerance.

The parent half of the protocol documented in
:mod:`repro.executors.worker`.  :class:`SubprocessExecutor` spawns N
worker subprocesses once (lazily, like
:class:`~repro.experiments.pool.WorkerPool`) and keeps them across
sweeps; each worker runs one task at a time over newline-delimited
JSON on its stdin/stdout.  Unlike the fork pool this transport has no
shared memory and no pickling — tasks are addressed as ``(spec,
index)`` JSON — which is exactly the shape a multi-host backend (SSH,
TCP task queue) needs; the orchestration below is the skeleton such a
backend drops into.

Fault model
-----------

* **Worker death** (SIGKILL, OOM, crash) is detected two ways: the
  reader thread sees EOF immediately, and a busy worker that stops
  emitting heartbeats for ``heartbeat_timeout`` seconds is declared
  hung and killed.  Either way the worker is respawned and its
  in-flight task is retried — with exponential backoff, at most
  ``max_task_retries`` extra attempts — on another (or the respawned)
  worker.  Determinism makes the retry safe: a point's payload depends
  only on ``(spec, index)``, so fault-injected runs converge to the
  same bytes as serial ones (pinned by
  ``tests/executors/test_subprocess_executor.py`` and the golden
  fixtures).
* **Task timeout**: a single attempt running longer than
  ``task_timeout`` has its worker killed and the task retried under
  the same bounded-retry budget; exhausting the budget raises a typed
  :class:`~repro.errors.ExecutorError` (captured as a structured job
  failure by the :class:`~repro.jobs.JobRunner`).
* **Task errors**: a worker reporting that the point runner *raised*
  is not retried — deterministic points fail deterministically — and
  surfaces immediately as
  :class:`~repro.errors.ExecutorTaskError` carrying the original
  exception type.
* **Respawn storms** are bounded: if workers keep dying faster than
  tasks complete (broken interpreter, import error in a preload), the
  executor raises instead of spinning forever.

Results never pass through the store from a worker: payloads return to
the parent, which persists them exactly like the serial path — so
retries can never create duplicate store entries.
"""

from __future__ import annotations

import atexit
import json
import logging
import os
import subprocess
import sys
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.errors import ExecutorError, ExecutorTaskError, ValidationError
from repro.executors.api import Executor
from repro.executors.registry import register_executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepSpec

__all__ = ["SubprocessExecutor"]

log = logging.getLogger("repro.executors")

#: How long :meth:`SubprocessExecutor.close` waits for a clean exit
#: before killing a worker.
_SHUTDOWN_GRACE = 2.0

#: Event-loop tick while waiting for worker messages.
_POLL_INTERVAL = 0.05

#: Live executors, closed at interpreter exit so library users cannot
#: leak worker subprocesses (mirrors the shared pool's atexit hook).
_LIVE: "weakref.WeakSet[SubprocessExecutor]" = weakref.WeakSet()
_atexit_registered = False


def _close_live_executors() -> None:
    for executor in list(_LIVE):
        executor.close()


@dataclass
class _Task:
    """One point's execution state across attempts."""

    index: int
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class _Worker:
    """Parent-side handle of one worker subprocess."""

    token: int
    proc: subprocess.Popen
    reader: threading.Thread
    ready: bool = False
    last_seen: float = field(default_factory=time.monotonic)
    busy: _Task | None = None
    busy_task_id: int | None = None
    busy_since: float = 0.0
    known_sweeps: set[int] = field(default_factory=set)

    @property
    def pid(self) -> int:
        return self.proc.pid


class SubprocessExecutor(Executor):
    """Fan sweep points over long-lived NDJSON worker subprocesses.

    Parameters
    ----------
    workers:
        Worker subprocess count (``None`` → visible CPU count; must be
        ≥ 1).  Workers spawn lazily on the first batch and persist
        across sweeps until :meth:`close`.
    task_timeout:
        Wall-clock budget of a *single attempt* of one point; ``None``
        (default) disables the per-task deadline (dead workers are
        still detected by EOF and missed heartbeats).
    heartbeat_interval:
        How often workers emit heartbeats (they also heartbeat while
        computing, from a background thread).
    heartbeat_timeout:
        Silence window after which a worker is declared hung and
        killed.  Must exceed ``heartbeat_interval``.
    max_task_retries:
        Extra attempts a point gets after worker-death/timeout
        failures before the executor raises (default 2 → at most 3
        attempts per point).
    retry_backoff:
        Base of the exponential retry delay: attempt ``k`` waits
        ``retry_backoff * 2**(k-1)`` seconds before rescheduling.
    preload:
        Module names each worker imports before signalling ready —
        how point runners registered outside the engine's built-in
        modules become resolvable inside workers.
    env:
        Extra environment variables for workers (merged over the
        parent's environment; the parent's ``repro`` package location
        is always prepended to ``PYTHONPATH``).
    """

    name = "subprocess-workers"

    def __init__(
        self,
        workers: int | None = None,
        *,
        task_timeout: float | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_timeout: float = 30.0,
        max_task_retries: int = 2,
        retry_backoff: float = 0.05,
        preload: Sequence[str] = (),
        env: Mapping[str, str] | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValidationError(
                f"subprocess-workers needs >= 1 worker, got {workers}"
            )
        if heartbeat_timeout <= heartbeat_interval:
            raise ValidationError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"(got {heartbeat_timeout} <= {heartbeat_interval})"
            )
        if max_task_retries < 0:
            raise ValidationError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        self.workers = max(1, int(workers or (os.cpu_count() or 1)))
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_task_retries = max_task_retries
        self.retry_backoff = retry_backoff
        self.preload = tuple(preload)
        self.extra_env = dict(env or {})
        #: Workers spawned over this executor's lifetime (initial
        #: spawns + respawns); observable like the pool's spawn_count.
        self.spawn_count = 0
        self._workers: dict[int, _Worker] = {}
        self._events: SimpleQueue[tuple[int, dict[str, Any]]] = SimpleQueue()
        self._next_token = 0
        self._next_task_id = 0
        self._next_sweep_id = 0
        self._lock = threading.Lock()  # one batch at a time
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether worker subprocesses are currently alive."""
        return bool(self._workers)

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (fault-injection tests kill one)."""
        return [w.pid for w in self._workers.values()]

    def _worker_env(self) -> dict[str, str]:
        import repro

        src_root = str(
            __import__("pathlib").Path(repro.__file__).resolve().parent.parent
        )
        env = dict(os.environ)
        env.update(self.extra_env)
        existing = env.get("PYTHONPATH", "")
        paths = [src_root] + ([existing] if existing else [])
        env["PYTHONPATH"] = os.pathsep.join(paths)
        return env

    def _spawn_worker(self) -> _Worker:
        command = [
            sys.executable,
            "-m",
            "repro.executors.worker",
            "--heartbeat-interval",
            str(self.heartbeat_interval),
        ]
        for module in self.preload:
            command.extend(["--preload", module])
        proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
            env=self._worker_env(),
        )
        self._next_token += 1
        token = self._next_token
        reader = threading.Thread(
            target=self._read_worker,
            args=(token, proc),
            name=f"repro-executor-reader-{token}",
            daemon=True,
        )
        worker = _Worker(token=token, proc=proc, reader=reader)
        self._workers[token] = worker
        self.spawn_count += 1
        reader.start()
        log.info(
            "spawned subprocess worker pid %d (%d/%d live, spawn #%d)",
            proc.pid, len(self._workers), self.workers, self.spawn_count,
        )
        return worker

    def _read_worker(self, token: int, proc: subprocess.Popen) -> None:
        stream = proc.stdout
        assert stream is not None
        for line in stream:
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue  # stray print from a point runner: ignore
            if isinstance(message, dict):
                self._events.put((token, message))
        self._events.put((token, {"op": "exit"}))

    def _ensure_workers(self) -> None:
        if self._closed:
            self._closed = False  # closed executors lazily restart
        global _atexit_registered
        if not _atexit_registered:
            atexit.register(_close_live_executors)
            _atexit_registered = True
        _LIVE.add(self)
        while len(self._workers) < self.workers:
            self._spawn_worker()

    def close(self) -> None:
        """Shut the workers down (idempotent).  A later batch simply
        respawns them, mirroring :class:`WorkerPool.shutdown`."""
        self._closed = True
        workers = list(self._workers.values())
        self._workers.clear()
        for worker in workers:
            try:
                assert worker.proc.stdin is not None
                worker.proc.stdin.write(
                    json.dumps({"op": "shutdown"}) + "\n"
                )
                worker.proc.stdin.flush()
                worker.proc.stdin.close()
            except (OSError, ValueError, AssertionError):
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for worker in workers:
            remaining = deadline - time.monotonic()
            try:
                worker.proc.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()

    # -- transport helpers -----------------------------------------------

    def _send(self, worker: _Worker, message: dict[str, Any]) -> bool:
        """Write one line to ``worker``; False when the pipe is gone."""
        try:
            assert worker.proc.stdin is not None
            worker.proc.stdin.write(
                json.dumps(message, separators=(",", ":")) + "\n"
            )
            worker.proc.stdin.flush()
            return True
        except (OSError, ValueError, AssertionError):
            return False

    def _kill_worker(self, worker: _Worker) -> None:
        self._workers.pop(worker.token, None)
        try:
            worker.proc.kill()
            worker.proc.wait(timeout=_SHUTDOWN_GRACE)
        except (OSError, subprocess.TimeoutExpired):
            pass

    def _fail_or_requeue(
        self,
        worker: _Worker,
        reason: str,
        pending: deque[_Task],
        kind: str,
    ) -> None:
        """Retire a dead/hung worker; retry its task within budget."""
        task = worker.busy
        self._kill_worker(worker)
        if task is None:
            log.warning(
                "idle subprocess worker pid %d died (%s); respawning",
                worker.pid, reason,
            )
            return
        task.attempts += 1
        # attempts counts *failed* attempts; the budget is the first
        # attempt plus max_task_retries retries.
        if task.attempts > self.max_task_retries:
            raise ExecutorError(
                f"sweep {kind!r} point {task.index} failed after "
                f"{task.attempts} attempts (last failure: {reason}; "
                f"workers={self.workers}, "
                f"max_task_retries={self.max_task_retries})"
            )
        delay = self.retry_backoff * (2 ** (task.attempts - 1))
        task.not_before = time.monotonic() + delay
        pending.append(task)
        log.warning(
            "subprocess worker pid %d lost point %d (%s); retrying "
            "attempt %d/%d in %.2fs",
            worker.pid, task.index, reason, task.attempts + 1,
            self.max_task_retries + 1, delay,
        )

    # -- execution -------------------------------------------------------

    def run_points(
        self, spec: "SweepSpec", indices: Sequence[int]
    ) -> list[tuple[int, dict[str, Any]]]:
        if not indices:
            return []
        with self._lock:
            return self._run_batch(spec, indices)

    def _run_batch(
        self, spec: "SweepSpec", indices: Sequence[int]
    ) -> list[tuple[int, dict[str, Any]]]:
        self._ensure_workers()
        self._next_sweep_id += 1
        sid = self._next_sweep_id
        spec_dict = spec.to_dict()
        pending: deque[_Task] = deque(_Task(index=i) for i in indices)
        inflight: dict[int, _Task] = {}  # task id → task (this batch)
        results: dict[int, dict[str, Any]] = {}
        spawn_base = self.spawn_count
        respawn_budget = (
            self.workers * (self.max_task_retries + 2) + 4 + len(indices)
        )

        while len(results) < len(indices):
            if self.spawn_count - spawn_base > respawn_budget:
                raise ExecutorError(
                    f"subprocess workers keep dying "
                    f"({self.spawn_count - spawn_base} spawns for "
                    f"{len(indices)} points); giving up on sweep "
                    f"{spec.kind!r}"
                )
            self._assign(pending, inflight, sid, spec.kind, spec_dict)
            self._pump(pending, inflight, results, spec.kind)
            while len(self._workers) < self.workers:
                self._spawn_worker()
        return [(index, results[index]) for index in indices]

    def _assign(
        self,
        pending: deque[_Task],
        inflight: dict[int, _Task],
        sid: int,
        kind: str,
        spec_dict: dict[str, Any],
    ) -> None:
        if not pending:
            return
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if not pending:
                return
            if not worker.ready or worker.busy is not None:
                continue
            # Respect retry backoff: leave not-yet-due tasks queued.
            due = None
            for _ in range(len(pending)):
                task = pending.popleft()
                if task.not_before <= now:
                    due = task
                    break
                pending.append(task)
            if due is None:
                return
            if sid not in worker.known_sweeps:
                if not self._send(
                    worker, {"op": "sweep", "sid": sid, "spec": spec_dict}
                ):
                    pending.appendleft(due)
                    self._fail_or_requeue(worker, "pipe closed", pending, kind)
                    continue
                worker.known_sweeps.add(sid)
            self._next_task_id += 1
            task_id = self._next_task_id
            if not self._send(
                worker,
                {"op": "task", "id": task_id, "sid": sid, "index": due.index},
            ):
                pending.appendleft(due)
                self._fail_or_requeue(worker, "pipe closed", pending, kind)
                continue
            worker.busy = due
            worker.busy_task_id = task_id
            worker.busy_since = time.monotonic()
            inflight[task_id] = due

    def _pump(
        self,
        pending: deque[_Task],
        inflight: dict[int, _Task],
        results: dict[int, dict[str, Any]],
        kind: str,
    ) -> None:
        """Drain worker messages (blocking briefly), then police
        deadlines and heartbeats."""
        block = True
        while True:
            try:
                token, message = self._events.get(
                    timeout=_POLL_INTERVAL if block else 0.0
                )
            except Empty:
                break
            block = False
            worker = self._workers.get(token)
            if worker is None:
                continue  # message from an already-retired worker
            op = message.get("op")
            worker.last_seen = time.monotonic()
            if op == "ready":
                worker.ready = True
            elif op in ("heartbeat", "pong"):
                pass
            elif op == "exit":
                self._fail_or_requeue(worker, "worker exited", pending, kind)
            elif op in ("result", "error"):
                task_id = message.get("id")
                if worker.busy_task_id == task_id:
                    worker.busy = None
                    worker.busy_task_id = None
                task = inflight.pop(task_id, None)
                if task is None:
                    continue  # stale reply from an abandoned batch
                if op == "error":
                    raise ExecutorTaskError(
                        f"sweep {kind!r} point {task.index} raised "
                        f"{message.get('type', 'Exception')}: "
                        f"{message.get('message', '')}",
                        error_type=str(message.get("type", "")),
                    )
                results[task.index] = message["payload"]

        now = time.monotonic()
        for worker in list(self._workers.values()):
            if worker.busy is not None and self.task_timeout is not None:
                if now - worker.busy_since > self.task_timeout:
                    self._fail_or_requeue(
                        worker,
                        f"task timeout after {self.task_timeout:g}s",
                        pending,
                        kind,
                    )
                    continue
            if now - worker.last_seen > self.heartbeat_timeout:
                self._fail_or_requeue(
                    worker,
                    f"no heartbeat for {self.heartbeat_timeout:g}s",
                    pending,
                    kind,
                )


@register_executor(
    "subprocess-workers",
    title="Long-lived worker subprocesses over an NDJSON task protocol",
    description=(
        "Spawns N worker subprocesses once and streams (spec, index) "
        "tasks to them as newline-delimited JSON on stdin/stdout — no "
        "pickling, no shared memory, the same wire shape a multi-host "
        "backend needs.  Workers heartbeat (also while computing), "
        "dead or hung workers are respawned, and their in-flight "
        "points are retried with bounded exponential backoff; "
        "determinism makes the retry safe, so fault-injected runs are "
        "byte-identical to serial ones."
    ),
    tags=("local", "distributed", "fault-tolerant"),
)
def _make_subprocess(workers: int | None = None) -> SubprocessExecutor:
    return SubprocessExecutor(workers=workers)
