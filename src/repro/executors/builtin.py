"""The in-process execution backends: ``serial`` and ``pool``.

``serial`` computes points on the calling thread — the golden
reference every other backend is pinned against.  ``pool`` wraps the
existing process-wide :class:`~repro.experiments.pool.WorkerPool`
(or an injected one), so choosing it is exactly the engine's historic
``workers=N`` behaviour, now addressable by name.
"""

from __future__ import annotations

import os
from itertools import repeat
from typing import TYPE_CHECKING, Any, Sequence

from repro.executors.api import Executor
from repro.executors.registry import register_executor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.parallel import SweepSpec
    from repro.experiments.pool import WorkerPool

__all__ = ["SerialExecutor", "PoolExecutor"]


class SerialExecutor(Executor):
    """Compute every point in-process, in order (the reference)."""

    name = "serial"
    workers = 1

    def run_points(
        self, spec: "SweepSpec", indices: Sequence[int]
    ) -> list[tuple[int, dict[str, Any]]]:
        from repro.experiments.parallel import execute_point

        return [(index, execute_point(spec, index)) for index in indices]


class PoolExecutor(Executor):
    """Fan points over a persistent :class:`WorkerPool`.

    Without an injected pool this lazily attaches to the process-wide
    shared pool (:func:`repro.experiments.pool.get_shared_pool`) on
    the first batch — the engine's historic parallel path.  The pool's
    owner keeps its lifecycle: :meth:`close` never shuts down the
    shared pool (the CLI/atexit hook reaps it) nor an injected one.
    """

    name = "pool"

    def __init__(
        self,
        workers: int | None = None,
        pool: "WorkerPool | None" = None,
    ) -> None:
        if pool is not None:
            self.workers = pool.max_workers
        else:
            self.workers = max(1, int(workers or (os.cpu_count() or 1)))
        self._injected_pool = pool

    def _pool(self) -> "WorkerPool":
        if self._injected_pool is not None:
            return self._injected_pool
        from repro.experiments.pool import get_shared_pool

        return get_shared_pool(self.workers)

    def run_points(
        self, spec: "SweepSpec", indices: Sequence[int]
    ) -> list[tuple[int, dict[str, Any]]]:
        from repro.experiments.parallel import (
            _execute_point_job,
            execute_point,
        )

        pool = self._pool()
        if pool.max_workers == 1 or len(indices) == 1:
            return [(i, execute_point(spec, i)) for i in indices]
        computed = pool.map(
            _execute_point_job, repeat(spec.to_dict()), indices,
            limit=self.workers,
        )
        return list(zip(indices, computed))


@register_executor(
    "serial",
    title="In-process serial execution (the golden reference)",
    description=(
        "Computes every sweep point on the calling thread, in order. "
        "No processes, no transport — this is the reference backend "
        "all others must match byte for byte."
    ),
    tags=("local", "reference"),
)
def _make_serial(workers: int | None = None) -> SerialExecutor:
    return SerialExecutor()


@register_executor(
    "pool",
    title="Process-wide persistent fork pool (the default parallel path)",
    description=(
        "Fans points over the shared WorkerPool — one lazy fork per "
        "process, reused by every sweep.  Identical to passing "
        "--workers N without an --executor: the engine's historic "
        "parallel behaviour, addressable by name."
    ),
    tags=("local",),
)
def _make_pool(workers: int | None = None) -> PoolExecutor:
    return PoolExecutor(workers=workers)
