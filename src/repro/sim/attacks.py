"""Attack injection model (paper Sec. IV-A).

The paper's case study "triggered synthetic attacks (e.g., that corrupts
the file system and network packets)" at random times during each trial
and measured how long the matching security task took to notice.  An
:class:`Attack` is therefore just a timestamp plus the attack surface it
compromises; detection semantics live in :mod:`repro.sim.detection`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.model.task import SecurityTask, TaskSet

__all__ = ["Attack", "sample_attacks", "surfaces_of"]


@dataclass(frozen=True, slots=True)
class Attack:
    """A synthetic intrusion compromising one attack surface at ``time``."""

    time: float
    surface: str

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValidationError(f"attack time must be ≥ 0, got {self.time}")
        if not self.surface:
            raise ValidationError("attack surface must be a non-empty label")


def surfaces_of(security_tasks: TaskSet | Sequence[SecurityTask]) -> list[str]:
    """The distinct monitored surfaces, in task order.

    Tasks without a ``surface`` label are skipped (they cannot detect a
    surface-tagged attack).
    """
    seen: list[str] = []
    for task in security_tasks:
        if task.surface and task.surface not in seen:
            seen.append(task.surface)
    return seen


def sample_attacks(
    count: int,
    window: tuple[float, float],
    surfaces: Sequence[str],
    rng: np.random.Generator | int | None = None,
) -> list[Attack]:
    """Draw ``count`` attacks uniformly over ``window`` and ``surfaces``.

    Mirrors the paper's methodology: one attack per trial at a uniformly
    random instant, against a randomly chosen surface.
    """
    if count < 0:
        raise ValidationError(f"count must be ≥ 0, got {count}")
    lo, hi = window
    if not (0 <= lo < hi):
        raise ValidationError(f"invalid attack window {window!r}")
    if not surfaces:
        raise ValidationError("need at least one attack surface")
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    times = rng.uniform(lo, hi, size=count)
    picks = rng.integers(0, len(surfaces), size=count)
    return [
        Attack(time=float(t), surface=surfaces[int(k)])
        for t, k in zip(times, picks)
    ]
