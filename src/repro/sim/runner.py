"""Bridge from the analytic world (system + allocation) to the simulator.

Builds :class:`~repro.sim.engine.SimTask` lists from a
:class:`~repro.model.system.SystemModel` and a schedulable
:class:`~repro.model.allocation.Allocation`, enforcing the paper's
priority structure: real-time tasks occupy the top priority band (RM
order), security tasks sit strictly below (ordered by ``T_max``), and
each security task runs at its *assigned* period.

Both entry points also accept the typed
:class:`~repro.model.allocation.AllocationResult` envelope the
allocator API (:func:`repro.allocators.run_allocator`) returns, so
detection-time simulation runs over *any* registered strategy without
unwrapping by hand.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.model.allocation import Allocation, AllocationResult
from repro.model.priority import rate_monotonic_order, security_priority_order
from repro.model.system import SystemModel
from repro.sim.engine import SimResult, SimTask, Simulator

__all__ = ["build_sim_tasks", "simulate_allocation"]


def build_sim_tasks(
    system: SystemModel,
    allocation: Allocation | AllocationResult,
    security_mode: str = "partitioned",
    preemptible_security: bool = True,
    precedence: Mapping[str, Sequence[str]] | None = None,
    release_jitter: float = 0.0,
    execution_factor: float = 1.0,
) -> list[SimTask]:
    """Create the simulator task list for an allocated system.

    Parameters
    ----------
    system, allocation:
        The allocated system; ``allocation`` must be schedulable.  An
        :class:`~repro.model.allocation.AllocationResult` (from
        :func:`repro.allocators.run_allocator`) is accepted directly.
    security_mode:
        ``"partitioned"`` (paper) binds each security task to its
        allocated core; ``"global"`` (§V extension) lets security jobs
        migrate to any idle core while keeping the allocated periods.
    preemptible_security:
        ``False`` switches security tasks to non-preemptive execution
        (§V extension).
    precedence:
        Optional security-task precedence map
        (dependent → predecessors), e.g.
        :data:`repro.taskgen.security_apps.TRIPWIRE_PRECEDENCE`.
    release_jitter:
        Sporadic release slack as a fraction of each period (applied to
        every task).
    execution_factor:
        Lower bound of actual execution time as a fraction of the WCET
        (1.0 = always worst case, the analysis model).
    """
    if isinstance(allocation, AllocationResult):
        allocation = allocation.allocation
    if not allocation.schedulable:
        raise ValidationError(
            "cannot simulate an unschedulable allocation "
            f"(failed task: {allocation.failed_task!r})"
        )
    if security_mode not in ("partitioned", "global"):
        raise ValidationError(
            f"unknown security_mode {security_mode!r}; expected "
            f"'partitioned' or 'global'"
        )
    precedence = dict(precedence or {})
    security_names = set(system.security_tasks.names)
    for dependent, preds in precedence.items():
        unknown = ({dependent, *preds}) - security_names
        if unknown:
            raise ValidationError(
                f"precedence references unknown security task(s) "
                f"{sorted(unknown)!r}"
            )

    sim_tasks: list[SimTask] = []
    level = 0
    for task in rate_monotonic_order(system.rt_partition.tasks):
        sim_tasks.append(
            SimTask(
                name=task.name,
                wcet=task.wcet,
                period=task.period,
                deadline=task.deadline,
                priority=level,
                core=system.rt_partition.core_of(task),
                kind="rt",
                release_jitter=release_jitter,
                execution_factor=execution_factor,
            )
        )
        level += 1
    for task in security_priority_order(system.security_tasks):
        assigned = allocation.assignment_for(task)
        sim_tasks.append(
            SimTask(
                name=task.name,
                wcet=task.wcet,
                period=assigned.period,
                deadline=assigned.period,
                priority=level,
                core=None if security_mode == "global" else assigned.core,
                kind="security",
                surface=task.surface,
                preemptible=preemptible_security,
                predecessors=tuple(precedence.get(task.name, ())),
                release_jitter=release_jitter,
                execution_factor=execution_factor,
            )
        )
        level += 1
    return sim_tasks


def simulate_allocation(
    system: SystemModel,
    allocation: Allocation | AllocationResult,
    duration: float,
    rng: np.random.Generator | int | None = None,
    security_mode: str = "partitioned",
    preemptible_security: bool = True,
    precedence: Mapping[str, Sequence[str]] | None = None,
    release_jitter: float = 0.0,
    execution_factor: float = 1.0,
    collect_slices: bool = False,
    prune_idle_cores: bool = False,
) -> SimResult:
    """Simulate an allocated system for ``duration`` time units.

    ``prune_idle_cores=True`` drops cores hosting no security task (their
    schedules cannot influence security-job timing in partitioned mode) —
    a pure speed optimisation for detection-time studies; it is rejected
    in global mode, where every core matters.
    """
    tasks = build_sim_tasks(
        system,
        allocation,
        security_mode=security_mode,
        preemptible_security=preemptible_security,
        precedence=precedence,
        release_jitter=release_jitter,
        execution_factor=execution_factor,
    )
    num_cores = system.platform.num_cores
    if prune_idle_cores:
        if security_mode == "global":
            raise ValidationError(
                "prune_idle_cores is incompatible with global scheduling"
            )
        security_cores = sorted(
            {t.core for t in tasks if t.kind == "security" and t.core is not None}
        )
        remap = {core: new for new, core in enumerate(security_cores)}
        tasks = [
            SimTask(
                name=t.name,
                wcet=t.wcet,
                period=t.period,
                deadline=t.deadline,
                priority=t.priority,
                core=remap[t.core],
                kind=t.kind,
                surface=t.surface,
                preemptible=t.preemptible,
                predecessors=t.predecessors,
                release_jitter=t.release_jitter,
                offset=t.offset,
                execution_factor=t.execution_factor,
            )
            for t in tasks
            if t.core in remap
        ]
        num_cores = max(len(security_cores), 1)
    simulator = Simulator(
        tasks,
        num_cores=num_cores,
        duration=duration,
        rng=rng,
        collect_slices=collect_slices,
    )
    return simulator.run()
