"""Record types produced by the discrete-event scheduler simulator.

The simulator's observable output is a list of :class:`JobRecord` (one
per released job) plus, optionally, the fine-grained
:class:`ExecutionSlice` timeline used by trace tooling and tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["JobRecord", "ExecutionSlice", "DeadlineMiss"]


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Lifecycle of one job (one release of one task).

    ``start`` and ``completion`` are ``None`` when the simulation ended
    before the job ran / finished.  ``core`` is the core the job
    *finished* on (for migrating jobs, the last core it ran on).
    """

    task: str
    release: float
    deadline: float
    start: float | None
    completion: float | None
    core: int | None

    @property
    def finished(self) -> bool:
        return self.completion is not None

    @property
    def response_time(self) -> float | None:
        if self.completion is None:
            return None
        return self.completion - self.release

    @property
    def met_deadline(self) -> bool:
        """True when the job demonstrably met its deadline."""
        return self.completion is not None and (
            self.completion <= self.deadline + 1e-9
        )


@dataclass(frozen=True, slots=True)
class ExecutionSlice:
    """A maximal interval during which one job ran uninterrupted on one
    core."""

    task: str
    core: int
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class DeadlineMiss:
    """A job that was still incomplete at its absolute deadline."""

    task: str
    release: float
    deadline: float
