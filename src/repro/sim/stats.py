"""Response-time statistics over simulation results.

Bridges the simulator back to the analysis: per-task observed
response-time distributions, which the tests compare against analytic
worst-case bounds (observed ≤ bound must always hold for admitted
systems — a strong end-to-end consistency check) and which the examples
use for reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.sim.engine import SimResult

__all__ = [
    "ResponseStats",
    "ResponseSummary",
    "response_stats",
    "all_response_stats",
    "summarize_response_stats",
]


@dataclass(frozen=True, slots=True)
class ResponseStats:
    """Observed response-time summary of one task."""

    task: str
    jobs: int
    unfinished: int
    best: float
    worst: float
    mean: float

    @property
    def observed_all(self) -> bool:
        """Whether every released job completed inside the horizon."""
        return self.unfinished == 0


def response_stats(result: SimResult, task: str) -> ResponseStats:
    """Summarise the response times of ``task`` in ``result``.

    Jobs still running at the simulation horizon are counted in
    ``unfinished`` and excluded from the min/max/mean (their eventual
    response time is unknown, not infinite).
    """
    responses: list[float] = []
    unfinished = 0
    total = 0
    for job in result.jobs_of(task):
        total += 1
        if job.response_time is None:
            unfinished += 1
        else:
            responses.append(job.response_time)
    if not responses:
        return ResponseStats(
            task=task,
            jobs=total,
            unfinished=unfinished,
            best=math.inf,
            worst=math.inf,
            mean=math.inf,
        )
    return ResponseStats(
        task=task,
        jobs=total,
        unfinished=unfinished,
        best=min(responses),
        worst=max(responses),
        mean=sum(responses) / len(responses),
    )


@dataclass(frozen=True, slots=True)
class ResponseSummary:
    """Scheme-level aggregate over many :class:`ResponseStats`.

    A task with no finished job reports ``mean=inf`` (its response time
    is unknown, not infinite); averaging that marker across tasks would
    poison the whole row.  The summary therefore *skips* saturated
    tasks from the extrema/mean and counts them explicitly in
    ``saturated_tasks`` — when every task is saturated the extrema stay
    ``inf`` and ``observed_tasks`` is 0, so callers can render "n/a"
    instead of a bare ``inf``.
    """

    tasks: int
    observed_tasks: int
    saturated_tasks: int
    jobs: int
    unfinished: int
    best: float
    worst: float
    mean: float

    @property
    def observed_any(self) -> bool:
        """Whether at least one task contributed a finite response."""
        return self.observed_tasks > 0


def summarize_response_stats(
    stats: Iterable[ResponseStats],
) -> ResponseSummary:
    """NaN/inf-safe aggregate of per-task response statistics.

    ``mean`` is job-weighted over *finished* jobs only; ``best``/
    ``worst`` range over tasks that observed at least one completion.
    Saturated tasks (all jobs unfinished) are excluded from all three
    and tallied in ``saturated_tasks``.
    """
    tasks = 0
    saturated = 0
    jobs = 0
    unfinished = 0
    best = math.inf
    worst = -math.inf
    weighted_sum = 0.0
    finished_jobs = 0
    for entry in stats:
        tasks += 1
        jobs += entry.jobs
        unfinished += entry.unfinished
        finished = entry.jobs - entry.unfinished
        if finished <= 0:
            saturated += 1
            continue
        best = min(best, entry.best)
        worst = max(worst, entry.worst)
        weighted_sum += entry.mean * finished
        finished_jobs += finished
    observed = tasks - saturated
    return ResponseSummary(
        tasks=tasks,
        observed_tasks=observed,
        saturated_tasks=saturated,
        jobs=jobs,
        unfinished=unfinished,
        best=best if observed else math.inf,
        worst=worst if observed else math.inf,
        mean=weighted_sum / finished_jobs if finished_jobs else math.inf,
    )


def all_response_stats(result: SimResult) -> dict[str, ResponseStats]:
    """:func:`response_stats` for every task appearing in ``result``."""
    names: list[str] = []
    for job in result.jobs:
        if job.task not in names:
            names.append(job.task)
    return {name: response_stats(result, name) for name in names}
