"""Response-time statistics over simulation results.

Bridges the simulator back to the analysis: per-task observed
response-time distributions, which the tests compare against analytic
worst-case bounds (observed ≤ bound must always hold for admitted
systems — a strong end-to-end consistency check) and which the examples
use for reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.engine import SimResult

__all__ = ["ResponseStats", "response_stats", "all_response_stats"]


@dataclass(frozen=True, slots=True)
class ResponseStats:
    """Observed response-time summary of one task."""

    task: str
    jobs: int
    unfinished: int
    best: float
    worst: float
    mean: float

    @property
    def observed_all(self) -> bool:
        """Whether every released job completed inside the horizon."""
        return self.unfinished == 0


def response_stats(result: SimResult, task: str) -> ResponseStats:
    """Summarise the response times of ``task`` in ``result``.

    Jobs still running at the simulation horizon are counted in
    ``unfinished`` and excluded from the min/max/mean (their eventual
    response time is unknown, not infinite).
    """
    responses: list[float] = []
    unfinished = 0
    total = 0
    for job in result.jobs_of(task):
        total += 1
        if job.response_time is None:
            unfinished += 1
        else:
            responses.append(job.response_time)
    if not responses:
        return ResponseStats(
            task=task,
            jobs=total,
            unfinished=unfinished,
            best=math.inf,
            worst=math.inf,
            mean=math.inf,
        )
    return ResponseStats(
        task=task,
        jobs=total,
        unfinished=unfinished,
        best=min(responses),
        worst=max(responses),
        mean=sum(responses) / len(responses),
    )


def all_response_stats(result: SimResult) -> dict[str, ResponseStats]:
    """:func:`response_stats` for every task appearing in ``result``."""
    names: list[str] = []
    for job in result.jobs:
        if job.task not in names:
            names.append(job.task)
    return {name: response_stats(result, name) for name in names}
