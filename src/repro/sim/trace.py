"""Execution-trace utilities: slice merging, accounting, ASCII Gantt.

The simulator emits one :class:`~repro.sim.events.ExecutionSlice` per
(job, inter-event interval); these helpers consolidate them for human
inspection (examples) and for the conservation-law tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sim.events import ExecutionSlice

__all__ = ["merge_slices", "busy_time_by_task", "ascii_gantt"]


def merge_slices(slices: Iterable[ExecutionSlice]) -> list[ExecutionSlice]:
    """Coalesce back-to-back slices of the same task on the same core."""
    merged: list[ExecutionSlice] = []
    for s in sorted(slices, key=lambda s: (s.core, s.start, s.end)):
        if (
            merged
            and merged[-1].core == s.core
            and merged[-1].task == s.task
            and abs(merged[-1].end - s.start) <= 1e-9
        ):
            merged[-1] = ExecutionSlice(
                task=s.task, core=s.core, start=merged[-1].start, end=s.end
            )
        else:
            merged.append(s)
    return merged


def busy_time_by_task(slices: Iterable[ExecutionSlice]) -> dict[str, float]:
    """Total execution time received per task."""
    totals: dict[str, float] = {}
    for s in slices:
        totals[s.task] = totals.get(s.task, 0.0) + s.length
    return totals


def ascii_gantt(
    slices: Sequence[ExecutionSlice],
    start: float = 0.0,
    end: float | None = None,
    width: int = 78,
) -> str:
    """Render a per-core Gantt chart with one character per time bucket.

    Each core gets one row; the busiest task inside a bucket provides the
    (first-letter) glyph, idle buckets render as ``.``.  Intended for
    quick schedule inspection in the examples, not for precise analysis.
    """
    slices = list(slices)
    if not slices:
        return "(no execution slices)"
    if end is None:
        end = max(s.end for s in slices)
    span = end - start
    if span <= 0 or width < 1:
        return "(empty window)"
    bucket = span / width
    cores = sorted({s.core for s in slices})
    lines = []
    for core in cores:
        occupancy: list[dict[str, float]] = [dict() for _ in range(width)]
        for s in slices:
            if s.core != core or s.end <= start or s.start >= end:
                continue
            lo = max(s.start, start)
            hi = min(s.end, end)
            first = int((lo - start) / bucket)
            last = min(int((hi - start) / bucket), width - 1)
            for b in range(first, last + 1):
                b_lo = start + b * bucket
                b_hi = b_lo + bucket
                overlap = min(hi, b_hi) - max(lo, b_lo)
                if overlap > 0:
                    occupancy[b][s.task] = (
                        occupancy[b].get(s.task, 0.0) + overlap
                    )
        row = []
        for cell in occupancy:
            if not cell:
                row.append(".")
            else:
                winner = max(cell.items(), key=lambda kv: kv[1])[0]
                row.append(winner[0].upper())
        lines.append(f"core {core}: " + "".join(row))
    scale = f"         t = [{start:g}, {end:g}], {bucket:g} per char"
    return "\n".join(lines + [scale])
