"""Discrete-event simulator for partitioned fixed-priority preemptive
scheduling.

This is the substrate standing in for the paper's ARM/Xenomai testbed
(DESIGN §5): it reproduces the *scheduling-level* behaviour — which job
runs when on which core — that the Fig. 1 detection-time experiment
measures.  Supported features:

* M cores, partitioned tasks (each bound to one core) with distinct
  fixed priorities, fully preemptive (the paper's model);
* periodic or sporadic releases (per-task release jitter: inter-arrival
  drawn uniformly from ``[T, (1+jitter)·T]``);
* optional **non-preemptive** tasks (paper §V extension);
* optional **precedence constraints** between tasks (paper §V): a job
  may only start once every predecessor task has completed a job no
  older than the job's own release ("check the checker first");
* optional **migrating** tasks (``core=None``) scheduled globally on any
  idle core (paper §V's global-scheduling direction).

The engine advances from event to event (releases and completions); in
between, each core runs the highest-priority eligible job.  Output is a
list of :class:`~repro.sim.events.JobRecord` plus optional execution
slices and per-core busy-time accounting, which the tests use to check
conservation laws.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.sim.events import DeadlineMiss, ExecutionSlice, JobRecord

__all__ = ["SimTask", "SimResult", "Simulator"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class SimTask:
    """A task as seen by the simulator.

    ``priority``: smaller is higher; must be unique across tasks.
    ``core``: the hosting core, or ``None`` for a migrating task that may
    run on any core.  ``release_jitter``: sporadic slack as a fraction of
    the period (0 = strictly periodic).  ``predecessors``: names of tasks
    whose fresh completion must precede each job's start.
    """

    name: str
    wcet: float
    period: float
    priority: int
    core: int | None
    deadline: float | None = None
    kind: str = "rt"
    surface: str | None = None
    preemptible: bool = True
    predecessors: tuple[str, ...] = ()
    release_jitter: float = 0.0
    offset: float = 0.0
    #: Lower bound of the actual execution time as a fraction of the
    #: WCET; each job draws uniformly from [factor·C, C].  1.0 (default)
    #: reproduces the worst-case-everywhere model of the analysis.
    execution_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise ValidationError(
                f"sim task {self.name!r}: wcet and period must be positive"
            )
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.kind not in ("rt", "security"):
            raise ValidationError(
                f"sim task {self.name!r}: kind must be 'rt' or 'security'"
            )
        if self.release_jitter < 0:
            raise ValidationError(
                f"sim task {self.name!r}: release_jitter must be ≥ 0"
            )
        if self.offset < 0:
            raise ValidationError(
                f"sim task {self.name!r}: offset must be ≥ 0"
            )
        if not (0.0 < self.execution_factor <= 1.0):
            raise ValidationError(
                f"sim task {self.name!r}: execution_factor must lie in "
                f"(0, 1], got {self.execution_factor}"
            )


class _Job:
    """Mutable in-flight job state."""

    __slots__ = (
        "task_id", "release", "deadline", "remaining", "start", "core", "seq"
    )

    def __init__(
        self, task_id: int, release: float, deadline: float, wcet: float,
        seq: int,
    ) -> None:
        self.task_id = task_id
        self.release = release
        self.deadline = deadline
        self.remaining = wcet
        self.start: float | None = None
        self.core: int | None = None
        self.seq = seq


@dataclass
class SimResult:
    """Everything observable about one simulation run."""

    duration: float
    jobs: list[JobRecord]
    misses: list[DeadlineMiss]
    busy_time: dict[int, float]
    slices: list[ExecutionSlice] = field(default_factory=list)

    def jobs_of(self, task: str) -> list[JobRecord]:
        """All job records of ``task``, in release order."""
        return [job for job in self.jobs if job.task == task]

    def completed_jobs_of(self, task: str) -> list[JobRecord]:
        """Finished jobs of ``task``, in release order."""
        return [job for job in self.jobs if job.task == task and job.finished]

    def utilization_of_core(self, core: int) -> float:
        """Fraction of the simulated window the core was busy."""
        if self.duration <= 0:
            return 0.0
        return self.busy_time.get(core, 0.0) / self.duration

    @property
    def missed_any_deadline(self) -> bool:
        return bool(self.misses)


class Simulator:
    """Event-driven multicore fixed-priority scheduler simulator."""

    def __init__(
        self,
        tasks: Iterable[SimTask],
        num_cores: int,
        duration: float,
        rng: np.random.Generator | int | None = None,
        collect_slices: bool = False,
    ) -> None:
        self.tasks: tuple[SimTask, ...] = tuple(tasks)
        if num_cores < 1:
            raise ValidationError("need at least one core")
        if duration <= 0:
            raise ValidationError("duration must be positive")
        self.num_cores = num_cores
        self.duration = float(duration)
        self.collect_slices = collect_slices
        if isinstance(rng, (int, np.integer)) or rng is None:
            rng = np.random.default_rng(rng)
        self._rng = rng

        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValidationError("duplicate simulator task names")
        priorities = [t.priority for t in self.tasks]
        if len(set(priorities)) != len(priorities):
            raise ValidationError("simulator priorities must be distinct")
        self._index = {t.name: i for i, t in enumerate(self.tasks)}
        for t in self.tasks:
            if t.core is not None and not (0 <= t.core < num_cores):
                raise ValidationError(
                    f"task {t.name!r} bound to invalid core {t.core}"
                )
            for pred in t.predecessors:
                if pred not in self._index:
                    raise ValidationError(
                        f"task {t.name!r} depends on unknown task {pred!r}"
                    )

    # -- release pattern ---------------------------------------------------

    def _next_interval(self, task: SimTask) -> float:
        if task.release_jitter <= 0.0:
            return task.period
        return task.period * (
            1.0 + float(self._rng.uniform(0.0, task.release_jitter))
        )

    def _execution_time(self, task: SimTask) -> float:
        if task.execution_factor >= 1.0:
            return task.wcet
        return task.wcet * float(
            self._rng.uniform(task.execution_factor, 1.0)
        )

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimResult:
        tasks = self.tasks
        num_cores = self.num_cores
        duration = self.duration

        release_heap: list[tuple[float, int, int]] = []  # (time, seq, task)
        seq = 0
        for i, task in enumerate(tasks):
            heapq.heappush(release_heap, (task.offset, seq, i))
            seq += 1

        ready_bound: list[list[_Job]] = [[] for _ in range(num_cores)]
        ready_global: list[_Job] = []
        running: list[_Job | None] = [None] * num_cores
        last_completion = [-math.inf] * len(tasks)

        jobs_out: list[JobRecord] = []
        misses: list[DeadlineMiss] = []
        busy = {m: 0.0 for m in range(num_cores)}
        slices: list[ExecutionSlice] = []
        live_jobs: list[_Job] = []

        def eligible(job: _Job) -> bool:
            preds = tasks[job.task_id].predecessors
            if not preds:
                return True
            return all(
                last_completion[self._index[p]] >= job.release - _EPS
                for p in preds
            )

        now = 0.0
        guard = 0
        max_iterations = 4_000_000
        while now < duration - _EPS:
            guard += 1
            if guard > max_iterations:
                raise SimulationError(
                    "event budget exceeded; workload far too dense for the "
                    "simulated horizon"
                )
            # 1. releases due now ------------------------------------------
            while release_heap and release_heap[0][0] <= now + _EPS:
                rel_time, _, i = heapq.heappop(release_heap)
                task = tasks[i]
                job = _Job(
                    i,
                    rel_time,
                    rel_time + task.deadline,
                    self._execution_time(task),
                    seq,
                )
                seq += 1
                live_jobs.append(job)
                if task.core is None:
                    ready_global.append(job)
                else:
                    ready_bound[task.core].append(job)
                nxt = rel_time + self._next_interval(task)
                if nxt < duration:
                    heapq.heappush(release_heap, (nxt, seq, i))
                    seq += 1

            # 2. scheduling decision per core -------------------------------
            # A task is a single flow of control: when a job outlives its
            # period (overload) the successor must wait for it, so only
            # the earliest live job of each task is dispatchable.  Bound
            # tasks get this for free (same core, seq-ordered ties);
            # migrating tasks need the explicit filter or two cores could
            # run two jobs of one task concurrently.
            earliest_live: dict[int, int] = {}
            for job in live_jobs:
                seen = earliest_live.get(job.task_id)
                if seen is None or job.seq < seen:
                    earliest_live[job.task_id] = job.seq
            for m in range(num_cores):
                current = running[m]
                if (
                    current is not None
                    and not tasks[current.task_id].preemptible
                    and current.remaining > _EPS
                ):
                    continue  # non-preemptible job keeps the core
                # Highest-priority eligible bound job on this core;
                # include the currently running job as a candidate.
                candidates: list[_Job] = [
                    j for j in ready_bound[m] if eligible(j)
                ]
                if current is not None:
                    candidates.append(current)
                best: _Job | None = None
                if candidates:
                    best = min(
                        candidates,
                        key=lambda j: (tasks[j.task_id].priority, j.seq),
                    )
                # A migrating job may take the core if it beats ``best``
                # (chosen jobs are removed from the pool immediately, so
                # two cores can never grab the same job in one pass).
                global_candidates = [
                    j
                    for j in ready_global
                    if eligible(j) and earliest_live[j.task_id] == j.seq
                ]
                global_best: _Job | None = None
                if global_candidates:
                    global_best = min(
                        global_candidates,
                        key=lambda j: (tasks[j.task_id].priority, j.seq),
                    )
                chosen = best
                if global_best is not None and (
                    best is None
                    or tasks[global_best.task_id].priority
                    < tasks[best.task_id].priority
                ):
                    chosen = global_best
                if chosen is current:
                    continue
                # Preempt the incumbent back to its ready pool.
                if current is not None:
                    if tasks[current.task_id].core is None:
                        ready_global.append(current)
                    else:
                        ready_bound[m].append(current)
                running[m] = chosen
                if chosen is not None:
                    if chosen is global_best:
                        ready_global.remove(chosen)
                    else:
                        ready_bound[m].remove(chosen)
                    chosen.core = m
                    if chosen.start is None:
                        chosen.start = now

            # 3. next event time --------------------------------------------
            horizon = duration
            if release_heap:
                horizon = min(horizon, release_heap[0][0])
            for m in range(num_cores):
                job = running[m]
                if job is not None:
                    horizon = min(horizon, now + job.remaining)
            if horizon <= now + _EPS:
                horizon = now + _EPS  # numerical nudge; completions fire below

            # 4. advance ------------------------------------------------------
            dt = horizon - now
            for m in range(num_cores):
                job = running[m]
                if job is None:
                    continue
                busy[m] += dt
                if self.collect_slices:
                    slices.append(
                        ExecutionSlice(
                            task=tasks[job.task_id].name,
                            core=m,
                            start=now,
                            end=horizon,
                        )
                    )
                job.remaining -= dt
                if job.remaining <= _EPS:
                    last_completion[job.task_id] = horizon
                    jobs_out.append(
                        JobRecord(
                            task=tasks[job.task_id].name,
                            release=job.release,
                            deadline=job.deadline,
                            start=job.start,
                            completion=horizon,
                            core=m,
                        )
                    )
                    if horizon > job.deadline + 1e-6:
                        misses.append(
                            DeadlineMiss(
                                task=tasks[job.task_id].name,
                                release=job.release,
                                deadline=job.deadline,
                            )
                        )
                    live_jobs.remove(job)
                    running[m] = None
            now = horizon

        # Jobs still unfinished at the horizon.
        for job in live_jobs:
            jobs_out.append(
                JobRecord(
                    task=tasks[job.task_id].name,
                    release=job.release,
                    deadline=job.deadline,
                    start=job.start,
                    completion=None,
                    core=job.core,
                )
            )
            if job.deadline < duration - 1e-6:
                misses.append(
                    DeadlineMiss(
                        task=tasks[job.task_id].name,
                        release=job.release,
                        deadline=job.deadline,
                    )
                )

        jobs_out.sort(key=lambda j: (j.release, j.task))
        return SimResult(
            duration=duration,
            jobs=jobs_out,
            misses=misses,
            busy_time=busy,
            slices=slices,
        )
