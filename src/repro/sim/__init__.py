"""Discrete-event scheduling simulator (the Fig. 1 substrate).

* :mod:`repro.sim.engine` — the multicore fixed-priority engine.
* :mod:`repro.sim.runner` — system+allocation → simulation bridge.
* :mod:`repro.sim.attacks` / :mod:`repro.sim.detection` — attack
  injection and detection-time measurement.
* :mod:`repro.sim.trace` — trace utilities (merge, Gantt).
"""

from repro.sim.attacks import Attack, sample_attacks, surfaces_of
from repro.sim.detection import (
    DETECTION_POLICIES,
    DetectionIndex,
    build_surface_map,
    detection_time,
    detection_times,
    undetected_breakdown,
)
from repro.sim.engine import SimResult, SimTask, Simulator
from repro.sim.events import DeadlineMiss, ExecutionSlice, JobRecord
from repro.sim.runner import build_sim_tasks, simulate_allocation
from repro.sim.stats import (
    ResponseStats,
    ResponseSummary,
    all_response_stats,
    response_stats,
    summarize_response_stats,
)
from repro.sim.trace import ascii_gantt, busy_time_by_task, merge_slices

__all__ = [
    "SimTask",
    "Simulator",
    "SimResult",
    "JobRecord",
    "ExecutionSlice",
    "DeadlineMiss",
    "build_sim_tasks",
    "simulate_allocation",
    "Attack",
    "sample_attacks",
    "surfaces_of",
    "build_surface_map",
    "detection_time",
    "detection_times",
    "undetected_breakdown",
    "DetectionIndex",
    "DETECTION_POLICIES",
    "ascii_gantt",
    "busy_time_by_task",
    "merge_slices",
    "ResponseStats",
    "ResponseSummary",
    "response_stats",
    "all_response_stats",
    "summarize_response_stats",
]
