"""Intrusion detection-time measurement (paper Sec. IV-A, Fig. 1).

The paper assumes "intrusions are correctly detected by the security
tasks (e.g., there is no false positive/negative errors)": an attack on
surface σ is noticed by the first sufficiently-fresh job of a security
task monitoring σ.  Two freshness policies are provided:

* ``"release-after"`` (default): the detecting job must have been
  *released* at or after the attack instant — the conservative reading
  (a check that was already queued may have captured pre-attack state).
* ``"start-after"``: the job must have *started executing* after the
  attack; slightly more optimistic (a queued-but-not-started check scans
  the compromised state).

Detection time is the detecting job's completion minus the attack time;
``inf`` when no qualifying job completes inside the simulated horizon.
An ``inf`` is ambiguous on its own: if *some* security task monitors the
attacked surface the sample is merely **censored** by the horizon (a
later job would have caught it), whereas an unmonitored surface is
**undetectable** forever.  :func:`undetected_breakdown` separates the
two so reports never have to print a bare ``inf``.

Scoring many attacks against one run uses :class:`DetectionIndex`: a
per-monitor anchor-sorted array with a suffix-minimum over completion
times, built once per :func:`detection_times` call, turning the naive
O(jobs × attacks) rescan into O(jobs·log jobs + attacks·log jobs).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

from repro.errors import ValidationError
from repro.model.task import SecurityTask, TaskSet
from repro.sim.attacks import Attack
from repro.sim.engine import SimResult

__all__ = [
    "build_surface_map",
    "detection_time",
    "detection_times",
    "undetected_breakdown",
    "DetectionIndex",
    "DETECTION_POLICIES",
]

DETECTION_POLICIES = ("release-after", "start-after")

#: Slack applied when comparing a job's anchor against the attack time,
#: mirroring the float tolerance of the reference scan.
_ANCHOR_TOL = 1e-9


def build_surface_map(
    security_tasks: TaskSet | Iterable[SecurityTask],
) -> dict[str, list[str]]:
    """surface → names of security tasks that monitor it."""
    result: dict[str, list[str]] = {}
    for task in security_tasks:
        if task.surface:
            result.setdefault(task.surface, []).append(task.name)
    return result


def detection_time(
    result: SimResult,
    attack: Attack,
    surface_map: Mapping[str, Sequence[str]],
    policy: str = "release-after",
) -> float:
    """Time from ``attack`` to its detection in ``result`` (or ``inf``)."""
    if policy not in DETECTION_POLICIES:
        raise ValidationError(
            f"unknown detection policy {policy!r}; expected one of "
            f"{DETECTION_POLICIES}"
        )
    monitors = surface_map.get(attack.surface, ())
    if not monitors:
        return math.inf
    monitor_set = set(monitors)
    best = math.inf
    for job in result.jobs:
        if job.task not in monitor_set or job.completion is None:
            continue
        anchor = job.release if policy == "release-after" else job.start
        if anchor is None:
            continue
        if anchor >= attack.time - 1e-9 and job.completion < best:
            best = job.completion
    if math.isinf(best):
        return math.inf
    return best - attack.time


class DetectionIndex:
    """Pre-sorted view of one run's finished monitor jobs.

    For each task the finished jobs are sorted by their policy anchor
    (release or start instant); alongside the anchors a suffix-minimum
    array of completion times answers "earliest completion among jobs
    anchored at or after *t*" with one bisection.  Queries are therefore
    exactly the reference :func:`detection_time` semantics (same anchor
    tolerance, same minimum-completion tie handling) without rescanning
    the job list per attack.
    """

    __slots__ = ("policy", "_anchors", "_earliest")

    def __init__(self, result: SimResult, policy: str = "release-after"):
        if policy not in DETECTION_POLICIES:
            raise ValidationError(
                f"unknown detection policy {policy!r}; expected one of "
                f"{DETECTION_POLICIES}"
            )
        self.policy = policy
        grouped: dict[str, list[tuple[float, float]]] = {}
        use_release = policy == "release-after"
        for job in result.jobs:
            if job.completion is None:
                continue
            anchor = job.release if use_release else job.start
            if anchor is None:
                continue
            grouped.setdefault(job.task, []).append((anchor, job.completion))
        self._anchors: dict[str, list[float]] = {}
        self._earliest: dict[str, list[float]] = {}
        for task, pairs in grouped.items():
            pairs.sort()
            anchors = [anchor for anchor, _ in pairs]
            earliest = [math.inf] * len(pairs)
            running = math.inf
            for i in range(len(pairs) - 1, -1, -1):
                running = min(running, pairs[i][1])
                earliest[i] = running
            self._anchors[task] = anchors
            self._earliest[task] = earliest

    def earliest_completion(self, task: str, after: float) -> float:
        """Earliest completion of a ``task`` job anchored ≥ ``after``
        (up to the anchor tolerance), or ``inf``."""
        anchors = self._anchors.get(task)
        if not anchors:
            return math.inf
        i = bisect_left(anchors, after - _ANCHOR_TOL)
        if i == len(anchors):
            return math.inf
        return self._earliest[task][i]

    def detection_time(
        self, attack: Attack, surface_map: Mapping[str, Sequence[str]]
    ) -> float:
        """Indexed equivalent of the module-level :func:`detection_time`."""
        monitors = surface_map.get(attack.surface, ())
        if not monitors:
            return math.inf
        best = min(
            self.earliest_completion(name, attack.time) for name in monitors
        )
        if math.isinf(best):
            return math.inf
        return best - attack.time


def detection_times(
    result: SimResult,
    attacks: Iterable[Attack],
    security_tasks: TaskSet | Iterable[SecurityTask],
    policy: str = "release-after",
) -> list[float]:
    """Detection time of every attack against one simulation run.

    Builds a :class:`DetectionIndex` once and queries it per attack;
    result-identical to calling :func:`detection_time` per attack.
    """
    surface_map = build_surface_map(security_tasks)
    index = DetectionIndex(result, policy=policy)
    return [index.detection_time(attack, surface_map) for attack in attacks]


def undetected_breakdown(
    times: Sequence[float],
    attacks: Sequence[Attack],
    surface_map: Mapping[str, Sequence[str]],
) -> tuple[int, int]:
    """Split the undetected (``inf``) samples of ``times`` into
    ``(censored, undetectable)`` counts.

    *Censored*: the attacked surface has at least one monitor, so only
    the simulation horizon prevented detection.  *Undetectable*: no
    security task monitors the surface, so no horizon would help.
    """
    if len(times) != len(attacks):
        raise ValidationError(
            f"times/attacks length mismatch: {len(times)} != {len(attacks)}"
        )
    censored = 0
    undetectable = 0
    for value, attack in zip(times, attacks):
        if not math.isinf(value):
            continue
        if surface_map.get(attack.surface):
            censored += 1
        else:
            undetectable += 1
    return censored, undetectable
