"""Intrusion detection-time measurement (paper Sec. IV-A, Fig. 1).

The paper assumes "intrusions are correctly detected by the security
tasks (e.g., there is no false positive/negative errors)": an attack on
surface σ is noticed by the first sufficiently-fresh job of a security
task monitoring σ.  Two freshness policies are provided:

* ``"release-after"`` (default): the detecting job must have been
  *released* at or after the attack instant — the conservative reading
  (a check that was already queued may have captured pre-attack state).
* ``"start-after"``: the job must have *started executing* after the
  attack; slightly more optimistic (a queued-but-not-started check scans
  the compromised state).

Detection time is the detecting job's completion minus the attack time;
``inf`` when no qualifying job completes inside the simulated horizon.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.errors import ValidationError
from repro.model.task import SecurityTask, TaskSet
from repro.sim.attacks import Attack
from repro.sim.engine import SimResult

__all__ = [
    "build_surface_map",
    "detection_time",
    "detection_times",
    "DETECTION_POLICIES",
]

DETECTION_POLICIES = ("release-after", "start-after")


def build_surface_map(
    security_tasks: TaskSet | Iterable[SecurityTask],
) -> dict[str, list[str]]:
    """surface → names of security tasks that monitor it."""
    result: dict[str, list[str]] = {}
    for task in security_tasks:
        if task.surface:
            result.setdefault(task.surface, []).append(task.name)
    return result


def detection_time(
    result: SimResult,
    attack: Attack,
    surface_map: Mapping[str, Sequence[str]],
    policy: str = "release-after",
) -> float:
    """Time from ``attack`` to its detection in ``result`` (or ``inf``)."""
    if policy not in DETECTION_POLICIES:
        raise ValidationError(
            f"unknown detection policy {policy!r}; expected one of "
            f"{DETECTION_POLICIES}"
        )
    monitors = surface_map.get(attack.surface, ())
    if not monitors:
        return math.inf
    monitor_set = set(monitors)
    best = math.inf
    for job in result.jobs:
        if job.task not in monitor_set or job.completion is None:
            continue
        anchor = job.release if policy == "release-after" else job.start
        if anchor is None:
            continue
        if anchor >= attack.time - 1e-9 and job.completion < best:
            best = job.completion
    if math.isinf(best):
        return math.inf
    return best - attack.time


def detection_times(
    result: SimResult,
    attacks: Iterable[Attack],
    security_tasks: TaskSet | Iterable[SecurityTask],
    policy: str = "release-after",
) -> list[float]:
    """Detection time of every attack against one simulation run."""
    surface_map = build_surface_map(security_tasks)
    return [
        detection_time(result, attack, surface_map, policy=policy)
        for attack in attacks
    ]
