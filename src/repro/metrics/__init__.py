"""Evaluation metrics (paper Sec. IV).

* :mod:`repro.metrics.tightness` — Eq. (2)/(3).
* :mod:`repro.metrics.acceptance` — Fig. 2's acceptance ratio.
* :mod:`repro.metrics.improvement` — scheme-vs-scheme comparisons.
* :mod:`repro.metrics.cdf` — Fig. 1's empirical CDF.
* :mod:`repro.metrics.importance` — ablation component-importance
  scoring (Sec. VI design-space study, generalised).
"""

from repro.metrics.acceptance import AcceptanceCounter, acceptance_ratio
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.importance import (
    ImportanceScore,
    rank_scores,
    score_swap,
    swap_verdict,
)
from repro.metrics.improvement import (
    acceptance_improvement,
    detection_speedup,
    tightness_gap,
)
from repro.metrics.tightness import (
    cumulative_tightness,
    tightness,
    tightness_per_task,
)

__all__ = [
    "EmpiricalCDF",
    "AcceptanceCounter",
    "ImportanceScore",
    "score_swap",
    "swap_verdict",
    "rank_scores",
    "acceptance_ratio",
    "acceptance_improvement",
    "detection_speedup",
    "tightness_gap",
    "tightness",
    "tightness_per_task",
    "cumulative_tightness",
]
