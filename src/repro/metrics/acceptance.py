"""Acceptance ratio — the Fig. 2 metric.

"The acceptance ratio is given by the number of schedulable tasksets
(e.g., that satisfy all real-time constraints) over the generated ones."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ValidationError

__all__ = ["AcceptanceCounter", "acceptance_ratio"]


def acceptance_ratio(outcomes: Iterable[bool]) -> float:
    """Fraction of ``True`` among ``outcomes``; 0.0 for an empty input."""
    total = 0
    accepted = 0
    for outcome in outcomes:
        total += 1
        accepted += bool(outcome)
    if total == 0:
        return 0.0
    return accepted / total


@dataclass
class AcceptanceCounter:
    """Streaming accept/reject tally for one (scheme, parameter) cell."""

    accepted: int = 0
    total: int = 0

    def record(self, schedulable: bool) -> None:
        self.total += 1
        if schedulable:
            self.accepted += 1

    @property
    def ratio(self) -> float:
        if self.total == 0:
            return 0.0
        return self.accepted / self.total

    def merge(self, other: "AcceptanceCounter") -> "AcceptanceCounter":
        if other.total < 0:  # pragma: no cover - defensive
            raise ValidationError("cannot merge a negative counter")
        return AcceptanceCounter(
            accepted=self.accepted + other.accepted,
            total=self.total + other.total,
        )
