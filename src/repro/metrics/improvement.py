"""Comparison metrics between allocation schemes (Figs. 1–3).

* :func:`acceptance_improvement` — the Fig. 2 y-axis.  The paper prints
  the formula ``(δ_SingleCore − δ_HYDRA)/δ_SingleCore`` while describing
  HYDRA *outperforming* SingleCore on a ``[0, 100]`` axis; taken
  literally that is ≤ 0 whenever HYDRA accepts more, so this module
  implements the described quantity — the share of HYDRA-schedulable
  task sets that SingleCore loses (see DESIGN §4 note) — and exposes the
  raw ratios so alternative formulas remain derivable.
* :func:`tightness_gap` — the Fig. 3 y-axis:
  ``Δη = (η_OPT − η_HYDRA)/η_OPT × 100``.
* :func:`detection_speedup` — Fig. 1's headline numbers ("on average
  HYDRA can provide 19.81 % … faster detection"): relative reduction of
  the mean detection time versus a baseline.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ValidationError

__all__ = [
    "acceptance_improvement",
    "tightness_gap",
    "detection_speedup",
]


def acceptance_improvement(ratio_hydra: float, ratio_single: float) -> float:
    """Fig. 2 improvement (%): fraction of HYDRA's accepted mass that
    SingleCore fails to accept.

    Returns 0 when both ratios are 0 (nothing schedulable under either
    scheme) and can go negative in the (unobserved) case where
    SingleCore accepts more.
    """
    for name, value in (("hydra", ratio_hydra), ("single", ratio_single)):
        if not (0.0 <= value <= 1.0):
            raise ValidationError(
                f"acceptance ratio ({name}) must lie in [0, 1], got {value}"
            )
    if ratio_hydra == 0.0:
        return 0.0 if ratio_single == 0.0 else -math.inf
    return (ratio_hydra - ratio_single) / ratio_hydra * 100.0


def tightness_gap(tightness_opt: float, tightness_hydra: float) -> float:
    """Fig. 3 gap (%): ``(η_OPT − η_HYDRA) / η_OPT × 100``.

    ``η_OPT`` must be positive (the paper only evaluates this over task
    sets both schemes schedule).
    """
    if tightness_opt <= 0.0:
        raise ValidationError(
            f"optimal tightness must be positive, got {tightness_opt}"
        )
    gap = (tightness_opt - tightness_hydra) / tightness_opt * 100.0
    # The heuristic cannot beat the optimum; tiny negatives are LP/greedy
    # floating-point noise and are clamped to zero.
    return 0.0 if -1e-7 < gap < 0.0 else gap


def detection_speedup(
    times_scheme: Iterable[float], times_baseline: Iterable[float]
) -> float:
    """Mean-detection-time reduction (%) of a scheme vs. a baseline.

    ``(mean_baseline − mean_scheme) / mean_baseline × 100`` over the
    finite (detected) observations; positive when the scheme detects
    faster on average.
    """
    scheme = [t for t in times_scheme if not math.isinf(t)]
    baseline = [t for t in times_baseline if not math.isinf(t)]
    if not scheme or not baseline:
        raise ValidationError(
            "need at least one detected attack per scheme to compare"
        )
    mean_scheme = sum(scheme) / len(scheme)
    mean_baseline = sum(baseline) / len(baseline)
    if mean_baseline <= 0.0:
        raise ValidationError("baseline mean detection time must be positive")
    return (mean_baseline - mean_scheme) / mean_baseline * 100.0
