"""Tightness metrics (paper Eq. 2 and Eq. 3).

``η_s = T_des_s / T_s`` measures how close a security task's achieved
period is to the desired one; the system objective is the (weighted)
cumulative tightness ``Σ ω_s η_s``.  :class:`~repro.core.allocator.Allocation`
exposes the same quantities for allocation objects; the free functions
here work on plain period mappings, which the optimisation layer and
the experiment harness produce.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ValidationError
from repro.model.task import SecurityTask

__all__ = ["tightness", "cumulative_tightness", "tightness_per_task"]


def tightness(task: SecurityTask, period: float) -> float:
    """``η = T_des / T`` with range validation (delegates to the model)."""
    return task.tightness(period)


def tightness_per_task(
    tasks: Iterable[SecurityTask], periods: Mapping[str, float]
) -> dict[str, float]:
    """name → tightness for every task present in ``periods``."""
    result: dict[str, float] = {}
    for task in tasks:
        if task.name not in periods:
            raise ValidationError(f"no period for security task {task.name!r}")
        result[task.name] = task.tightness(periods[task.name])
    return result


def cumulative_tightness(
    tasks: Iterable[SecurityTask],
    periods: Mapping[str, float],
    weights: Mapping[str, float] | None = None,
) -> float:
    """``Σ ω_s · η_s`` over ``tasks`` (``ω = 1`` when unweighted)."""
    total = 0.0
    for name, eta in tightness_per_task(tasks, periods).items():
        weight = 1.0 if weights is None else weights.get(name, 1.0)
        total += weight * eta
    return total
