"""Empirical CDF, exactly as defined under the paper's Fig. 1.

    F̂_α(ε) = (1/α) · Σ_{i=1..α} I[ζ_i ≤ ε]

where ζ_i is the i-th observed detection time and I is the indicator
function.  Observations of ``inf`` (undetected attacks) are kept: they
weigh down the CDF without ever being counted as "≤ ε", matching the
definition.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.errors import ValidationError

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """Right-continuous empirical distribution of a sample."""

    __slots__ = ("_finite", "_total")

    def __init__(self, observations: Iterable[float]) -> None:
        data = list(observations)
        if not data:
            raise ValidationError("empirical CDF needs at least one sample")
        for value in data:
            if math.isnan(value):
                raise ValidationError("NaN observation in empirical CDF")
        self._total = len(data)
        self._finite = sorted(v for v in data if not math.isinf(v))

    @property
    def sample_size(self) -> int:
        """α — total number of observations (including ``inf``)."""
        return self._total

    @property
    def undetected(self) -> int:
        """Number of ``inf`` observations (attacks never detected)."""
        return self._total - len(self._finite)

    def __call__(self, epsilon: float) -> float:
        """``F̂(ε)``: fraction of observations ≤ ``ε``."""
        return bisect_right(self._finite, epsilon) / self._total

    def series(self, xs: Sequence[float]) -> list[float]:
        """Evaluate the CDF at every point of ``xs`` (one Fig. 1 curve)."""
        return [self(x) for x in xs]

    def quantile(self, q: float) -> float:
        """Smallest observation ``v`` with ``F̂(v) ≥ q`` (``inf`` when the
        detected mass is insufficient)."""
        if not (0.0 < q <= 1.0):
            raise ValidationError(f"quantile must lie in (0, 1], got {q}")
        rank = math.ceil(q * self._total)
        if rank > len(self._finite):
            return math.inf
        return self._finite[rank - 1]

    def mean(self) -> float:
        """Mean of the observations (``inf`` when any is undetected)."""
        if self.undetected:
            return math.inf
        return sum(self._finite) / self._total

    def mean_detected(self) -> float:
        """Mean over the *detected* observations only."""
        if not self._finite:
            return math.inf
        return sum(self._finite) / len(self._finite)

    def support(self) -> tuple[float, float]:
        """(min, max) of the finite observations."""
        if not self._finite:
            return (math.inf, math.inf)
        return (self._finite[0], self._finite[-1])
