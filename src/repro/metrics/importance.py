"""Component-importance scoring for ablation studies.

An ablation study runs a *baseline* configuration plus one *variant*
per registered component, where the variant swaps exactly one baseline
component for the alternative under test.  The importance of a
baseline component — how much the metric degrades when it is replaced
by a given alternative — is then plain arithmetic over the paired
metric values, and this module keeps that arithmetic pure and
stateless so it can be property-tested in isolation (no engine, no
RNG):

* :func:`score_swap` — one ``(axis, component)`` swap against the
  baseline → an :class:`ImportanceScore` holding the per-metric deltas.
* :func:`rank_scores` — a deterministic total order over scores (most
  important first); invariant under run-set ordering by construction.
* :func:`swap_verdict` — the human-facing classification of one swap:
  ``load-bearing`` (replacing the baseline component hurts),
  ``harmful`` (replacing it *helps* — the baseline choice is flagged),
  or ``neutral``.

Sign conventions, fixed here once for every consumer:

* ``delta(metric)   = variant − baseline`` (what the swap did to the
  metric);
* ``importance(metric) = baseline − variant = −delta`` (how much the
  incumbent was worth; positive means the baseline component carries
  weight);
* a swap is *harmful on a metric* iff ``delta > 0`` — removing the
  incumbent improved the metric, exactly the "harmful component" flag
  of the ablation literature.

Metrics are "higher is better" throughout (acceptance ratio, mean
tightness — see :mod:`repro.metrics.acceptance` and
:mod:`repro.metrics.tightness`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import ValidationError

__all__ = [
    "ImportanceScore",
    "score_swap",
    "rank_scores",
    "swap_verdict",
    "VERDICT_LOAD_BEARING",
    "VERDICT_NEUTRAL",
    "VERDICT_HARMFUL",
]

VERDICT_LOAD_BEARING = "load-bearing"
VERDICT_NEUTRAL = "neutral"
VERDICT_HARMFUL = "harmful"


@dataclass(frozen=True)
class ImportanceScore:
    """Per-metric deltas of swapping one baseline component.

    ``axis`` names the design axis (``"heuristic"``, ``"allocator"``,
    …), ``component`` the alternative that was swapped *in*, and
    ``deltas`` holds ``(metric, variant − baseline)`` pairs in the
    study's metric-priority order (first metric ranks first).
    """

    axis: str
    component: str
    deltas: tuple[tuple[str, float], ...]

    @property
    def metrics(self) -> tuple[str, ...]:
        return tuple(metric for metric, _ in self.deltas)

    def delta(self, metric: str) -> float:
        """``variant − baseline`` on ``metric``."""
        for name, value in self.deltas:
            if name == metric:
                return value
        raise ValidationError(
            f"score for {self.axis}={self.component} has no metric "
            f"{metric!r}; scored metrics: {list(self.metrics)}"
        )

    def importance(self, metric: str) -> float:
        """``baseline − variant``: positive means the baseline
        component is load-bearing on ``metric``."""
        return -self.delta(metric)

    def harmful(self, metric: str) -> bool:
        """Whether the swap *improved* ``metric`` — i.e. the baseline
        component is harmful by this metric's account."""
        return self.delta(metric) > 0


def score_swap(
    axis: str,
    component: str,
    baseline: Mapping[str, float],
    variant: Mapping[str, float],
    metrics: Sequence[str],
) -> ImportanceScore:
    """Score one swap: ``metrics`` are looked up in both mappings and
    differenced (``variant − baseline``).

    ``metrics`` fixes the priority order used by :func:`rank_scores`
    and :func:`swap_verdict`; every named metric must be present in
    both mappings (a missing metric is a programming error surfaced as
    a typed :class:`~repro.errors.ValidationError`, not a silent 0).
    """
    if not metrics:
        raise ValidationError("score_swap needs at least one metric")
    deltas = []
    for metric in metrics:
        if metric not in baseline or metric not in variant:
            raise ValidationError(
                f"cannot score {axis}={component}: metric {metric!r} "
                f"missing (baseline has {sorted(baseline)}, variant "
                f"has {sorted(variant)})"
            )
        deltas.append(
            (metric, float(variant[metric]) - float(baseline[metric]))
        )
    return ImportanceScore(
        axis=axis, component=component, deltas=tuple(deltas)
    )


def swap_verdict(score: ImportanceScore) -> str:
    """Classify one swap lexicographically over its metric order.

    The first metric with a non-zero delta decides: delta > 0 →
    ``"harmful"`` (the baseline component's removal improves the
    study's highest-priority differing metric), delta < 0 →
    ``"load-bearing"``.  All-zero deltas → ``"neutral"`` (the
    baseline-identity case).
    """
    for _, delta in score.deltas:
        if delta > 0:
            return VERDICT_HARMFUL
        if delta < 0:
            return VERDICT_LOAD_BEARING
    return VERDICT_NEUTRAL


def rank_scores(
    scores: Iterable[ImportanceScore],
) -> tuple[ImportanceScore, ...]:
    """Most-important-first total order over ``scores``.

    Sorts by importance on each metric in priority order (descending),
    breaking exact ties by ``(axis, component)`` — a *total* order, so
    the ranking is invariant to the order the run set was generated or
    executed in (property-tested in
    ``tests/metrics/test_importance_properties.py``).
    """
    ranked = sorted(
        scores,
        key=lambda s: (
            tuple(-s.importance(m) for m in s.metrics),
            s.axis,
            s.component,
        ),
    )
    return tuple(ranked)
