"""Minimal asyncio HTTP/1.1 shell around :class:`JobServiceApp`.

The container this project targets ships no web framework, and the
service surface is five JSON routes — so rather than gate the server
behind an optional dependency, this module speaks just enough
HTTP/1.1 with :mod:`asyncio` streams: parse the request line, headers
and a ``Content-Length`` body; call the transport-agnostic app (in a
thread, so a long sweep never blocks the event loop's health checks);
write a JSON response; close.  ``Connection: close`` per request keeps
the state machine trivial — sweep submissions are not a
high-QPS workload.

The parsing/rendering halves (:func:`read_request`,
:func:`render_response`) are pure functions of streams/values and are
unit-tested without sockets; only :func:`serve` touches the network.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any
from urllib.parse import unquote, urlsplit

from repro.server.app import JobServiceApp

__all__ = ["read_request", "render_response", "serve"]

log = logging.getLogger("repro.server")

#: Request bodies above this are rejected outright (413); a sweep spec
#: is a few KB, so 8 MiB is generous headroom, not a real limit.
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    414: "URI Too Long",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


class BadRequest(ValueError):
    """The bytes on the wire were not a parsable HTTP request."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, Any] | None]:
    """Parse one request off ``reader`` → ``(method, path, json_body)``.

    Returns the decoded (unquoted, query-stripped) path.  Raises
    :class:`BadRequest` for malformed framing or non-JSON bodies and
    :class:`ConnectionError` for a peer that vanished mid-request.
    """
    # StreamReader.readline raises ValueError (from LimitOverrunError)
    # when a line exceeds the reader's limit (64 KiB by default); map
    # that to a 4xx instead of dropping the connection responseless.
    try:
        request_line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError):
        raise BadRequest(414, "request line too long") from None
    if not request_line:
        raise ConnectionError("peer closed before sending a request")
    try:
        method, target, _version = (
            request_line.decode("latin-1").strip().split(" ", 2)
        )
    except ValueError:
        raise BadRequest(400, "malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise BadRequest(431, "header line too long") from None
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequest(400, "invalid Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body: dict[str, Any] | None = None
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(400, f"request body is not JSON: {exc}") \
                from None
    path = unquote(urlsplit(target).path)
    return method, path, body


def render_response(status: int, payload: dict[str, Any]) -> bytes:
    """Serialise one ``(status, payload)`` pair as an HTTP/1.1
    response (JSON body, ``Connection: close``)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def handle_connection(
    app: JobServiceApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:  # pragma: no cover - exercised via live `serve` only
    """Serve one connection: read a request, run the app off-loop,
    write the response, close."""
    try:
        try:
            method, path, body = await read_request(reader)
        except BadRequest as exc:
            writer.write(render_response(
                exc.status,
                {"error": {"type": "BadRequest", "message": str(exc)}},
            ))
            await writer.drain()
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        loop = asyncio.get_running_loop()
        # Sweeps run for seconds-to-minutes; keep the loop free so
        # /healthz and status polls stay responsive meanwhile.
        status, payload = await loop.run_in_executor(
            None, app.handle, method, path, body
        )
        writer.write(render_response(status, payload))
        await writer.drain()
    except Exception:
        log.exception("error serving request")
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve(
    app: JobServiceApp,
    host: str = "127.0.0.1",
    port: int = 8177,
) -> None:  # pragma: no cover - needs a live socket
    """Run the service on ``host:port`` until cancelled."""
    server = await asyncio.start_server(
        lambda r, w: handle_connection(app, r, w), host, port
    )
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets
    )
    log.info("serving sweep jobs on %s", addresses)
    async with server:
        await server.serve_forever()


def run_server(
    app: JobServiceApp,
    host: str = "127.0.0.1",
    port: int = 8177,
) -> None:  # pragma: no cover - needs a live socket
    """Blocking entry point for the CLI: serve until interrupted."""
    asyncio.run(serve(app, host, port))
