"""The sweep service's request routing, independent of any transport.

:class:`JobServiceApp` maps ``(method, path, body)`` triples onto a
:class:`~repro.jobs.JobRunner` and returns ``(status, payload)``
pairs — plain data in, plain data out.  The HTTP layer
(:mod:`repro.server.http`) is a thin byte-shuffling shell around
:meth:`JobServiceApp.handle`, which means the entire service surface
is testable in-process with zero sockets, and a different transport
(unix socket, message queue) could reuse the same routing verbatim.

Routes
------
``GET /healthz``
    Liveness probe: ``{"status": "ok"}``.
``POST /jobs``
    Submit a sweep.  The body is a :class:`~repro.jobs.JobRequest`
    document (``{"spec": <sweep doc>, "scale": ...}`` or
    ``{"experiment": <name>, ...}``; a bare TOML-grid document also
    works).  Idempotent: a duplicate spec returns the same job id, and
    against a warm cache the job completes without recomputing —
    ``200`` with state ``done`` instead of ``202``.
``GET /jobs`` / ``GET /jobs/{id}``
    Job status documents (state, progress counters, error).
``GET /jobs/{id}/result``
    The finished job's typed
    :class:`~repro.experiments.api.ExperimentResult` as JSON, served
    through a ``readonly=True`` store (zero writes); ``409`` while the
    job is not done.
``DELETE /jobs/{id}``
    Cooperative cancel; returns the (possibly already terminal) status
    document.

Errors are uniform ``{"error": {"type": ..., "message": ...}}``
payloads: ``400`` for invalid submissions (``ValidationError`` /
``ConfigError`` and friends), ``404`` for unknown jobs or paths,
``405`` for unsupported methods, ``409`` for premature result fetches,
``500`` for cache faults.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import (
    CacheError,
    ConfigError,
    ReproError,
    UnknownJobError,
    ValidationError,
)
from repro.jobs import JobRequest, JobRunner, JobState

__all__ = ["JobServiceApp"]


def _error(status: int, exc_type: str, message: str) -> tuple[int, dict]:
    return status, {"error": {"type": exc_type, "message": message}}


class JobServiceApp:
    """Route service requests onto a :class:`~repro.jobs.JobRunner`."""

    def __init__(self, runner: JobRunner) -> None:
        self.runner = runner

    def handle(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Dispatch one request; returns ``(status, payload)``.

        Never raises for request-level problems — every typed library
        error is mapped to a status + uniform error payload, so
        transports only deal with transport failures.
        """
        try:
            return self._route(method.upper(), path.rstrip("/") or "/", body)
        except UnknownJobError as exc:
            return _error(404, "UnknownJobError", str(exc))
        except (ValidationError, ConfigError) as exc:
            return _error(400, type(exc).__name__, str(exc))
        except CacheError as exc:
            return _error(500, "CacheError", str(exc))
        except ReproError as exc:  # pragma: no cover - safety net
            return _error(500, type(exc).__name__, str(exc))

    # -- routing ---------------------------------------------------------

    def _route(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None,
    ) -> tuple[int, dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return _error(405, "MethodNotAllowed",
                              f"{method} not allowed on {path}")
            return 200, {"status": "ok"}
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return 200, {
                    "jobs": [job.to_dict() for job in self.runner.jobs()]
                }
            return _error(405, "MethodNotAllowed",
                          f"{method} not allowed on {path}")
        parts = path.strip("/").split("/")
        if parts[0] == "jobs" and len(parts) == 2:
            return self._job(method, parts[1])
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "result":
            return self._result(method, parts[1])
        return _error(404, "NotFound", f"no route for {path}")

    def _submit(
        self, body: Mapping[str, Any] | None
    ) -> tuple[int, dict[str, Any]]:
        if body is None:
            raise ValidationError(
                "POST /jobs needs a JSON body (a job request document)"
            )
        job = self.runner.submit(JobRequest.from_dict(body))
        # A warm-cache duplicate is already terminal: report 200, not
        # "accepted for processing".
        status = 200 if job.state in JobState.TERMINAL else 202
        return status, job.to_dict()

    def _job(self, method: str, job_id: str) -> tuple[int, dict[str, Any]]:
        if method == "GET":
            return 200, self.runner.get(job_id).to_dict()
        if method == "DELETE":
            return 200, self.runner.cancel(job_id).to_dict()
        return _error(405, "MethodNotAllowed",
                      f"{method} not allowed on /jobs/{{id}}")

    def _result(
        self, method: str, job_id: str
    ) -> tuple[int, dict[str, Any]]:
        if method != "GET":
            return _error(405, "MethodNotAllowed",
                          f"{method} not allowed on /jobs/{{id}}/result")
        job = self.runner.get(job_id)
        if job.state != JobState.DONE:
            return _error(
                409,
                "JobNotDone",
                f"job {job_id!r} is {job.state}; the result exists only "
                f"once it is done",
            )
        return 200, self.runner.result(job_id).to_dict()
