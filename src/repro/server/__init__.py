"""Async HTTP layer over :mod:`repro.jobs` — the sweep service.

Split in two so the service is fully testable without sockets:

* :class:`JobServiceApp` (:mod:`repro.server.app`) — transport
  -agnostic routing: ``(method, path, body) → (status, payload)``.
* :mod:`repro.server.http` — a small stdlib-:mod:`asyncio` HTTP/1.1
  shell (no web-framework dependency) that feeds the app and serves
  it on a socket; ``repro-hydra serve`` is its CLI entry.
"""

from repro.server.app import JobServiceApp
from repro.server.http import run_server, serve

__all__ = ["JobServiceApp", "run_server", "serve"]
