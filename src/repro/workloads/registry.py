"""The workload registry: one decorator turns a generator into an axis.

Mirrors :mod:`repro.allocators.registry`: workload families
self-register with :func:`register_workload` ::

    @register_workload(
        "my-workload",
        title="My workload shape in one line",
        tags=("extension",),
    )
    class MyWorkload(WorkloadGenerator):
        name = "my-workload"
        def generate(self, platform, total_utilization, rng): ...

and every consumer — TOML scenario grids (``[grid] workload =
[...]``), ``repro-hydra workloads``, the ``--workload`` CLI override,
the ``workload-sample`` point runner — resolves generators through
this table instead of importing :mod:`repro.taskgen` recipes directly.
Anything registered before :func:`repro.cli.main` runs is sweepable
with no driver code.

Spec strings double as sweep-cell label prefixes: every built-in
factory produces a generator whose ``name`` attribute equals its
registry spec, so a ``uunifast::hydra|best-fit/rm/rta`` scheme label
can always be resolved back to the family that generated its task
sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticWorkload
from repro.workloads.api import WorkloadGenerator

__all__ = [
    "WorkloadInfo",
    "UnknownWorkloadError",
    "register_workload",
    "unregister_workload",
    "get_workload",
    "get_workload_info",
    "workload_names",
    "iter_workload_info",
    "run_workload",
    "run_workload_batch",
]


class UnknownWorkloadError(ConfigError):
    """Raised when a spec resolves to no registered workload generator."""


@dataclass(frozen=True)
class WorkloadInfo:
    """Registry metadata of one workload family.

    Attributes
    ----------
    name:
        Registry spec — what TOML grids and ``--workload`` accept.
    title:
        One-line human title (``repro-hydra workloads`` shows it).
    description:
        What the family varies relative to the paper's Sec. IV-B recipe.
    tags:
        Free-form labels (``"paper"``, ``"periods"``, ``"case-study"`` …).
    factory:
        Zero-argument callable producing a ready
        :class:`~repro.workloads.api.WorkloadGenerator`.
    """

    name: str
    title: str
    description: str = ""
    tags: tuple[str, ...] = ()
    factory: Callable[[], WorkloadGenerator] = field(repr=False, default=None)  # type: ignore[assignment]

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
        }


#: spec → registered family metadata (registration order preserved).
_REGISTRY: dict[str, WorkloadInfo] = {}


def _ensure_builtin_workloads() -> None:
    from importlib import import_module

    import_module("repro.workloads.builtin")


def register_workload(
    name: str | None = None,
    *,
    title: str = "",
    description: str = "",
    tags: tuple[str, ...] = (),
    replace: bool = False,
) -> Callable:
    """Class/factory decorator registering a family under ``name``.

    ``name`` defaults to the class's ``name`` attribute.  Registering a
    taken spec raises unless ``replace=True`` (plugins overriding a
    built-in must say so explicitly).
    """

    def decorate(factory: Callable[[], WorkloadGenerator]):
        # Load the built-ins first (re-entrant during their own import):
        # a plugin claiming a built-in name before any lookup happened
        # must still hit the collision check, not shadow it silently.
        _ensure_builtin_workloads()
        key = name or getattr(factory, "name", "")
        if not key:
            raise ConfigError(
                "workload generator needs a registry name (decorator "
                "argument or a 'name' class attribute)"
            )
        if key in _REGISTRY and not replace:
            raise ConfigError(
                f"workload {key!r} already registered; pass replace=True "
                f"to override"
            )
        _REGISTRY[key] = WorkloadInfo(
            name=key,
            title=title or getattr(factory, "__doc__", "") or key,
            description=description,
            tags=tuple(tags),
            factory=factory,
        )
        return factory

    return decorate


def unregister_workload(name: str) -> None:
    """Remove ``name`` from the registry (test/plugin hygiene helper)."""
    _REGISTRY.pop(name, None)


def get_workload_info(spec: str) -> WorkloadInfo:
    """The registry entry for ``spec``.

    Raises :class:`UnknownWorkloadError` naming every known spec —
    the CLI and the TOML validator turn this into a helpful hint.
    """
    _ensure_builtin_workloads()
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {spec!r}; known workloads: "
            f"{', '.join(sorted(_REGISTRY))} "
            f"(see 'repro-hydra workloads')"
        ) from None


def get_workload(spec: str) -> WorkloadGenerator:
    """Instantiate the family registered under ``spec``."""
    return get_workload_info(spec).factory()


def workload_names() -> list[str]:
    """Every registered spec, in registration order."""
    _ensure_builtin_workloads()
    return list(_REGISTRY)


def iter_workload_info() -> Iterator[WorkloadInfo]:
    """Registry entries of every family, in registration order."""
    _ensure_builtin_workloads()
    yield from _REGISTRY.values()


def _resolve(
    workload: str | WorkloadGenerator,
) -> WorkloadGenerator:
    if isinstance(workload, str):
        return get_workload(workload)
    return workload


def run_workload(
    workload: str | WorkloadGenerator,
    platform: Platform | int,
    total_utilization: float,
    rng: np.random.Generator | int | None = None,
) -> SyntheticWorkload:
    """Resolve (if needed) and run one generator at one target.

    The uniform entry point of the workload API, mirroring
    :func:`repro.allocators.run_allocator`: accepts either a registry
    spec or a ready :class:`WorkloadGenerator`.
    """
    return _resolve(workload).generate(platform, total_utilization, rng)


def run_workload_batch(
    workload: str | WorkloadGenerator,
    platform: Platform | int,
    total_utilizations: Sequence[float],
    rng: np.random.Generator | int | None = None,
) -> list[SyntheticWorkload]:
    """Batch counterpart of :func:`run_workload` (vectorised where the
    family supports it)."""
    return _resolve(workload).generate_batch(
        platform, total_utilizations, rng
    )
