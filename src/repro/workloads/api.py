"""The workload-generator protocol and its serialised form.

A *workload generator* is the supply side of the design space: given a
platform, a target utilisation, and a random stream, it produces one
:class:`~repro.taskgen.synthetic.SyntheticWorkload` (real-time tasks +
security tasks).  Every generator implements this one protocol and
registers itself with :func:`repro.workloads.register_workload`, after
which TOML scenario grids (``[grid] workload = [...]``), the
``repro-hydra workloads`` / ``--workload`` CLI surface, and the point
runners all reach it by spec string.

Contract (audited for every registered generator by
``tests/workloads/test_workload_properties.py``):

* all WCETs strictly positive;
* same stream ⇒ byte-identical task sets (serial and pooled runs
  included — generators must draw *only* from the ``rng`` they are
  given);
* when the generator is synthetic-recipe-backed (``config`` is not
  ``None``): task counts and periods inside the configured bounds,
  achieved total utilisation on target, and desired security
  utilisation at most ``security_utilization_fraction`` of the
  real-time utilisation;
* fixed-point case studies (tag ``"case-study"``) may ignore the
  utilisation target — their parameters *are* the workload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

import numpy as np

from repro.io import taskset_from_dict, taskset_to_dict
from repro.model.platform import Platform
from repro.taskgen.synthetic import SyntheticConfig, SyntheticWorkload

__all__ = ["WorkloadGenerator", "workload_to_dict", "workload_from_dict"]


class WorkloadGenerator(ABC):
    """One workload family: ``generate(platform, U, rng) -> workload``.

    Attributes
    ----------
    name:
        Registry spec; must equal the name the generator is registered
        under (spec strings double as sweep-cell label prefixes).
    config:
        The :class:`SyntheticConfig` describing the generator's bounds
        when it is built on the synthetic recipe, else ``None`` (fixed
        case studies).  The shared property suite derives its
        period/count/cap assertions from it.
    """

    name: str = ""
    config: SyntheticConfig | None = None

    @abstractmethod
    def generate(
        self,
        platform: Platform | int,
        total_utilization: float,
        rng: np.random.Generator | int | None = None,
    ) -> SyntheticWorkload:
        """One task-set instance at the target utilisation."""

    def generate_batch(
        self,
        platform: Platform | int,
        total_utilizations: Sequence[float],
        rng: np.random.Generator | int | None = None,
    ) -> list[SyntheticWorkload]:
        """One instance per target, drawn from a single stream.

        The default is the per-instance loop; recipe-backed generators
        override it with the vectorised
        :func:`~repro.taskgen.synthetic.generate_workload_batch` hot
        path.  Either way a batch is deterministic for a given stream.
        """
        if isinstance(rng, int) or rng is None:
            rng = np.random.default_rng(rng)
        return [
            self.generate(platform, target, rng)
            for target in total_utilizations
        ]


def workload_to_dict(workload: SyntheticWorkload) -> dict[str, Any]:
    """Plain-JSON form of one generated instance (stable keys).

    The canonical JSON of this dict is what the determinism tests and
    the ``workload-sample`` point runner byte-compare; the task content
    round-trips through :mod:`repro.io`.
    """
    return {
        "cores": workload.platform.num_cores,
        "target_utilization": workload.target_utilization,
        "rt_tasks": taskset_to_dict(workload.rt_tasks),
        "security_tasks": taskset_to_dict(workload.security_tasks),
    }


def workload_from_dict(data: Mapping[str, Any]) -> SyntheticWorkload:
    """Inverse of :func:`workload_to_dict` (default recipe config)."""
    return SyntheticWorkload(
        platform=Platform(int(data["cores"])),
        rt_tasks=taskset_from_dict(data["rt_tasks"]),
        security_tasks=taskset_from_dict(data["security_tasks"]),
        target_utilization=float(data["target_utilization"]),
    )
