"""The ``workload-sample`` point runner: generate, serialise, return.

The smallest possible sweep kind — one generated instance per point,
returned as the plain-JSON form of :func:`workload_to_dict`.  It
exists so workload generation itself rides the engine's determinism
contract: the property suite byte-compares serial, pooled, and cached
runs of the same spec, which proves a generator draws only from the
stream it is handed (a generator touching global randomness or worker
state cannot pass).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.experiments.parallel import register_point_runner
from repro.workloads.api import workload_to_dict
from repro.workloads.registry import run_workload

__all__ = ["run_workload_sample_point"]


@register_point_runner("workload-sample")
def run_workload_sample_point(
    point: Mapping[str, Any],
    params: Mapping[str, Any],
    rng: np.random.Generator,
) -> dict[str, Any]:
    """One generated instance of ``params["workload"]`` at the point's
    utilisation, serialised for byte comparison."""
    workload = run_workload(
        params["workload"],
        int(params["cores"]),
        float(point["utilization"]),
        rng,
    )
    return {"workload": workload_to_dict(workload)}
