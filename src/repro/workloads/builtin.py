"""Registration of every built-in workload family.

Imported lazily by the registry (:func:`_ensure_builtin_workloads`),
so ``import repro.workloads`` alone stays cheap.  Spec strings equal
the produced generators' ``name`` attributes — sweep-cell label
prefixes survive the trip through a JSON sweep spec and resolve back
to the family that generated the task sets.

The table below is the workload side of the design space: the paper's
Sec. IV-B recipe (``paper-synthetic``, byte-identical to calling
:func:`repro.taskgen.synthetic.generate_workload` directly), the
UUniFast splitter pair, the period-regime variants (every order of
magnitude equally likely vs. plain uniform vs. harmonic powers of
two), a heavy-security profile in the spirit of Contego / the period-
adaptation follow-ups (Hasan et al. 2017/2019), and the two fixed
case studies (Sec. IV-A UAV + the Table I Tripwire/Bro suite).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.model.platform import Platform
from repro.model.task import TaskSet
from repro.taskgen.security_apps import table1_security_tasks
from repro.taskgen.synthetic import (
    SyntheticConfig,
    SyntheticWorkload,
    generate_workload,
    generate_workload_batch,
)
from repro.taskgen.uav import uav_rt_tasks
from repro.workloads.api import WorkloadGenerator
from repro.workloads.registry import register_workload

__all__ = [
    "SyntheticRecipeWorkload",
    "CaseStudyWorkload",
    "heavy_security_workload",
]


class SyntheticRecipeWorkload(WorkloadGenerator):
    """A family built on the Sec. IV-B recipe: one config, one splitter.

    ``generate`` delegates to :func:`generate_workload` (so the
    ``paper-synthetic`` instance is byte-identical to direct calls) and
    ``generate_batch`` to the vectorised
    :func:`generate_workload_batch` hot path.
    """

    def __init__(
        self,
        name: str,
        config: SyntheticConfig | None = None,
        split: str = "randfixedsum",
    ) -> None:
        self.name = name
        self.config = config if config is not None else SyntheticConfig()
        self.split = split

    def generate(
        self,
        platform: Platform | int,
        total_utilization: float,
        rng: np.random.Generator | int | None = None,
    ) -> SyntheticWorkload:
        return generate_workload(
            platform, total_utilization, rng, self.config, split=self.split
        )

    def generate_batch(
        self,
        platform: Platform | int,
        total_utilizations: Sequence[float],
        rng: np.random.Generator | int | None = None,
    ) -> list[SyntheticWorkload]:
        return generate_workload_batch(
            platform, total_utilizations, rng, self.config, split=self.split
        )


class CaseStudyWorkload(WorkloadGenerator):
    """A fixed-point family: the parameters *are* the workload.

    Ignores the utilisation target and the random stream entirely —
    every call returns the same task sets (rebuilt from the factories,
    so instances never share mutable state).  ``config`` is ``None``:
    the shared property suite only holds fixed families to positivity
    and determinism, not to the synthetic recipe's bounds.
    """

    config = None

    def __init__(
        self,
        name: str,
        rt_factory: Callable[[], TaskSet],
        security_factory: Callable[[], TaskSet],
    ) -> None:
        self.name = name
        self._rt_factory = rt_factory
        self._security_factory = security_factory

    def generate(
        self,
        platform: Platform | int,
        total_utilization: float,
        rng: np.random.Generator | int | None = None,
    ) -> SyntheticWorkload:
        if isinstance(platform, int):
            platform = Platform(platform)
        rt_tasks = self._rt_factory()
        security_tasks = self._security_factory()
        achieved = sum(t.utilization for t in rt_tasks) + sum(
            t.utilization_des for t in security_tasks
        )
        return SyntheticWorkload(
            platform=platform,
            rt_tasks=rt_tasks,
            security_tasks=security_tasks,
            target_utilization=achieved,
        )


def heavy_security_workload(
    security_utilization_fraction: float = 0.6,
    security_tasks_per_core: tuple[int, int] = (4, 10),
    name: str = "heavy-security",
) -> SyntheticRecipeWorkload:
    """The heavy-security profile, knobs exposed.

    The paper fixes the security share of the load at 30% of the
    real-time utilisation with 2–5 security tasks per core; monitoring-
    heavy deployments (Contego-style continuous checking) push both.
    The registered instance doubles the fraction and the per-core task
    count; build your own with different knobs and register it under a
    new name for a custom profile sweep.
    """
    config = SyntheticConfig(
        security_utilization_fraction=security_utilization_fraction,
        security_tasks_per_core=tuple(security_tasks_per_core),
    )
    return SyntheticRecipeWorkload(name, config)


register_workload(
    "paper-synthetic",
    title="The paper's Sec. IV-B recipe (Randfixedsum, log-uniform periods)",
    description=(
        "Byte-identical to calling generate_workload directly: "
        "Randfixedsum utilisation split, log-uniform periods, 3-10 "
        "real-time and 2-5 security tasks per core, security share "
        "30% of the real-time utilisation."
    ),
    tags=("paper",),
)(lambda: SyntheticRecipeWorkload("paper-synthetic"))

register_workload(
    "uunifast",
    title="Classic UUniFast utilisation split (Bini & Buttazzo 2005)",
    description=(
        "The paper's recipe with Randfixedsum swapped for the O(n) "
        "UUniFast splitter; components are unbounded above, so "
        "multicore draws are projected back into [floor, 1] while "
        "keeping the target sum exact."
    ),
    tags=("splitter",),
)(lambda: SyntheticRecipeWorkload("uunifast", split="uunifast"))

register_workload(
    "uunifast-discard",
    title="UUniFast-Discard split (Emberson et al. 2010)",
    description=(
        "UUniFast with inadmissible vectors (any per-task utilisation "
        "above 1) resampled until every draw fits a core — the "
        "standard unbiased multicore variant."
    ),
    tags=("splitter",),
)(lambda: SyntheticRecipeWorkload(
    "uunifast-discard", split="uunifast-discard"
))

register_workload(
    "uniform-periods",
    title="Paper recipe with plain-uniform period sampling",
    description=(
        "Periods drawn uniformly from the paper's ranges instead of "
        "log-uniformly: long-period tasks dominate, so per-task "
        "utilisations ride on much larger WCETs."
    ),
    tags=("periods",),
)(lambda: SyntheticRecipeWorkload(
    "uniform-periods",
    SyntheticConfig(period_distribution="uniform"),
))

register_workload(
    "harmonic-periods",
    title="Paper recipe with harmonic (power-of-two) periods",
    description=(
        "Every period is a power-of-two multiple of the range's lower "
        "bound, so each period divides every longer one — tiny "
        "hyperperiods, the classic best case for rate-monotonic "
        "analysis."
    ),
    tags=("periods",),
)(lambda: SyntheticRecipeWorkload(
    "harmonic-periods",
    SyntheticConfig(period_distribution="harmonic"),
))

register_workload(
    "heavy-security",
    title="Monitoring-heavy profile: 60% security share, 4-10 tasks/core",
    description=(
        "The synthetic recipe with the security share of the load "
        "doubled to 60% of the real-time utilisation and 4-10 "
        "security tasks per core — the continuous-monitoring regime "
        "of Contego / the period-adaptation follow-ups (Hasan et al. "
        "2017/2019).  heavy_security_workload() exposes both knobs "
        "for custom profiles."
    ),
    tags=("profile",),
)(heavy_security_workload)

register_workload(
    "uav-case-study",
    title="Fixed Sec. IV-A case study: UAV flight control + Table I suite",
    description=(
        "The six UAV real-time tasks (fast/slow navigation, "
        "controller, guidance, missile control, reconnaissance) "
        "paired with the six Tripwire/Bro security tasks of Table I. "
        "Fixed-point: ignores the utilisation target and the random "
        "stream."
    ),
    tags=("case-study", "paper"),
)(lambda: CaseStudyWorkload(
    "uav-case-study", uav_rt_tasks, table1_security_tasks
))

register_workload(
    "table1-suite",
    title="Fixed Table I security suite on an otherwise idle platform",
    description=(
        "The six Tripwire/Bro security tasks with no real-time load "
        "at all — isolates how a strategy spreads the monitoring "
        "suite itself.  Fixed-point: ignores the utilisation target "
        "and the random stream."
    ),
    tags=("case-study",),
)(lambda: CaseStudyWorkload(
    "table1-suite", lambda: TaskSet([]), table1_security_tasks
))
