"""First-class workload API: one protocol, one registry, shared recipes.

The paper's evaluation rests on a single synthetic recipe; its
conclusions are about how allocation behaves across *workload shapes*.
This package makes the workload a first-class, sweepable axis.  Every
family implements the single
:class:`~repro.workloads.api.WorkloadGenerator` protocol
(``generate(platform, total_utilization, rng) -> SyntheticWorkload``),
registers itself with :func:`register_workload`, and is then reachable
everywhere by spec string — TOML scenario grids (``[grid] workload =
[...]``), the ``repro-hydra workloads`` / ``--workload`` CLI surface,
and the point runners — with no driver code.

:func:`run_workload` is the uniform entry point, mirroring
:func:`repro.allocators.run_allocator`; :func:`run_workload_batch`
rides the vectorised generation hot path
(:func:`repro.taskgen.synthetic.generate_workload_batch`) where the
family supports it.

See README "Writing a new workload generator" for the plugin recipe.
"""

from repro.workloads.api import (
    WorkloadGenerator,
    workload_from_dict,
    workload_to_dict,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadInfo,
    get_workload,
    get_workload_info,
    iter_workload_info,
    register_workload,
    run_workload,
    run_workload_batch,
    unregister_workload,
    workload_names,
)

__all__ = [
    "WorkloadGenerator",
    "WorkloadInfo",
    "UnknownWorkloadError",
    "register_workload",
    "unregister_workload",
    "get_workload",
    "get_workload_info",
    "workload_names",
    "iter_workload_info",
    "run_workload",
    "run_workload_batch",
    "workload_to_dict",
    "workload_from_dict",
]
