"""Registration of every built-in allocation strategy.

Imported lazily by the registry (:func:`_ensure_builtin_allocators`),
so ``import repro.allocators`` alone stays cheap.  Spec strings equal
the produced allocators' ``name`` attributes — report labels survive
the trip through a JSON sweep spec and resolve back to a strategy.

The table below is the design space the paper explores: the HYDRA
greedy (with its solver variants exercising :mod:`repro.opt.period` and
:mod:`repro.opt.gp`), the SingleCore and OPT baselines (the latter via
:mod:`repro.opt.exhaustive` / :mod:`repro.opt.branch_bound`, each
assignment scored by the :mod:`repro.opt.joint` LP), the LP-refined
extension, the cheap greedy ablation rules, and the classic
bin-packing family of :mod:`repro.allocators.binpack`.
"""

from __future__ import annotations

from repro.allocators.adaptive import AdaptiveAllocator
from repro.allocators.binpack import BIN_PACKING_RULES, BinPackingAllocator
from repro.allocators.registry import register_allocator
from repro.core.hydra import HydraAllocator
from repro.core.nonpreemptive import NonPreemptiveHydraAllocator
from repro.core.optimal import OptimalAllocator
from repro.core.singlecore import SingleCoreAllocator
from repro.core.variants import (
    FirstFeasibleAllocator,
    LpRefinedHydraAllocator,
    SlackiestCoreAllocator,
)

register_allocator(
    "hydra",
    title="HYDRA (Algorithm 1): argmax-tightness greedy",
    description=(
        "The paper's algorithm: per security task, solve Eq. (7) on "
        "every core and take the core with the best tightness."
    ),
    tags=("paper", "greedy"),
)(HydraAllocator)

register_allocator(
    "hydra[gp]",
    title="HYDRA with the geometric-program inner solver",
    description=(
        "Same optimum as the closed form, but each Eq. (7) solve runs "
        "through the interior-point GP pipeline (repro.opt.gp) — the "
        "paper's actual solution route."
    ),
    tags=("paper", "greedy", "gp"),
)(lambda: HydraAllocator(solver="gp"))

register_allocator(
    "hydra[exact-rta]",
    title="HYDRA with exact response-time analysis",
    description=(
        "Replaces the linearised Eq. (5) interference bound with the "
        "exact fixed-point response time (extension; strictly more "
        "permissive)."
    ),
    tags=("extension", "greedy"),
)(lambda: HydraAllocator(solver="exact-rta"))

register_allocator(
    "hydra+lp",
    title="HYDRA assignment + joint LP period refinement",
    description=(
        "Keeps HYDRA's task-to-core assignment but re-solves all "
        "periods jointly with the exact LP (repro.opt.joint / "
        "repro.opt.lp); never worse than greedy periods."
    ),
    tags=("extension", "lp"),
)(LpRefinedHydraAllocator)

register_allocator(
    "hydra[np]",
    title="Blocking-aware HYDRA for non-preemptive security",
    description=(
        "HYDRA variant that only admits a core if its real-time tasks "
        "tolerate the security task's non-preemptive blocking (§V)."
    ),
    tags=("extension", "greedy"),
)(NonPreemptiveHydraAllocator)

register_allocator(
    "adaptive",
    title="Period-adaptation pass over HYDRA (closed form)",
    description=(
        "Re-solves every core's security periods in priority order "
        "after the HYDRA placement (arXiv:1911.11937 style).  With the "
        "closed-form solver over HYDRA this is a property-tested fixed "
        "point; it re-tightens inners whose periods are not per-core "
        "optimal (construct AdaptiveAllocator(inner=...) directly)."
    ),
    tags=("extension", "adaptive"),
)(AdaptiveAllocator)

register_allocator(
    "adaptive[exact-rta]",
    title="Exact-RTA period tightening over HYDRA",
    description=(
        "Keeps HYDRA's placement but replaces the linearised Eq. (7) "
        "periods with exact response-time optima — never looser, "
        "usually tighter monitoring at the same task→core map."
    ),
    tags=("extension", "adaptive"),
)(lambda: AdaptiveAllocator(solver="exact-rta"))

register_allocator(
    "adaptive[contego]",
    title="Contego-style mode-change-safe period adaptation",
    description=(
        "Re-adapts each period against both the normal mode and a "
        "simulated mode change (real-time WCETs inflated 1.5×, "
        "arXiv:1705.00138 style) and keeps the looser of the two; "
        "cores that cannot sustain the mode change revert to HYDRA's "
        "periods."
    ),
    tags=("extension", "adaptive"),
)(lambda: AdaptiveAllocator(solver="exact-rta", mode_factor=1.5))

register_allocator(
    "singlecore",
    title="SingleCore baseline: one dedicated security core",
    description=(
        "All security tasks on a core free of real-time tasks, periods "
        "adapted sequentially; prepare the system with "
        "build_singlecore_system (the scenario runner does this "
        "automatically)."
    ),
    tags=("paper", "baseline"),
)(SingleCoreAllocator)

register_allocator(
    "optimal",
    title="OPT baseline: exhaustive assignment enumeration",
    description=(
        "Enumerates every task-to-core assignment "
        "(repro.opt.exhaustive) and scores each with the joint period "
        "LP; exponential in the security task count."
    ),
    tags=("paper", "optimal", "lp"),
)(OptimalAllocator)

register_allocator(
    "optimal[branch-bound]",
    title="OPT via branch-and-bound (same optimum, fewer LP solves)",
    description=(
        "Provably the same optimum as exhaustive enumeration, pruning "
        "with monotone feasibility and LP upper bounds "
        "(repro.opt.branch_bound)."
    ),
    tags=("extension", "optimal", "lp"),
)(lambda: OptimalAllocator(search="branch-bound"))

register_allocator(
    "first-feasible",
    title="Ablation: first feasible core instead of argmax tightness",
    description="Cheapest possible core choice; isolates what HYDRA's "
    "argmax rule buys.",
    tags=("ablation", "greedy"),
)(FirstFeasibleAllocator)

register_allocator(
    "slackiest-core",
    title="Ablation: feasible core with the most utilisation slack",
    description="A worst-fit flavour that spreads the security load.",
    tags=("ablation", "greedy"),
)(SlackiestCoreAllocator)

_BINPACK_NOTES = {
    "first-fit": " Places identically to 'first-feasible'; registered "
    "under both names so packing grids and ablation grids read naturally.",
    "worst-fit": " Ranks cores like the 'slackiest-core' ablation rule.",
}

for _rule in BIN_PACKING_RULES:
    register_allocator(
        f"binpack-{_rule}",
        title=f"Classic {_rule} bin-packing for security tasks",
        description=(
            f"Places each security task by the {_rule} rule over the "
            f"cores with a feasible Eq. (7) period (Hasan et al. 2018 "
            f"style baseline).{_BINPACK_NOTES.get(_rule, '')}"
        ),
        tags=("binpack",),
    )(lambda rule=_rule: BinPackingAllocator(rule=rule))
