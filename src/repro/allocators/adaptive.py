"""Period-adapting allocator family (post-allocation tightening).

HYDRA freezes each security task's period the moment the task is
placed.  The sequel work on continuous security monitoring ("Period
Adaptation for Continuous Security Monitoring", arXiv:1911.11937) and
the Contego line (arXiv:1705.00138) instead treat the placement and the
periods as separable: once the task→core map is fixed, every core's
periods can be re-solved in priority order — with a tighter solver, or
against a *different* interference environment than the one the
placement assumed.

:class:`AdaptiveAllocator` wraps any registered inner allocator and
re-runs period adaptation per core on its (schedulable) output:

* with the ``"exact-rta"`` solver the pass replaces the linearised
  Eq. (5) periods with exact response-time optima — never looser,
  usually tighter (more frequent monitoring at the same placement);
* with ``mode_factor`` set (the Contego-style variant) each period must
  stay feasible both in the normal mode *and* in a simulated mode
  change where every real-time interferer's WCET is scaled by the
  factor — the final period is the looser of the two solves, so a mode
  switch cannot make an admitted security task unschedulable;
* with the default closed-form solver over a HYDRA inner the pass is a
  fixed point (HYDRA's periods are already Eq. (7)-optimal given the
  placement) — property-tested, and useful as a re-tightening pass for
  inners whose periods are not per-core optimal (e.g. bin-packers).

The pass is **per-core atomic**: if any task on a core cannot be
re-adapted (possible only for the mode-change variant or non-optimal
inners), that whole core reverts to the inner allocator's periods and
is reported in ``info["reverted_cores"]``.
"""

from __future__ import annotations

import math

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.core.allocator import Allocation, Allocator, SecurityAssignment
from repro.core.hydra import PERIOD_SOLVERS
from repro.model.system import SystemModel
from repro.model.task import SecurityTask

__all__ = ["AdaptiveAllocator"]

_TOL = 1e-9


class AdaptiveAllocator(Allocator):
    """Post-allocation per-core period tightening over an inner scheme."""

    def __init__(
        self,
        inner: str = "hydra",
        solver: str = "closed-form",
        mode_factor: float | None = None,
    ) -> None:
        if solver not in PERIOD_SOLVERS:
            raise ValueError(
                f"unknown period solver {solver!r}; expected one of "
                f"{sorted(PERIOD_SOLVERS)}"
            )
        if mode_factor is not None and mode_factor < 1.0:
            raise ValueError(
                f"mode_factor must be ≥ 1 (WCET inflation), got {mode_factor}"
            )
        self.inner = inner
        self.solver_name = solver
        self.mode_factor = mode_factor
        self._solve = PERIOD_SOLVERS[solver]
        name = "adaptive"
        if mode_factor is not None:
            name = "adaptive[contego]"
        elif solver != "closed-form":
            name = f"adaptive[{solver}]"
        if inner != "hydra":
            name = f"{name}@{inner}"
        self.name = name

    def _inner_allocator(self) -> Allocator:
        from repro.allocators.registry import get_allocator

        return get_allocator(self.inner)

    def _mode_env(
        self,
        system: SystemModel,
        core: int,
        placed: list[tuple[SecurityTask, float]],
    ) -> InterferenceEnv:
        """Interference on ``core`` during a mode change: real-time
        WCETs inflated by ``mode_factor``, security interferers at their
        already re-adapted periods."""
        assert self.mode_factor is not None
        interferers = [
            Interferer(task.wcet * self.mode_factor, task.period)
            for task in system.rt_partition.tasks_on(core)
        ]
        interferers.extend(
            Interferer.from_security(task, period) for task, period in placed
        )
        return InterferenceEnv(interferers)

    def allocate(self, system: SystemModel) -> Allocation:
        base = self._inner_allocator().allocate(system)
        if not base.schedulable:
            return Allocation(
                scheme=self.name,
                schedulable=False,
                failed_task=base.failed_task,
                info={"inner": base.scheme},
            )

        # Assignments arrive in security priority order; group them per
        # core preserving that order so each re-solve sees exactly the
        # higher-priority tasks committed to the same core.
        per_core: dict[int, list[SecurityAssignment]] = {}
        for assignment in base.assignments:
            per_core.setdefault(assignment.core, []).append(assignment)

        new_period: dict[str, float] = {}
        adapted_cores: list[int] = []
        reverted_cores: list[int] = []
        tightened = 0
        for core in sorted(per_core):
            assignments = per_core[core]
            rt_tasks = system.rt_partition.tasks_on(core)
            placed: list[tuple[SecurityTask, float]] = []
            feasible = True
            for assignment in assignments:
                task = assignment.task
                env = InterferenceEnv.on_core(rt_tasks, placed)
                solution = self._solve(task, env)
                if solution is None:
                    feasible = False
                    break
                period = solution.period
                if self.mode_factor is not None:
                    mode_solution = self._solve(
                        task, self._mode_env(system, core, placed)
                    )
                    if mode_solution is None:
                        feasible = False
                        break
                    # Feasible in both modes: take the looser period.
                    period = max(period, mode_solution.period)
                placed.append((task, period))
            if not feasible:
                reverted_cores.append(core)
                for assignment in assignments:
                    new_period[assignment.task.name] = assignment.period
                continue
            changed = False
            for assignment, (task, period) in zip(assignments, placed):
                new_period[task.name] = period
                if not math.isclose(
                    period, assignment.period, rel_tol=0.0, abs_tol=_TOL
                ):
                    changed = True
                if period < assignment.period - _TOL:
                    tightened += 1
            if changed:
                adapted_cores.append(core)

        assignments = tuple(
            SecurityAssignment(
                task=a.task, core=a.core, period=new_period[a.task.name]
            )
            for a in base.assignments
        )
        info: dict[str, object] = {
            "inner": base.scheme,
            "solver": self.solver_name,
            "adapted_cores": tuple(adapted_cores),
            "reverted_cores": tuple(reverted_cores),
            "tightened_tasks": tightened,
        }
        if self.mode_factor is not None:
            info["mode_factor"] = self.mode_factor
        return Allocation(
            scheme=self.name,
            schedulable=True,
            assignments=assignments,
            info=info,
        )
