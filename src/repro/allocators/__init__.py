"""First-class allocator API: one protocol, one registry, typed results.

The paper is a design-space exploration over *how security tasks are
allocated*; this package makes the allocation strategy a first-class,
sweepable axis.  Every strategy implements the single
:class:`~repro.core.allocator.Allocator` protocol
(``allocate(SystemModel) -> Allocation``), registers itself with
:func:`register_allocator`, and is then reachable everywhere by spec
string — TOML scenario grids (``[grid] allocator = [...]``), the
``repro-hydra allocators`` / ``--allocator`` CLI surface, and the
comparison sweeps — with no driver code.

:func:`run_allocator` is the uniform entry point: it resolves a spec,
runs the strategy, and returns a typed
:class:`~repro.model.allocation.AllocationResult` (allocation +
security partition + tightness + solver diagnostics + timing) that the
sim layer (:mod:`repro.sim.runner`) consumes directly.

See README "Writing a new allocator" for the plugin recipe.
"""

from repro.allocators.binpack import BIN_PACKING_RULES, BinPackingAllocator
from repro.allocators.registry import (
    AllocatorInfo,
    UnknownAllocatorError,
    allocator_names,
    get_allocator,
    get_allocator_info,
    iter_allocator_info,
    register_allocator,
    run_allocator,
    unregister_allocator,
)
from repro.core.allocator import Allocator
from repro.model.allocation import Allocation, AllocationResult

__all__ = [
    "Allocator",
    "Allocation",
    "AllocationResult",
    "AllocatorInfo",
    "UnknownAllocatorError",
    "register_allocator",
    "unregister_allocator",
    "get_allocator",
    "get_allocator_info",
    "allocator_names",
    "iter_allocator_info",
    "run_allocator",
    "BIN_PACKING_RULES",
    "BinPackingAllocator",
]
