"""Classic bin-packing rules as *security-task* allocators.

The paper family this reproduction sits in (Hasan et al. 2018, see
PAPERS.md) allocates security tasks with the same first/best/worst/
next-fit rules that partition real-time tasks.  HYDRA's pitch is that
its argmax-tightness core choice beats them — but the seed code could
not even express them on the security side.  This module ports the four
rules onto the common :class:`~repro.core.allocator.Allocator`
protocol, so a TOML grid can sweep ``allocator = ["hydra",
"binpack-best-fit", ...]`` and reproduce that comparison directly.

The walk reuses the HYDRA-style greedy skeleton
(:class:`repro.core.variants._GreedyCoreAllocator`): security tasks in
priority order, each core probed with the Eq. (7) period solve, only
the *choice rule* differs.  Cores are ranked by their utilisation
before the candidate task is placed — the core's real-time tasks plus
the security tasks already committed there (at their frozen periods) —
exactly the quantity the real-time heuristics in
:mod:`repro.partition.heuristics` rank by:

==============  ========================================================
first-fit       lowest-indexed feasible core (same placements as the
                registered ``first-feasible`` ablation rule)
best-fit        feasible core with the *least* remaining utilisation
                (pack tightly, keep cores free)
worst-fit       feasible core with the *most* remaining utilisation
                (spread the load; same ranking as ``slackiest-core``)
next-fit        moving pointer, never revisit earlier cores
==============  ========================================================
"""

from __future__ import annotations

import dataclasses

from repro.core.allocator import Allocation
from repro.core.hydra import PERIOD_SOLVERS
from repro.core.variants import _GreedyCoreAllocator
from repro.errors import ConfigError
from repro.model.system import SystemModel

__all__ = ["BIN_PACKING_RULES", "BinPackingAllocator"]

#: Known security-side packing rules.
BIN_PACKING_RULES = ("first-fit", "best-fit", "worst-fit", "next-fit")


class BinPackingAllocator(_GreedyCoreAllocator):
    """Allocate security tasks with a classic bin-packing rule.

    Parameters
    ----------
    rule:
        One of :data:`BIN_PACKING_RULES`.
    solver:
        Inner period solver (see
        :data:`repro.core.hydra.PERIOD_SOLVERS`); ``"closed-form"``
        matches the paper's linearised Eq. (7).
    """

    name = "binpack"

    def __init__(
        self, rule: str = "first-fit", solver: str = "closed-form"
    ) -> None:
        if rule not in BIN_PACKING_RULES:
            raise ConfigError(
                f"unknown bin-packing rule {rule!r}; expected one of "
                f"{', '.join(BIN_PACKING_RULES)}"
            )
        if solver not in PERIOD_SOLVERS:
            raise ConfigError(
                f"unknown period solver {solver!r}; expected one of "
                f"{', '.join(sorted(PERIOD_SOLVERS))}"
            )
        super().__init__(solver=solver)
        self.rule = rule
        self.name = f"binpack-{rule}"
        if solver != "closed-form":
            self.name = f"binpack-{rule}[{solver}]"
        self._next_fit_pointer = 0

    def allocate(self, system: SystemModel) -> Allocation:
        self._next_fit_pointer = 0  # each allocation walks afresh
        allocation = super().allocate(system)
        if not allocation.schedulable:
            return allocation
        return dataclasses.replace(
            allocation,
            info={"rule": self.rule, "solver": self.solver_name},
        )

    def _choose(self, candidates):
        if self.rule == "first-fit":
            core, solution, _env = candidates[0]
            return core, solution
        if self.rule == "next-fit":
            for core, solution, _env in candidates:
                if core >= self._next_fit_pointer:
                    self._next_fit_pointer = core
                    return core, solution
            return None  # only cores behind the pointer were feasible
        # env.utilization is the core's load *before* placing the task
        # (RT tasks + already-committed security tasks).
        if self.rule == "best-fit":
            core, solution, _env = max(
                candidates, key=lambda c: (c[2].utilization, -c[0])
            )
        else:  # worst-fit
            core, solution, _env = min(
                candidates, key=lambda c: (c[2].utilization, c[0])
            )
        return core, solution
