"""The allocator registry: one decorator turns a strategy into a plugin.

Mirrors :mod:`repro.experiments.registry`: strategies self-register
with :func:`register_allocator` ::

    @register_allocator(
        "my-strategy",
        title="My strategy in one line",
        tags=("extension",),
    )
    class MyAllocator(Allocator):
        name = "my-strategy"
        def allocate(self, system): ...

and every consumer — TOML scenario grids (``[grid] allocator = [...]``),
the ``allocator-comparison`` sweeps, ``repro-hydra allocators``, the
``--allocator`` CLI override — resolves strategies through this table
instead of importing solver modules directly.  Anything registered
before :func:`repro.cli.main` runs is sweepable with no driver code.

Spec strings double as report labels: every built-in factory produces
an allocator whose ``name`` attribute equals its registry spec, so a
scheme label in a table can always be resolved back to the strategy
that produced it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from repro.core.allocator import Allocator
from repro.errors import ConfigError
from repro.model.allocation import Allocation, AllocationResult
from repro.model.system import SystemModel

__all__ = [
    "AllocatorInfo",
    "UnknownAllocatorError",
    "register_allocator",
    "unregister_allocator",
    "get_allocator",
    "get_allocator_info",
    "allocator_names",
    "iter_allocator_info",
    "run_allocator",
]


class UnknownAllocatorError(ConfigError):
    """Raised when a spec resolves to no registered allocator."""


@dataclass(frozen=True)
class AllocatorInfo:
    """Registry metadata of one allocation strategy.

    Attributes
    ----------
    name:
        Registry spec — what TOML grids and ``--allocator`` accept.
    title:
        One-line human title (``repro-hydra allocators`` shows it).
    description:
        What the strategy does / which paper baseline it implements.
    tags:
        Free-form labels (``"paper"``, ``"optimal"``, ``"binpack"`` …).
    factory:
        Zero-argument callable producing a ready :class:`Allocator`.
    """

    name: str
    title: str
    description: str = ""
    tags: tuple[str, ...] = ()
    factory: Callable[[], Allocator] = field(repr=False, default=None)  # type: ignore[assignment]

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
        }


#: spec → registered strategy metadata (registration order preserved).
_REGISTRY: dict[str, AllocatorInfo] = {}


def _ensure_builtin_allocators() -> None:
    from importlib import import_module

    import_module("repro.allocators.builtin")


def register_allocator(
    name: str | None = None,
    *,
    title: str = "",
    description: str = "",
    tags: tuple[str, ...] = (),
    replace: bool = False,
) -> Callable:
    """Class/factory decorator registering a strategy under ``name``.

    ``name`` defaults to the class's ``name`` attribute.  Registering a
    taken spec raises unless ``replace=True`` (plugins overriding a
    built-in must say so explicitly).
    """

    def decorate(factory: Callable[[], Allocator]):
        # Load the built-ins first (re-entrant during their own import):
        # a plugin claiming a built-in name before any lookup happened
        # must still hit the collision check, not shadow it silently.
        _ensure_builtin_allocators()
        key = name or getattr(factory, "name", "")
        if not key:
            raise ConfigError(
                "allocator needs a registry name (decorator argument or "
                "a 'name' class attribute)"
            )
        if key in _REGISTRY and not replace:
            raise ConfigError(
                f"allocator {key!r} already registered; pass replace=True "
                f"to override"
            )
        _REGISTRY[key] = AllocatorInfo(
            name=key,
            title=title or getattr(factory, "__doc__", "") or key,
            description=description,
            tags=tuple(tags),
            factory=factory,
        )
        return factory

    return decorate


def unregister_allocator(name: str) -> None:
    """Remove ``name`` from the registry (test/plugin hygiene helper)."""
    _REGISTRY.pop(name, None)


def get_allocator_info(spec: str) -> AllocatorInfo:
    """The registry entry for ``spec``.

    Raises :class:`UnknownAllocatorError` naming every known spec —
    the CLI and the TOML validator turn this into a helpful hint.
    """
    _ensure_builtin_allocators()
    try:
        return _REGISTRY[spec]
    except KeyError:
        raise UnknownAllocatorError(
            f"unknown allocator {spec!r}; known allocators: "
            f"{', '.join(sorted(_REGISTRY))} "
            f"(see 'repro-hydra allocators')"
        ) from None


def get_allocator(spec: str) -> Allocator:
    """Instantiate the strategy registered under ``spec``."""
    return get_allocator_info(spec).factory()


def allocator_names() -> list[str]:
    """Every registered spec, in registration order."""
    _ensure_builtin_allocators()
    return list(_REGISTRY)


def iter_allocator_info() -> Iterator[AllocatorInfo]:
    """Registry entries of every strategy, in registration order."""
    _ensure_builtin_allocators()
    yield from _REGISTRY.values()


def run_allocator(
    allocator: str | Allocator,
    system: SystemModel,
    extra_diagnostics: Mapping[str, object] | None = None,
) -> AllocationResult:
    """Resolve (if needed), run, and time one strategy on ``system``.

    The uniform entry point of the allocator API: accepts either a
    registry spec or a ready :class:`Allocator`, and wraps the raw
    :class:`Allocation` into a typed
    :class:`~repro.model.allocation.AllocationResult` carrying solver
    diagnostics and wall-clock timing.
    """
    spec = allocator if isinstance(allocator, str) else allocator.name
    strategy = get_allocator(allocator) if isinstance(allocator, str) else allocator
    start = time.perf_counter()
    allocation = strategy.allocate(system)
    elapsed = time.perf_counter() - start
    if not isinstance(allocation, Allocation):
        raise ConfigError(
            f"allocator {spec!r} returned {type(allocation).__name__}, "
            f"not an Allocation"
        )
    diagnostics = dict(allocation.info)
    diagnostics.update(extra_diagnostics or {})
    return AllocationResult(
        allocator=spec,
        allocation=allocation,
        diagnostics=diagnostics,
        elapsed_s=elapsed,
    )
