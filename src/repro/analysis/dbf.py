"""Demand bound function and the paper's necessary feasibility test.

Eq. (1) of the paper states the standard necessary condition for a
sporadic task set to be feasible on ``M`` unit-speed cores:

    Σ_r DBF(τr, t) ≤ M · t   for all t > 0,

with ``DBF(τr, t) = max(0, (⌊(t − Dr)/Tr⌋ + 1) · Cr)``.

For implicit-deadline tasks this reduces to the utilisation condition
``Σ U ≤ M`` (because ``DBF(t) = ⌊t/T⌋·C ≤ U·t`` with equality in the
limit), but the functions below implement the general constrained-
deadline form so the analysis substrate is complete.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.analysis.arrays import TaskArrays
from repro.model.platform import Platform
from repro.model.task import RealTimeTask

__all__ = [
    "demand_bound",
    "total_demand",
    "dbf_check_points",
    "necessary_condition",
    "demand_bound_arrays",
    "total_demand_arrays",
    "dbf_step_points_arrays",
    "necessary_condition_arrays",
]


def demand_bound(task: RealTimeTask, t: float) -> float:
    """``DBF(τ, t)``: maximum cumulative execution demand of jobs of
    ``task`` that both arrive and have their deadline inside any window
    of length ``t``."""
    if t <= 0:
        return 0.0
    jobs = math.floor((t - task.deadline) / task.period) + 1
    if jobs <= 0:
        return 0.0
    return jobs * task.wcet


def total_demand(tasks: Iterable[RealTimeTask], t: float) -> float:
    """Σ DBF over ``tasks`` at horizon ``t``."""
    return sum(demand_bound(task, t) for task in tasks)


def dbf_check_points(
    tasks: Sequence[RealTimeTask], horizon: float
) -> Iterator[float]:
    """Yield, in increasing order, every point ``t ≤ horizon`` at which
    some task's DBF steps (absolute deadlines ``k·T + D``).

    The necessary condition only needs to be checked at these points
    because both sides of Eq. (1) are monotone between steps and the
    right-hand side grows continuously.
    """
    points: set[float] = set()
    for task in tasks:
        deadline = task.deadline
        while deadline <= horizon:
            points.add(deadline)
            deadline += task.period
    yield from sorted(points)


def _necessary_horizon(tasks: Sequence[RealTimeTask], capacity: float) -> float:
    """A finite horizon beyond which Eq. (1) cannot newly fail.

    Uses the standard bound: ``DBF(τ, t) ≤ U·t + U·(T − D)`` hence
    ``Σ DBF(t) − capacity·t ≤ Σ U_i (T_i − D_i) − (capacity − U)·t``,
    which is non-positive for
    ``t ≥ Σ U_i (T_i − D_i) / (capacity − U)``.
    """
    total_u = sum(task.utilization for task in tasks)
    if total_u >= capacity:
        # Utilisation alone exceeds the capacity: the condition fails in
        # the limit, so any horizon covering one hyper-step is enough for
        # the caller to detect it; we simply return the largest deadline.
        return max((task.deadline for task in tasks), default=0.0)
    slack_sum = sum(
        task.utilization * (task.period - task.deadline) for task in tasks
    )
    bound = slack_sum / (capacity - total_u)
    largest_deadline = max((task.deadline for task in tasks), default=0.0)
    return max(bound, largest_deadline)


def necessary_condition(
    tasks: Sequence[RealTimeTask] | Iterable[RealTimeTask],
    platform: Platform | int,
) -> bool:
    """Evaluate the paper's Eq. (1) necessary feasibility condition.

    Returns ``True`` when the demand of ``tasks`` never exceeds the
    platform capacity ``M·t``; a ``False`` result proves the task set
    unfeasible on any partitioning (the paper discards such synthetic
    task sets up front).
    """
    task_list = list(tasks)
    capacity = float(
        platform.num_cores if isinstance(platform, Platform) else platform
    )
    total_u = sum(task.utilization for task in task_list)
    if total_u > capacity + 1e-12:
        return False
    if all(task.is_implicit_deadline for task in task_list):
        # Implicit deadlines: DBF(t) = ⌊t/T⌋·C ≤ U·t, so the utilisation
        # check above is exact.
        return True
    horizon = _necessary_horizon(task_list, capacity)
    for t in dbf_check_points(task_list, horizon):
        if total_demand(task_list, t) > capacity * t + 1e-9:
            return False
    return True


def demand_bound_arrays(
    arrays: TaskArrays, t: float | np.ndarray
) -> np.ndarray:
    """Vectorised ``DBF(τ_i, t)`` for every task of ``arrays`` at once.

    ``t`` may be a scalar (result shape ``(n,)``) or a vector of ``k``
    horizons (result shape ``(k, n)`` — one row per horizon).  Matches
    :func:`demand_bound` task for task: ``max(0, ⌊(t − D)/T⌋ + 1) · C``
    with non-positive horizons contributing zero demand.
    """
    horizons = np.atleast_1d(np.asarray(t, dtype=float))[:, None]
    jobs = np.floor((horizons - arrays.deadlines) / arrays.periods) + 1.0
    demand = np.where(
        (horizons > 0) & (jobs > 0), jobs * arrays.wcets, 0.0
    )
    return demand[0] if np.isscalar(t) or np.ndim(t) == 0 else demand


def total_demand_arrays(
    arrays: TaskArrays, t: float | np.ndarray
) -> float | np.ndarray:
    """Σ DBF over ``arrays`` at one horizon (float) or many (vector)."""
    demand = demand_bound_arrays(arrays, t)
    if demand.ndim == 1:
        return float(np.sum(demand))
    return np.sum(demand, axis=1)


def dbf_step_points_arrays(
    arrays: TaskArrays, horizon: float
) -> np.ndarray:
    """All DBF step points ``k·T + D ≤ horizon``, sorted ascending.

    The array counterpart of :func:`dbf_check_points`: every absolute
    deadline of every task inside the horizon, deduplicated, as one
    float vector built without a Python-level loop per job.
    """
    if len(arrays) == 0 or horizon <= 0:
        return np.zeros(0)
    counts = np.floor((horizon - arrays.deadlines) / arrays.periods) + 1.0
    counts = np.maximum(counts, 0.0).astype(np.int64)
    if not counts.any():
        return np.zeros(0)
    task_index = np.repeat(np.arange(len(arrays)), counts)
    job_index = np.concatenate([np.arange(c) for c in counts])
    points = (
        arrays.deadlines[task_index]
        + job_index * arrays.periods[task_index]
    )
    return np.unique(points)


def necessary_condition_arrays(
    arrays: TaskArrays, platform: Platform | int
) -> bool:
    """Array-program evaluation of the Eq. (1) necessary condition.

    Decision-equivalent to :func:`necessary_condition` (pinned by a
    hypothesis agreement suite) but runs the whole step-point scan as
    one ``(points × tasks)`` demand matrix instead of a nested Python
    loop — the form batched sweep callers use once the task set is
    already in :class:`TaskArrays` shape.
    """
    capacity = float(
        platform.num_cores if isinstance(platform, Platform) else platform
    )
    if len(arrays) == 0:
        return True
    total_u = arrays.total_utilization
    if total_u > capacity + 1e-12:
        return False
    if np.all(arrays.deadlines == arrays.periods):
        # Implicit deadlines: the utilisation check above is exact.
        return True
    if total_u >= capacity:
        horizon = float(np.max(arrays.deadlines))
    else:
        slack_sum = float(
            np.sum(
                arrays.utilizations * (arrays.periods - arrays.deadlines)
            )
        )
        horizon = max(
            slack_sum / (capacity - total_u), float(np.max(arrays.deadlines))
        )
    points = dbf_step_points_arrays(arrays, horizon)
    if points.size == 0:
        return True
    demand = total_demand_arrays(arrays, points)
    return bool(np.all(demand <= capacity * points + 1e-9))
