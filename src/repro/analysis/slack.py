"""Per-core capacity/slack accounting.

Security tasks execute "opportunistically in the slack time" (paper
Sec. III).  These helpers quantify how much background capacity each core
offers, which the allocators use for reporting and which the global-
migration extension uses to pick a target core at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interference import InterferenceEnv
from repro.model.system import Partition

__all__ = ["CoreSlack", "core_slack", "partition_slack"]


@dataclass(frozen=True, slots=True)
class CoreSlack:
    """Capacity snapshot of one core.

    Attributes
    ----------
    core:
        Core index.
    rt_utilization:
        Utilisation consumed by the partitioned real-time tasks.
    security_utilization:
        Utilisation consumed by already-allocated security tasks (at
        their assigned periods).
    """

    core: int
    rt_utilization: float
    security_utilization: float = 0.0

    @property
    def total_utilization(self) -> float:
        """Combined real-time + security utilisation on the core."""
        return self.rt_utilization + self.security_utilization

    @property
    def slack(self) -> float:
        """Long-run fraction of the core left idle, ``max(0, 1 − U)``."""
        return max(0.0, 1.0 - self.total_utilization)


def core_slack(
    partition: Partition,
    core: int,
    security_env: InterferenceEnv | None = None,
) -> CoreSlack:
    """Slack of ``core`` given its real-time partition and, optionally, an
    interference environment describing the security tasks already
    assigned there."""
    rt_u = partition.utilization_of(core)
    sec_u = security_env.utilization if security_env is not None else 0.0
    # Security env built via InterferenceEnv.on_core() may mix in the RT
    # tasks; callers are expected to pass a security-only env here.
    return CoreSlack(core=core, rt_utilization=rt_u, security_utilization=sec_u)


def partition_slack(partition: Partition) -> list[CoreSlack]:
    """Slack of every core of ``partition`` with no security load."""
    return [core_slack(partition, core) for core in partition.platform]
