"""The paper's linearised interference bound (Eq. 5) and its closed-form
consequences.

A security task ``τs`` placed on core ``m`` runs below every real-time
task on ``m`` and below every *higher-priority* security task already
assigned to ``m``.  Eq. (5) upper-bounds the interference it suffers in a
window of length ``Ts`` by

    I_s^m = Σ_{r on m} (1 + Ts/Tr)·Cr + Σ_{h ∈ hpS(s) on m} (1 + Ts/Th)·Ch

(the linear envelope of the exact ``⌈Ts/T⌉·C`` term, chosen by the paper
because it is a posynomial and hence GP-compatible).  The schedulability
constraint (Eq. 6) is ``Cs + I_s^m ≤ Ts``.

Grouping the interferers by their aggregate WCET ``K' = Σ C`` and
utilisation ``U = Σ C/T`` turns Eq. (6) into the single linear inequality

    Cs + K' + U·Ts ≤ Ts,

which drives both the closed-form period optimiser
(:mod:`repro.opt.period`) and the joint LP (:mod:`repro.opt.joint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ValidationError
from repro.model.task import RealTimeTask, SecurityTask

__all__ = [
    "Interferer",
    "InterferenceEnv",
    "linear_interference",
    "linear_bound_met",
    "min_feasible_period",
]


@dataclass(frozen=True, slots=True)
class Interferer:
    """A higher-priority task as seen by the analysis: just ``(C, T)``.

    Both real-time tasks (fixed periods) and already-assigned security
    tasks (periods fixed by an earlier allocation step) reduce to this.
    """

    wcet: float
    period: float

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise ValidationError(
                f"interferer needs positive wcet/period, got "
                f"C={self.wcet!r}, T={self.period!r}"
            )

    @property
    def utilization(self) -> float:
        return self.wcet / self.period

    @classmethod
    def from_rt(cls, task: RealTimeTask) -> "Interferer":
        return cls(task.wcet, task.period)

    @classmethod
    def from_security(cls, task: SecurityTask, period: float) -> "Interferer":
        return cls(task.wcet, period)


class InterferenceEnv:
    """The aggregate interference environment of one core.

    Precomputes ``K' = Σ C`` and ``U = Σ C/T`` over the interferers so
    that per-candidate-period queries are O(1).
    """

    __slots__ = ("_interferers", "_total_wcet", "_utilization")

    def __init__(self, interferers: Iterable[Interferer] = ()) -> None:
        self._interferers = tuple(interferers)
        self._total_wcet = sum(i.wcet for i in self._interferers)
        self._utilization = sum(i.utilization for i in self._interferers)

    @classmethod
    def on_core(
        cls,
        rt_tasks: Iterable[RealTimeTask],
        hp_security: Iterable[tuple[SecurityTask, float]] = (),
    ) -> "InterferenceEnv":
        """Build the environment from the real-time tasks partitioned to a
        core plus the ``(task, period)`` pairs of higher-priority security
        tasks already assigned there."""
        interferers = [Interferer.from_rt(t) for t in rt_tasks]
        interferers.extend(
            Interferer.from_security(t, period) for t, period in hp_security
        )
        return cls(interferers)

    @property
    def interferers(self) -> tuple[Interferer, ...]:
        return self._interferers

    @property
    def total_wcet(self) -> float:
        """``K' = Σ C`` over all interferers."""
        return self._total_wcet

    @property
    def utilization(self) -> float:
        """``U = Σ C/T`` over all interferers."""
        return self._utilization

    def extended(self, extra: Iterable[Interferer]) -> "InterferenceEnv":
        """Environment with additional interferers appended."""
        return InterferenceEnv((*self._interferers, *extra))

    def interference(self, period: float) -> float:
        """Eq. (5): linearised interference in a window of length
        ``period``."""
        if period <= 0:
            raise ValidationError(f"window length must be positive: {period!r}")
        return self._total_wcet + self._utilization * period

    def __len__(self) -> int:
        return len(self._interferers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterferenceEnv(n={len(self._interferers)}, "
            f"K'={self._total_wcet:g}, U={self._utilization:g})"
        )


def linear_interference(
    period: float,
    rt_tasks: Sequence[RealTimeTask],
    hp_security: Sequence[tuple[SecurityTask, float]] = (),
) -> float:
    """Convenience form of Eq. (5) straight from model objects."""
    return InterferenceEnv.on_core(rt_tasks, hp_security).interference(period)


def linear_bound_met(
    task: SecurityTask, period: float, env: InterferenceEnv
) -> bool:
    """Check Eq. (6): ``Cs + I_s^m ≤ Ts`` at the candidate ``period``."""
    return task.wcet + env.interference(period) <= period + 1e-9


def min_feasible_period(task: SecurityTask, env: InterferenceEnv) -> float:
    """Smallest period satisfying Eq. (6), ignoring the ``[T_des, T_max]``
    box.

    From ``Cs + K' + U·T ≤ T`` the minimum is ``(Cs + K')/(1 − U)``;
    returns ``inf`` when the interferer utilisation ``U ≥ 1`` (the core
    has no spare capacity at any period).
    """
    spare = 1.0 - env.utilization
    if spare <= 0.0:
        return float("inf")
    return (task.wcet + env.total_wcet) / spare
