"""The paper's linearised interference bound (Eq. 5) and its closed-form
consequences.

A security task ``τs`` placed on core ``m`` runs below every real-time
task on ``m`` and below every *higher-priority* security task already
assigned to ``m``.  Eq. (5) upper-bounds the interference it suffers in a
window of length ``Ts`` by

    I_s^m = Σ_{r on m} (1 + Ts/Tr)·Cr + Σ_{h ∈ hpS(s) on m} (1 + Ts/Th)·Ch

(the linear envelope of the exact ``⌈Ts/T⌉·C`` term, chosen by the paper
because it is a posynomial and hence GP-compatible).  The schedulability
constraint (Eq. 6) is ``Cs + I_s^m ≤ Ts``.

Grouping the interferers by their aggregate WCET ``K' = Σ C`` and
utilisation ``U = Σ C/T`` turns Eq. (6) into the single linear inequality

    Cs + K' + U·Ts ≤ Ts,

which drives both the closed-form period optimiser
(:mod:`repro.opt.period`) and the joint LP (:mod:`repro.opt.joint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.model.task import RealTimeTask, SecurityTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.arrays import TaskArrays

__all__ = [
    "Interferer",
    "InterferenceEnv",
    "linear_interference",
    "linear_bound_met",
    "min_feasible_period",
    "linear_interference_arrays",
    "min_feasible_periods_arrays",
]


@dataclass(frozen=True, slots=True)
class Interferer:
    """A higher-priority task as seen by the analysis: just ``(C, T)``.

    Both real-time tasks (fixed periods) and already-assigned security
    tasks (periods fixed by an earlier allocation step) reduce to this.
    """

    wcet: float
    period: float

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise ValidationError(
                f"interferer needs positive wcet/period, got "
                f"C={self.wcet!r}, T={self.period!r}"
            )

    @property
    def utilization(self) -> float:
        """``C / T``, the interferer's long-run processor share."""
        return self.wcet / self.period

    @classmethod
    def from_rt(cls, task: RealTimeTask) -> "Interferer":
        """Reduce a real-time task to its ``(C, T)`` pair."""
        return cls(task.wcet, task.period)

    @classmethod
    def from_security(cls, task: SecurityTask, period: float) -> "Interferer":
        """Reduce a security task at its assigned ``period`` to ``(C, T)``."""
        return cls(task.wcet, period)


class InterferenceEnv:
    """The aggregate interference environment of one core.

    Precomputes ``K' = Σ C`` and ``U = Σ C/T`` over the interferers so
    that per-candidate-period queries are O(1).
    """

    __slots__ = ("_interferers", "_total_wcet", "_utilization")

    def __init__(self, interferers: Iterable[Interferer] = ()) -> None:
        self._interferers = tuple(interferers)
        self._total_wcet = sum(i.wcet for i in self._interferers)
        self._utilization = sum(i.utilization for i in self._interferers)

    @classmethod
    def on_core(
        cls,
        rt_tasks: Iterable[RealTimeTask],
        hp_security: Iterable[tuple[SecurityTask, float]] = (),
    ) -> "InterferenceEnv":
        """Build the environment from the real-time tasks partitioned to a
        core plus the ``(task, period)`` pairs of higher-priority security
        tasks already assigned there."""
        interferers = [Interferer.from_rt(t) for t in rt_tasks]
        interferers.extend(
            Interferer.from_security(t, period) for t, period in hp_security
        )
        return cls(interferers)

    @classmethod
    def from_arrays(cls, arrays: "TaskArrays") -> "InterferenceEnv":
        """Build the environment straight from a :class:`TaskArrays`
        set (every task becomes one ``(C, T)`` interferer)."""
        return cls(
            Interferer(float(c), float(t))
            for c, t in zip(arrays.wcets, arrays.periods)
        )

    @property
    def interferers(self) -> tuple[Interferer, ...]:
        """The ``(C, T)`` pairs this environment aggregates."""
        return self._interferers

    @property
    def total_wcet(self) -> float:
        """``K' = Σ C`` over all interferers."""
        return self._total_wcet

    @property
    def utilization(self) -> float:
        """``U = Σ C/T`` over all interferers."""
        return self._utilization

    def extended(self, extra: Iterable[Interferer]) -> "InterferenceEnv":
        """Environment with additional interferers appended."""
        return InterferenceEnv((*self._interferers, *extra))

    def interference(self, period: float) -> float:
        """Eq. (5): linearised interference in a window of length
        ``period``."""
        if period <= 0:
            raise ValidationError(f"window length must be positive: {period!r}")
        return self._total_wcet + self._utilization * period

    def interference_batch(
        self, periods: np.ndarray | Sequence[float]
    ) -> np.ndarray:
        """Eq. (5) evaluated at many candidate periods at once.

        Element ``i`` equals ``self.interference(periods[i])`` — the
        bound is linear in the window length, so a whole candidate-
        period grid is one fused multiply-add.
        """
        period_vec = np.asarray(periods, dtype=float)
        if period_vec.size and np.any(period_vec <= 0):
            raise ValidationError("window lengths must be positive")
        return self._total_wcet + self._utilization * period_vec

    def __len__(self) -> int:
        return len(self._interferers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InterferenceEnv(n={len(self._interferers)}, "
            f"K'={self._total_wcet:g}, U={self._utilization:g})"
        )


def linear_interference(
    period: float,
    rt_tasks: Sequence[RealTimeTask],
    hp_security: Sequence[tuple[SecurityTask, float]] = (),
) -> float:
    """Convenience form of Eq. (5) straight from model objects."""
    return InterferenceEnv.on_core(rt_tasks, hp_security).interference(period)


def linear_bound_met(
    task: SecurityTask, period: float, env: InterferenceEnv
) -> bool:
    """Check Eq. (6): ``Cs + I_s^m ≤ Ts`` at the candidate ``period``."""
    return task.wcet + env.interference(period) <= period + 1e-9


def linear_interference_arrays(
    periods: np.ndarray | Sequence[float], arrays: "TaskArrays"
) -> np.ndarray:
    """Eq. (5) over a candidate-period vector against a
    :class:`TaskArrays` interferer set.

    The pure array form of :func:`linear_interference`:
    ``K' + U · T`` with ``K' = Σ C`` and ``U = Σ C/T`` reduced from the
    arrays directly — no :class:`Interferer` objects are built.
    """
    period_vec = np.asarray(periods, dtype=float)
    if period_vec.size and np.any(period_vec <= 0):
        raise ValidationError("window lengths must be positive")
    total_wcet = float(np.sum(arrays.wcets))
    utilization = float(np.sum(arrays.wcets / arrays.periods))
    return total_wcet + utilization * period_vec


def min_feasible_periods_arrays(
    wcets: np.ndarray | Sequence[float], env: InterferenceEnv
) -> np.ndarray:
    """Smallest Eq. (6)-feasible period for many security WCETs at once.

    Element ``i`` equals ``min_feasible_period`` of a task with WCET
    ``wcets[i]`` against ``env`` — ``(C_i + K')/(1 − U)``, or ``inf``
    for every element when the interferer utilisation ``U ≥ 1``.
    """
    wcet_vec = np.asarray(wcets, dtype=float)
    spare = 1.0 - env.utilization
    if spare <= 0.0:
        return np.full(wcet_vec.shape, np.inf)
    return (wcet_vec + env.total_wcet) / spare


def min_feasible_period(task: SecurityTask, env: InterferenceEnv) -> float:
    """Smallest period satisfying Eq. (6), ignoring the ``[T_des, T_max]``
    box.

    From ``Cs + K' + U·T ≤ T`` the minimum is ``(Cs + K')/(1 − U)``;
    returns ``inf`` when the interferer utilisation ``U ≥ 1`` (the core
    has no spare capacity at any period).
    """
    spare = 1.0 - env.utilization
    if spare <= 0.0:
        return float("inf")
    return (task.wcet + env.total_wcet) / spare
