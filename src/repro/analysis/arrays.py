"""Structure-of-arrays task-set representation (:class:`TaskArrays`).

Every analysis in this package — RTA, DBF, interference, blocking —
is mathematically a function of four per-task vectors: WCETs, periods,
deadlines and priorities.  The object model (:mod:`repro.model.task`)
is the right interface for *building* systems, but walking Python
dataclasses inside the admission-test inner loop is the single hottest
path of every design-space sweep.  :class:`TaskArrays` is the batch
counterpart: the same task set as contiguous NumPy arrays, built once
and consumed by the vectorised analysis kernels
(:func:`repro.analysis.rta.response_times_arrays`,
:func:`repro.analysis.dbf.total_demand_arrays`,
:func:`repro.analysis.blocking.rt_schedulable_with_blocking_arrays`,
…).

The conversion is **lossless**: ``TaskArrays.from_tasks(tasks)``
followed by :meth:`TaskArrays.to_tasks` reproduces the original
:class:`~repro.model.task.RealTimeTask` objects field for field
(pinned by a hypothesis round-trip suite), so the scalar object path
remains the golden reference the array programs are checked against.

>>> from repro.model.task import RealTimeTask
>>> ta = TaskArrays.from_tasks([
...     RealTimeTask(name="b", wcet=2.0, period=20.0),
...     RealTimeTask(name="a", wcet=1.0, period=10.0),
... ])
>>> ta.names, list(ta.wcets), list(ta.periods)
(('b', 'a'), [2.0, 1.0], [20.0, 10.0])
>>> ta.rm_sorted().names          # rate-monotonic priority order
('a', 'b')
>>> ta.to_tasks() == [RealTimeTask(name="b", wcet=2.0, period=20.0),
...                   RealTimeTask(name="a", wcet=1.0, period=10.0)]
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.model.task import RealTimeTask

__all__ = ["TaskArrays", "pad_task_grid"]


@dataclass(frozen=True)
class TaskArrays:
    """One real-time task set as parallel, contiguous arrays.

    The element order of every array is the *set* order (the order the
    tasks were given in); use :meth:`rm_sorted` for the priority order
    the fixed-priority analyses need.  Instances are immutable — the
    arrays are flagged non-writeable on construction — so one instance
    can safely back many concurrent queries.

    Attributes
    ----------
    names:
        Task names, set order (a tuple — names stay Python strings).
    wcets:
        Worst-case execution times ``C`` as ``float64``.
    periods:
        Minimum inter-arrival times ``T`` as ``float64``.
    deadlines:
        Relative deadlines ``D`` as ``float64`` (equal to ``periods``
        for the paper's implicit-deadline model).
    priorities:
        Assigned fixed priorities as ``int64``; ``-1`` marks a task
        whose priority is unassigned (``RealTimeTask.priority is
        None``).
    """

    names: tuple[str, ...]
    wcets: np.ndarray
    periods: np.ndarray
    deadlines: np.ndarray
    priorities: np.ndarray

    #: Sentinel in :attr:`priorities` for an unassigned priority.
    NO_PRIORITY = -1

    def __post_init__(self) -> None:
        """Validate shapes/values and freeze the arrays."""
        n = len(self.names)
        for field_name in ("wcets", "periods", "deadlines", "priorities"):
            array = getattr(self, field_name)
            if array.shape != (n,):
                raise ValidationError(
                    f"TaskArrays.{field_name} must have shape ({n},), got "
                    f"{array.shape}"
                )
            array.setflags(write=False)
        if n and (
            np.any(self.wcets <= 0)
            or np.any(self.periods <= 0)
            or np.any(self.deadlines <= 0)
        ):
            raise ValidationError(
                "TaskArrays needs positive wcets, periods and deadlines"
            )

    @classmethod
    def from_tasks(cls, tasks: Iterable[RealTimeTask]) -> "TaskArrays":
        """Build the structure-of-arrays view of ``tasks`` (order kept).

        The tasks themselves have already been validated by the
        :class:`~repro.model.task.RealTimeTask` constructor; this is a
        straight column-wise copy.
        """
        task_list = list(tasks)
        return cls(
            names=tuple(t.name for t in task_list),
            wcets=np.array([t.wcet for t in task_list], dtype=np.float64),
            periods=np.array([t.period for t in task_list], dtype=np.float64),
            deadlines=np.array(
                [t.deadline for t in task_list], dtype=np.float64
            ),
            priorities=np.array(
                [
                    cls.NO_PRIORITY if t.priority is None else t.priority
                    for t in task_list
                ],
                dtype=np.int64,
            ),
        )

    def to_tasks(self) -> list[RealTimeTask]:
        """Reconstruct the :class:`RealTimeTask` objects (exact inverse
        of :meth:`from_tasks` — same order, same field values)."""
        return [
            RealTimeTask(
                name=name,
                wcet=float(self.wcets[i]),
                period=float(self.periods[i]),
                deadline=float(self.deadlines[i]),
                priority=(
                    None
                    if self.priorities[i] == self.NO_PRIORITY
                    else int(self.priorities[i])
                ),
            )
            for i, name in enumerate(self.names)
        ]

    def __len__(self) -> int:
        """Number of tasks in the set."""
        return len(self.names)

    def __iter__(self) -> Iterator[RealTimeTask]:
        """Iterate the tasks as model objects (reconstructing each)."""
        return iter(self.to_tasks())

    @property
    def utilizations(self) -> np.ndarray:
        """Per-task utilisations ``C / T`` (a fresh array)."""
        return self.wcets / self.periods

    @property
    def total_utilization(self) -> float:
        """Total utilisation ``Σ C_i / T_i`` of the set."""
        return float(np.sum(self.wcets / self.periods))

    def rm_order(self) -> np.ndarray:
        """Indices that sort the set into rate-monotonic priority order.

        The key matches
        :func:`repro.model.priority.rate_monotonic_order` exactly —
        ``(period, -wcet, name)`` — so the array path and the object
        path agree on the (total, deterministic) priority order.
        """
        return np.lexsort(
            (np.asarray(self.names), -self.wcets, self.periods)
        )

    def rm_sorted(self) -> "TaskArrays":
        """This set re-ordered into rate-monotonic priority order."""
        order = self.rm_order()
        return TaskArrays(
            names=tuple(self.names[i] for i in order),
            wcets=self.wcets[order],
            periods=self.periods[order],
            deadlines=self.deadlines[order],
            priorities=self.priorities[order],
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "TaskArrays":
        """Subset/reorder by ``indices`` (numpy fancy-indexing rules)."""
        idx = np.asarray(indices, dtype=np.intp)
        return TaskArrays(
            names=tuple(self.names[i] for i in idx),
            wcets=self.wcets[idx],
            periods=self.periods[idx],
            deadlines=self.deadlines[idx],
            priorities=self.priorities[idx],
        )


def pad_task_grid(
    sets: Sequence[TaskArrays],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pad many task sets into one rectangular analysis grid.

    Returns ``(wcets, periods, deadlines, valid)``, each of shape
    ``(S, N)`` where ``S = len(sets)`` and ``N`` is the largest set
    size; ``valid`` is the boolean occupancy mask.  Padding slots carry
    neutral values (``wcet = 0``, ``period = deadline = inf``) so the
    grid kernels can run unmasked arithmetic — a padded column
    contributes exactly ``0.0`` interference and never misses a
    deadline.  Element order within each row is the order of the input
    :class:`TaskArrays` (callers wanting priority order pass
    :meth:`TaskArrays.rm_sorted` sets).
    """
    count = len(sets)
    width = max((len(s) for s in sets), default=0)
    wcets = np.zeros((count, width))
    periods = np.full((count, width), np.inf)
    deadlines = np.full((count, width), np.inf)
    valid = np.zeros((count, width), dtype=bool)
    for row, task_arrays in enumerate(sets):
        n = len(task_arrays)
        wcets[row, :n] = task_arrays.wcets
        periods[row, :n] = task_arrays.periods
        deadlines[row, :n] = task_arrays.deadlines
        valid[row, :n] = True
    return wcets, periods, deadlines, valid
