"""Schedulability analysis substrate (paper Sec. II–III).

* :mod:`repro.analysis.arrays` — :class:`TaskArrays`, the
  structure-of-arrays task-set representation the batched kernels
  consume (see ``docs/analysis.md`` for the layer's API reference).
* :mod:`repro.analysis.dbf` — demand bound function and the Eq. (1)
  necessary feasibility condition (scalar + array forms).
* :mod:`repro.analysis.interference` — the linearised interference bound
  of Eq. (5) and the aggregate :class:`InterferenceEnv`.
* :mod:`repro.analysis.rta` — exact response-time analysis: scalar,
  whole-core batched, and whole-sweep grid solvers.
* :mod:`repro.analysis.admission` — incremental exact-RTA admission
  state for the partitioning inner loop.
* :mod:`repro.analysis.schedulability` — utilisation bounds, admission
  tests and whole-partition checks.
* :mod:`repro.analysis.slack` — per-core idle-capacity accounting.
"""

from repro.analysis.admission import ExactAdmissionCore
from repro.analysis.arrays import TaskArrays, pad_task_grid
from repro.analysis.blocking import (
    max_tolerable_blocking,
    max_tolerable_blocking_arrays,
    rt_schedulable_with_blocking,
    rt_schedulable_with_blocking_arrays,
)
from repro.analysis.dbf import (
    dbf_check_points,
    dbf_step_points_arrays,
    demand_bound,
    demand_bound_arrays,
    necessary_condition,
    necessary_condition_arrays,
    total_demand,
    total_demand_arrays,
)
from repro.analysis.hyperperiod import hyperperiod, recommended_horizon
from repro.analysis.interference import (
    InterferenceEnv,
    Interferer,
    linear_bound_met,
    linear_interference,
    linear_interference_arrays,
    min_feasible_period,
    min_feasible_periods_arrays,
)
from repro.analysis.rta import (
    core_response_times,
    core_response_times_batch,
    response_time,
    response_time_env,
    response_times_arrays,
    response_times_batch,
    response_times_grid,
    rta_schedulable,
    rta_schedulable_batch,
    rta_schedulable_sets,
)
from repro.analysis.schedulability import (
    AdmissionTest,
    breakdown_utilization,
    get_admission_test,
    hyperbolic_test,
    liu_layland_bound,
    liu_layland_test,
    partition_schedulable,
    rta_test,
    security_schedulable_on_core,
    utilization_test,
)
from repro.analysis.slack import CoreSlack, core_slack, partition_slack

__all__ = [
    "TaskArrays",
    "pad_task_grid",
    "ExactAdmissionCore",
    "demand_bound",
    "total_demand",
    "dbf_check_points",
    "necessary_condition",
    "demand_bound_arrays",
    "total_demand_arrays",
    "dbf_step_points_arrays",
    "necessary_condition_arrays",
    "Interferer",
    "InterferenceEnv",
    "linear_interference",
    "linear_bound_met",
    "min_feasible_period",
    "linear_interference_arrays",
    "min_feasible_periods_arrays",
    "response_time",
    "response_time_env",
    "core_response_times",
    "core_response_times_batch",
    "response_times_arrays",
    "response_times_batch",
    "response_times_grid",
    "rta_schedulable",
    "rta_schedulable_batch",
    "rta_schedulable_sets",
    "rt_schedulable_with_blocking_arrays",
    "max_tolerable_blocking_arrays",
    "AdmissionTest",
    "liu_layland_bound",
    "liu_layland_test",
    "hyperbolic_test",
    "utilization_test",
    "rta_test",
    "get_admission_test",
    "partition_schedulable",
    "security_schedulable_on_core",
    "breakdown_utilization",
    "CoreSlack",
    "core_slack",
    "partition_slack",
    "rt_schedulable_with_blocking",
    "max_tolerable_blocking",
    "hyperperiod",
    "recommended_horizon",
]
