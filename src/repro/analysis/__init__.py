"""Schedulability analysis substrate (paper Sec. II–III).

* :mod:`repro.analysis.dbf` — demand bound function and the Eq. (1)
  necessary feasibility condition.
* :mod:`repro.analysis.interference` — the linearised interference bound
  of Eq. (5) and the aggregate :class:`InterferenceEnv`.
* :mod:`repro.analysis.rta` — exact response-time analysis.
* :mod:`repro.analysis.schedulability` — utilisation bounds, admission
  tests and whole-partition checks.
* :mod:`repro.analysis.slack` — per-core idle-capacity accounting.
"""

from repro.analysis.blocking import (
    max_tolerable_blocking,
    rt_schedulable_with_blocking,
)
from repro.analysis.dbf import (
    dbf_check_points,
    demand_bound,
    necessary_condition,
    total_demand,
)
from repro.analysis.hyperperiod import hyperperiod, recommended_horizon
from repro.analysis.interference import (
    InterferenceEnv,
    Interferer,
    linear_bound_met,
    linear_interference,
    min_feasible_period,
)
from repro.analysis.rta import (
    core_response_times,
    response_time,
    response_time_env,
    rta_schedulable,
)
from repro.analysis.schedulability import (
    AdmissionTest,
    breakdown_utilization,
    get_admission_test,
    hyperbolic_test,
    liu_layland_bound,
    liu_layland_test,
    partition_schedulable,
    rta_test,
    security_schedulable_on_core,
    utilization_test,
)
from repro.analysis.slack import CoreSlack, core_slack, partition_slack

__all__ = [
    "demand_bound",
    "total_demand",
    "dbf_check_points",
    "necessary_condition",
    "Interferer",
    "InterferenceEnv",
    "linear_interference",
    "linear_bound_met",
    "min_feasible_period",
    "response_time",
    "response_time_env",
    "core_response_times",
    "rta_schedulable",
    "AdmissionTest",
    "liu_layland_bound",
    "liu_layland_test",
    "hyperbolic_test",
    "utilization_test",
    "rta_test",
    "get_admission_test",
    "partition_schedulable",
    "security_schedulable_on_core",
    "breakdown_utilization",
    "CoreSlack",
    "core_slack",
    "partition_slack",
    "rt_schedulable_with_blocking",
    "max_tolerable_blocking",
    "hyperperiod",
    "recommended_horizon",
]
