"""Hyperperiod computation and simulation-horizon selection.

A periodic schedule repeats every hyperperiod (the LCM of the task
periods), so a simulation horizon of one hyperperiod plus the longest
busy prefix observes every distinct scheduling pattern.  Real-valued
periods (the synthetic generator produces them) do not have an exact
LCM, so :func:`hyperperiod` rationalises them to a configurable
resolution first; :func:`recommended_horizon` then caps the result to a
practical bound (synthetic periods are deliberately not harmonised, so
their true hyperperiod can be astronomically large — the cap is what
any simulation-based study, including the paper's 500 s runs,
implicitly applies).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable

from repro.errors import ValidationError

__all__ = ["hyperperiod", "recommended_horizon"]


def hyperperiod(
    periods: Iterable[float], resolution: float = 1e-3
) -> float:
    """LCM of ``periods`` after rounding each to ``resolution``.

    Raises :class:`ValidationError` for empty input or non-positive
    periods.  The result is exact for periods that are integer
    multiples of ``resolution``.
    """
    values = list(periods)
    if not values:
        raise ValidationError("hyperperiod of an empty set is undefined")
    if resolution <= 0:
        raise ValidationError(f"resolution must be positive: {resolution}")
    lcm = 1
    for period in values:
        if period <= 0:
            raise ValidationError(f"period must be positive: {period}")
        ticks = Fraction(period / resolution).limit_denominator(1)
        ticks_int = max(int(ticks), 1)
        lcm = lcm * ticks_int // math.gcd(lcm, ticks_int)
    return lcm * resolution


def recommended_horizon(
    periods: Iterable[float],
    resolution: float = 1e-3,
    cap_factor: float = 100.0,
) -> float:
    """A practical simulation horizon for the given periods.

    One hyperperiod when it is small; otherwise ``cap_factor`` times the
    largest period (long enough for many instances of even the slowest
    task, the criterion behind the paper's 500 s runs).
    """
    values = list(periods)
    cap = cap_factor * max(values, default=0.0)
    try:
        h = hyperperiod(values, resolution=resolution)
    except (ValidationError, OverflowError):
        return cap
    return min(h, cap) if cap > 0 else h
