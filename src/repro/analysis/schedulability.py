"""Schedulability tests for fixed-priority single cores and partitioned
systems.

The partitioning heuristics (paper Sec. IV-B uses best-fit) need an
admission test for "does this core still accept this task".  Three tests
of increasing precision are provided:

* :func:`liu_layland_test` — the classic ``U ≤ n(2^{1/n} − 1)`` bound.
* :func:`hyperbolic_test` — Bini–Buttazzo ``Π(U_i + 1) ≤ 2``, strictly
  dominates Liu–Layland.
* :func:`rta_test` — exact response-time analysis, the default.

:func:`partition_schedulable` verifies a complete partition core by
core; :func:`system_schedulable` additionally checks an allocated
security workload (each security task must meet its assigned period on
its assigned core).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.analysis.interference import InterferenceEnv
from repro.analysis.rta import (
    response_time,
    rta_schedulable,
    rta_schedulable_batch,
)
from repro.model.system import Partition
from repro.model.task import RealTimeTask, SecurityTask

__all__ = [
    "liu_layland_bound",
    "liu_layland_test",
    "hyperbolic_test",
    "utilization_test",
    "rta_test",
    "rta_batch_test",
    "AdmissionTest",
    "ADMISSION_TESTS",
    "get_admission_test",
    "partition_schedulable",
    "security_schedulable_on_core",
    "breakdown_utilization",
]

#: Signature of a per-core admission test: given the full set of
#: real-time tasks proposed for one core, return whether the core can
#: schedule all of them under RM.
AdmissionTest = Callable[[Sequence[RealTimeTask]], bool]


def liu_layland_bound(n: int) -> float:
    """The Liu & Layland utilisation bound ``n(2^{1/n} − 1)`` for ``n``
    tasks (→ ln 2 ≈ 0.693 as ``n`` grows)."""
    if n <= 0:
        return 0.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_test(tasks: Sequence[RealTimeTask]) -> bool:
    """Sufficient RM test: total utilisation within the LL bound."""
    total = sum(task.utilization for task in tasks)
    return total <= liu_layland_bound(len(tasks)) + 1e-12


def hyperbolic_test(tasks: Sequence[RealTimeTask]) -> bool:
    """Bini–Buttazzo hyperbolic bound: ``Π (U_i + 1) ≤ 2``."""
    product = 1.0
    for task in tasks:
        product *= task.utilization + 1.0
        if product > 2.0 + 1e-12:
            return False
    return True


def utilization_test(tasks: Sequence[RealTimeTask]) -> bool:
    """Necessary-only test ``Σ U ≤ 1``; useful as the most permissive
    admission policy for design-space exploration."""
    return sum(task.utilization for task in tasks) <= 1.0 + 1e-12


#: Core sizes from which the vectorised RTA beats the scalar loop
#: (numpy setup overhead amortises over the per-task fixed points;
#: measured crossover ≈ 15 tasks on CPython 3.11 / numpy 1.26+).
_RTA_BATCH_MIN_TASKS = 16


def rta_test(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact RM schedulability via response-time analysis (default).

    Dispatches to the vectorised batch solver
    (:func:`repro.analysis.rta.rta_schedulable_batch`) once the core
    holds :data:`_RTA_BATCH_MIN_TASKS` tasks; both paths are
    decision-equivalent (tested), the batch one is just faster on the
    partitioning heuristics' hot admission loop.
    """
    if len(tasks) >= _RTA_BATCH_MIN_TASKS:
        return rta_schedulable_batch(tasks)
    return rta_schedulable(tasks)


def rta_batch_test(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact RM schedulability, always via the batched solver."""
    return rta_schedulable_batch(tasks)


_TESTS: dict[str, AdmissionTest] = {
    "rta": rta_test,
    "rta-batch": rta_batch_test,
    "hyperbolic": hyperbolic_test,
    "liu-layland": liu_layland_test,
    "utilization": utilization_test,
}


#: Known admission-test names, in registration order (the scenario
#: validator and the CLI list consume this instead of private state).
ADMISSION_TESTS = tuple(_TESTS)


def get_admission_test(name: str) -> AdmissionTest:
    """Look up an admission test by name (``rta``, ``hyperbolic``,
    ``liu-layland`` or ``utilization``)."""
    try:
        return _TESTS[name]
    except KeyError:
        from repro.errors import ConfigError

        raise ConfigError(
            f"unknown admission test {name!r}; known tests: "
            f"{', '.join(sorted(_TESTS))}"
        ) from None


def partition_schedulable(
    partition: Partition, test: AdmissionTest = rta_test
) -> bool:
    """Whether every core of ``partition`` passes ``test``."""
    return all(
        test(partition.tasks_on(core)) for core in partition.platform
    )


def security_schedulable_on_core(
    task: SecurityTask,
    period: float,
    rt_tasks: Iterable[RealTimeTask],
    hp_security: Iterable[tuple[SecurityTask, float]] = (),
    exact: bool = False,
) -> bool:
    """Does ``task`` meet its deadline (= ``period``) on a core?

    With ``exact=False`` (default) uses the paper's linearised Eq. (6);
    with ``exact=True`` uses exact RTA.  ``hp_security`` carries the
    higher-priority security tasks already placed on the core together
    with their assigned periods.
    """
    env = InterferenceEnv.on_core(rt_tasks, list(hp_security))
    if exact:
        return response_time(task.wcet, env.interferers, limit=period) <= (
            period + 1e-9
        )
    return task.wcet + env.interference(period) <= period + 1e-9


def breakdown_utilization(
    tasks: Sequence[RealTimeTask],
    test: AdmissionTest = rta_test,
    tolerance: float = 1e-4,
) -> float:
    """Largest uniform scaling factor ``s`` such that the task set with
    WCETs ``s·C`` still passes ``test`` on one core.

    A classic sensitivity metric; exposed for the ablation studies.  Uses
    bisection on ``s ∈ (0, 1/U]``.
    """
    total = sum(task.utilization for task in tasks)
    if total <= 0:
        return math.inf

    def scaled_ok(scale: float) -> bool:
        """Whether the set stays schedulable with WCETs scaled."""
        scaled = [
            RealTimeTask(
                name=t.name,
                wcet=t.wcet * scale,
                period=t.period,
                deadline=t.deadline,
            )
            for t in tasks
            if t.wcet * scale > 0
        ]
        try:
            return test(scaled)
        except Exception:
            return False

    low, high = 0.0, 1.0 / total
    if scaled_ok(high):
        return high
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if scaled_ok(mid):
            low = mid
        else:
            high = mid
    return low
