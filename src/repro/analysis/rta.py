"""Exact response-time analysis (RTA) for fixed-priority preemptive
scheduling on a single core.

The classic Audsley/Joseph–Pandya recurrence: the worst-case response
time of a task with WCET ``C`` under interference from higher-priority
tasks ``(C_i, T_i)`` released synchronously is the least fixed point of

    R = C + Σ_i ⌈R / T_i⌉ · C_i.

The paper replaces the ceiling with the linear envelope ``1 + R/T`` to
stay inside geometric programming (Eq. 5); this module provides the exact
version, used (a) to admit real-time partitions and (b) by the exact-RTA
allocator ablation that quantifies the linearisation's pessimism.

A useful structural fact exploited by the ablation: the fixed point does
**not** depend on the analysed task's own period (only its WCET and the
interferers), so the exact minimal period of a lowest-priority security
task is simply ``max(T_des, R)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.errors import ValidationError
from repro.model.task import RealTimeTask

__all__ = [
    "response_time",
    "response_time_env",
    "rta_schedulable",
    "core_response_times",
]

#: Safety cap on fixed-point iterations; the recurrence is monotone and
#: bounded by ``limit`` so this only guards against degenerate inputs.
_MAX_ITERATIONS = 100_000


def response_time(
    wcet: float,
    interferers: Iterable[Interferer] | Sequence[tuple[float, float]],
    limit: float = math.inf,
    blocking: float = 0.0,
) -> float:
    """Least fixed point of the RTA recurrence, or ``inf`` if it exceeds
    ``limit``.

    Parameters
    ----------
    wcet:
        WCET of the task under analysis.
    interferers:
        Higher-priority tasks, as :class:`Interferer` objects or plain
        ``(wcet, period)`` pairs.
    limit:
        Abandon the iteration once the response time exceeds this value
        (typically the task's deadline); returns ``inf`` in that case.
    blocking:
        Optional blocking term (e.g. from non-preemptive lower-priority
        execution); added once, outside the ceiling terms.
    """
    if wcet <= 0:
        raise ValidationError(f"wcet must be positive, got {wcet!r}")
    if blocking < 0:
        raise ValidationError(f"blocking must be non-negative: {blocking!r}")
    pairs = [
        (i.wcet, i.period) if isinstance(i, Interferer) else (i[0], i[1])
        for i in interferers
    ]
    for c, t in pairs:
        if c <= 0 or t <= 0:
            raise ValidationError(
                f"interferer needs positive wcet/period, got ({c!r}, {t!r})"
            )
    # A quick divergence check: if the interferers already saturate the
    # core, the recurrence has no finite fixed point.
    if sum(c / t for c, t in pairs) >= 1.0:
        return math.inf

    current = wcet + blocking + sum(c for c, _ in pairs)
    for _ in range(_MAX_ITERATIONS):
        if current > limit:
            return math.inf
        nxt = (
            wcet
            + blocking
            + sum(math.ceil(current / t - 1e-12) * c for c, t in pairs)
        )
        if nxt <= current + 1e-12:
            return current
        current = nxt
    raise ValidationError(
        "response-time iteration failed to converge; input parameters are "
        "likely degenerate (extremely small periods vs. horizon)"
    )


def response_time_env(
    wcet: float,
    env: InterferenceEnv,
    limit: float = math.inf,
    blocking: float = 0.0,
) -> float:
    """:func:`response_time` over an :class:`InterferenceEnv`."""
    return response_time(wcet, env.interferers, limit=limit, blocking=blocking)


def core_response_times(
    tasks: Sequence[RealTimeTask],
) -> dict[str, float]:
    """Response time of every task on one core under RM order.

    ``tasks`` is the set of real-time tasks sharing a core; priorities
    follow the rate monotonic order (ties as in
    :func:`repro.model.priority.rate_monotonic_order`).  Returns a
    name → response-time mapping with ``inf`` marking unschedulable
    tasks.
    """
    from repro.model.priority import rate_monotonic_order

    ordered = rate_monotonic_order(tasks)
    results: dict[str, float] = {}
    higher: list[Interferer] = []
    for task in ordered:
        results[task.name] = response_time(
            task.wcet, higher, limit=task.deadline
        )
        higher.append(Interferer.from_rt(task))
    return results


def rta_schedulable(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact schedulability of one core's real-time tasks under RM.

    True iff every task's response time is at most its deadline.  This is
    the admission test used by the partitioning heuristics (the paper
    assumes "real-time tasks are schedulable and assigned to the cores
    using existing multicore task partitioning algorithms").
    """
    by_name = {task.name: task for task in tasks}
    return all(
        response <= by_name[name].deadline + 1e-9
        for name, response in core_response_times(tasks).items()
    )
