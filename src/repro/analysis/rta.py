"""Exact response-time analysis (RTA) for fixed-priority preemptive
scheduling on a single core.

The classic Audsley/Joseph–Pandya recurrence: the worst-case response
time of a task with WCET ``C`` under interference from higher-priority
tasks ``(C_i, T_i)`` released synchronously is the least fixed point of

    R = C + Σ_i ⌈R / T_i⌉ · C_i.

The paper replaces the ceiling with the linear envelope ``1 + R/T`` to
stay inside geometric programming (Eq. 5); this module provides the exact
version, used (a) to admit real-time partitions and (b) by the exact-RTA
allocator ablation that quantifies the linearisation's pessimism.

A useful structural fact exploited by the ablation: the fixed point does
**not** depend on the analysed task's own period (only its WCET and the
interferers), so the exact minimal period of a lowest-priority security
task is simply ``max(T_des, R)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.arrays import TaskArrays, pad_task_grid
from repro.analysis.interference import Interferer, InterferenceEnv
from repro.errors import ValidationError
from repro.model.task import RealTimeTask

__all__ = [
    "response_time",
    "response_time_env",
    "rta_schedulable",
    "core_response_times",
    "response_times_batch",
    "response_times_arrays",
    "response_times_grid",
    "core_response_times_batch",
    "rta_schedulable_batch",
    "rta_schedulable_sets",
]

#: Safety cap on fixed-point iterations; the recurrence is monotone and
#: bounded by ``limit`` so this only guards against degenerate inputs.
_MAX_ITERATIONS = 100_000


def response_time(
    wcet: float,
    interferers: Iterable[Interferer] | Sequence[tuple[float, float]],
    limit: float = math.inf,
    blocking: float = 0.0,
) -> float:
    """Least fixed point of the RTA recurrence, or ``inf`` if it exceeds
    ``limit``.

    Parameters
    ----------
    wcet:
        WCET of the task under analysis.
    interferers:
        Higher-priority tasks, as :class:`Interferer` objects or plain
        ``(wcet, period)`` pairs.
    limit:
        Abandon the iteration once the response time exceeds this value
        (typically the task's deadline); returns ``inf`` in that case.
    blocking:
        Optional blocking term (e.g. from non-preemptive lower-priority
        execution); added once, outside the ceiling terms.
    """
    if wcet <= 0:
        raise ValidationError(f"wcet must be positive, got {wcet!r}")
    if blocking < 0:
        raise ValidationError(f"blocking must be non-negative: {blocking!r}")
    pairs = [
        (i.wcet, i.period) if isinstance(i, Interferer) else (i[0], i[1])
        for i in interferers
    ]
    for c, t in pairs:
        if c <= 0 or t <= 0:
            raise ValidationError(
                f"interferer needs positive wcet/period, got ({c!r}, {t!r})"
            )
    # A quick divergence check: if the interferers already saturate the
    # core, the recurrence has no finite fixed point.
    if sum(c / t for c, t in pairs) >= 1.0:
        return math.inf

    current = wcet + blocking + sum(c for c, _ in pairs)
    for _ in range(_MAX_ITERATIONS):
        if current > limit:
            return math.inf
        nxt = (
            wcet
            + blocking
            + sum(math.ceil(current / t - 1e-12) * c for c, t in pairs)
        )
        if nxt <= current + 1e-12:
            return current
        current = nxt
    raise ValidationError(
        "response-time iteration failed to converge; input parameters are "
        "likely degenerate (extremely small periods vs. horizon)"
    )


def response_time_env(
    wcet: float,
    env: InterferenceEnv,
    limit: float = math.inf,
    blocking: float = 0.0,
) -> float:
    """:func:`response_time` over an :class:`InterferenceEnv`."""
    return response_time(wcet, env.interferers, limit=limit, blocking=blocking)


def core_response_times(
    tasks: Sequence[RealTimeTask],
) -> dict[str, float]:
    """Response time of every task on one core under RM order.

    ``tasks`` is the set of real-time tasks sharing a core; priorities
    follow the rate monotonic order (ties as in
    :func:`repro.model.priority.rate_monotonic_order`).  Returns a
    name → response-time mapping with ``inf`` marking unschedulable
    tasks.
    """
    from repro.model.priority import rate_monotonic_order

    ordered = rate_monotonic_order(tasks)
    results: dict[str, float] = {}
    higher: list[Interferer] = []
    for task in ordered:
        results[task.name] = response_time(
            task.wcet, higher, limit=task.deadline
        )
        higher.append(Interferer.from_rt(task))
    return results


def response_times_batch(
    wcets: np.ndarray | Sequence[float],
    periods: np.ndarray | Sequence[float],
    deadlines: np.ndarray | Sequence[float] | None = None,
    blocking: float = 0.0,
) -> np.ndarray:
    """Vectorised RTA for one core: all tasks' fixed points at once.

    ``wcets``/``periods`` list the core's tasks in priority order
    (highest first); task ``i`` suffers interference from tasks
    ``j < i``.  Solves every task's recurrence simultaneously with
    numpy — one ``O(n²)`` matrix iteration instead of ``n`` scalar
    fixed-point loops — and returns the response-time vector with
    ``inf`` marking tasks whose fixed point exceeds their deadline (or
    diverges).  Semantics match :func:`response_time` exactly: same
    initialisation, same ``1e-12`` ceiling guard, same divergence
    precheck on the interferer utilisation.

    ``deadlines`` defaults to no limit (``inf`` everywhere); pass the
    deadline vector to reproduce the ``limit`` behaviour of the scalar
    path.
    """
    wcet_vec = np.asarray(wcets, dtype=float)
    period_vec = np.asarray(periods, dtype=float)
    if wcet_vec.shape != period_vec.shape or wcet_vec.ndim != 1:
        raise ValidationError(
            "wcets and periods must be 1-D arrays of equal length"
        )
    n = wcet_vec.size
    if n == 0:
        return np.zeros(0)
    if np.any(wcet_vec <= 0) or np.any(period_vec <= 0):
        raise ValidationError("batched RTA needs positive wcets/periods")
    if blocking < 0:
        raise ValidationError(f"blocking must be non-negative: {blocking!r}")
    if deadlines is None:
        deadline_vec = np.full(n, math.inf)
    else:
        deadline_vec = np.asarray(deadlines, dtype=float)
        if deadline_vec.shape != wcet_vec.shape:
            raise ValidationError("deadlines must match the task count")

    # Tasks whose higher-priority interferers already saturate the core
    # have no finite fixed point (the scalar path's divergence precheck).
    utilization = wcet_vec / period_vec
    hp_utilization = np.concatenate(([0.0], np.cumsum(utilization)[:-1]))
    diverged = hp_utilization >= 1.0

    # mask[i, j] = 1 iff task j interferes with task i (strictly higher
    # priority); masked WCET matrix folds the Σ ⌈R/T_j⌉·C_j into one
    # matrix-vector product per iteration.
    mask = np.tri(n, k=-1)
    masked_wcet = mask * wcet_vec[None, :]

    result = np.where(diverged, math.inf, np.nan)

    # Active-task compaction: tasks settle after very different iteration
    # counts (high-priority tasks in one or two, the lowest priority in
    # dozens), so settled tasks are sliced out of the working arrays
    # instead of being re-iterated.  Slicing only drops *rows* of the
    # masked-WCET matrix — the interferer axis the per-task sum reduces
    # over is untouched — so every task's iterate sequence, and hence
    # the result, is bit-for-bit what the uncompacted loop produced.
    rows = np.flatnonzero(~diverged)
    cur = (wcet_vec + blocking + mask @ wcet_vec)[rows]
    mw = masked_wcet[rows]
    w = wcet_vec[rows]
    d = deadline_vec[rows]
    for _ in range(_MAX_ITERATIONS):
        if rows.size == 0:
            break
        # The recurrence is monotone: once the iterate exceeds the
        # deadline the fixed point does too, so those tasks are inf.
        over = cur > d
        if over.any():
            result[rows[over]] = math.inf
            keep = ~over
            rows = rows[keep]
            cur = cur[keep]
            mw = mw[keep]
            w = w[keep]
            d = d[keep]
            if rows.size == 0:
                break
        ceil_terms = np.ceil(cur[:, None] / period_vec[None, :] - 1e-12)
        nxt = w + blocking + (ceil_terms * mw).sum(axis=1)
        settled = nxt <= cur + 1e-12
        if settled.any():
            result[rows[settled]] = cur[settled]
            keep = ~settled
            rows = rows[keep]
            nxt = nxt[keep]
            mw = mw[keep]
            w = w[keep]
            d = d[keep]
        cur = nxt
    if rows.size:
        raise ValidationError(
            "batched response-time iteration failed to converge; input "
            "parameters are likely degenerate"
        )
    return result


def response_times_arrays(
    arrays: TaskArrays, blocking: float = 0.0
) -> np.ndarray:
    """Whole-core RTA over a :class:`TaskArrays` set, in set order.

    Sorts the set into rate-monotonic priority order, solves every
    task's recurrence in one call to :func:`response_times_batch`, and
    scatters the responses back to the input order (element ``i`` of
    the result is the response time of ``arrays.names[i]``).  ``inf``
    marks tasks whose fixed point exceeds their deadline or diverges.
    """
    order = arrays.rm_order()
    responses = response_times_batch(
        arrays.wcets[order],
        arrays.periods[order],
        arrays.deadlines[order],
        blocking=blocking,
    )
    out = np.empty(len(arrays))
    out[order] = responses
    return out


def core_response_times_batch(
    tasks: Sequence[RealTimeTask],
) -> dict[str, float]:
    """Batched equivalent of :func:`core_response_times`.

    Same RM ordering, same name → response-time mapping with ``inf``
    for unschedulable tasks; agrees with the scalar path to floating-
    point round-off (tested to 1e-9).
    """
    arrays = TaskArrays.from_tasks(tasks).rm_sorted()
    responses = response_times_batch(
        arrays.wcets, arrays.periods, arrays.deadlines
    )
    return {name: float(r) for name, r in zip(arrays.names, responses)}


def rta_schedulable_batch(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact RM schedulability via the batched RTA fast path.

    Decision-equivalent to :func:`rta_schedulable`; preferred on the
    hot admission path once the core holds enough tasks to amortise the
    numpy setup cost.
    """
    if not len(tasks):
        return True
    arrays = TaskArrays.from_tasks(tasks).rm_sorted()
    responses = response_times_batch(
        arrays.wcets, arrays.periods, arrays.deadlines
    )
    return bool(np.all(responses <= arrays.deadlines + 1e-9))


def response_times_grid(
    wcets: np.ndarray,
    periods: np.ndarray,
    deadlines: np.ndarray | None = None,
    valid: np.ndarray | None = None,
    blocking: float = 0.0,
) -> np.ndarray:
    """RTA over a whole *grid* of task sets at once.

    The 2-D generalisation of :func:`response_times_batch`: each row of
    the ``(S, N)`` inputs is one core/placement candidate in priority
    order (highest first), and all ``S·N`` fixed points are iterated
    simultaneously — one array program for an entire utilisation
    sweep's admission tests instead of ``S`` separate solves.  Rows
    may hold fewer than ``N`` tasks; ``valid`` masks the occupied
    slots (padding must carry ``wcet = 0`` and ``period = deadline =
    inf``, which is what :func:`repro.analysis.arrays.pad_task_grid`
    produces — a padded slot contributes zero interference and its own
    response time is reported as ``0.0``).

    Row semantics match :func:`response_times_batch` exactly: same
    initialisation, same ``1e-12`` ceiling guard and convergence
    tolerance, same divergence precheck on the higher-priority
    utilisation, ``inf`` once an iterate passes the row's deadline.
    """
    wcets = np.asarray(wcets, dtype=float)
    periods = np.asarray(periods, dtype=float)
    if wcets.ndim != 2 or wcets.shape != periods.shape:
        raise ValidationError(
            "grid RTA needs 2-D wcets/periods of identical shape"
        )
    count, width = wcets.shape
    if valid is None:
        valid = np.ones((count, width), dtype=bool)
    else:
        valid = np.asarray(valid, dtype=bool)
        if valid.shape != wcets.shape:
            raise ValidationError("valid mask must match the grid shape")
    if deadlines is None:
        deadlines = np.full((count, width), math.inf)
    else:
        deadlines = np.asarray(deadlines, dtype=float)
        if deadlines.shape != wcets.shape:
            raise ValidationError("deadlines must match the grid shape")
    if blocking < 0:
        raise ValidationError(f"blocking must be non-negative: {blocking!r}")
    if np.any(wcets[valid] <= 0) or np.any(periods[valid] <= 0):
        raise ValidationError("grid RTA needs positive wcets/periods")
    if width == 0 or count == 0:
        return np.zeros((count, width))

    utilization = np.where(valid, wcets / periods, 0.0)
    hp_utilization = np.concatenate(
        (np.zeros((count, 1)), np.cumsum(utilization, axis=1)[:, :-1]),
        axis=1,
    )
    diverged = valid & (hp_utilization >= 1.0)

    result = np.zeros((count, width))
    result[valid] = np.nan
    result[diverged] = math.inf

    # The grid is S·N *independent* fixed points (a slot's update reads
    # only its own iterate plus its row's constant period/WCET vectors),
    # so the iteration runs over a flattened task axis with per-task
    # compaction: each task is sliced out of the working arrays the
    # moment it settles, making total work track the sum of per-task
    # iteration counts — like the scalar loop — instead of grid size ×
    # the slowest task.  The flattened tasks are further *bucketed by
    # priority slot*: a task at slot ``k`` reads only columns
    # ``[0, k)`` of its interference row — every later column is
    # identically zero — so rows are grouped into doubling width
    # classes and each bucket iterates over truncated working
    # matrices.  Dropping exact-zero tail columns leaves every partial
    # sum bit-identical; the kernel is memory-bound, so skipping the
    # zero tail (~half of a typical grid) is a near-proportional win.
    res_flat = result.reshape(-1)
    live = np.flatnonzero((valid & ~diverged).reshape(-1))
    set_idx_all = live // width
    slot_idx_all = live % width
    # tri[i, j] = 1 iff slot j interferes with slot i (strictly higher
    # priority); padded slots have zero WCET so they drop out of the
    # interference sum.  Working matrices are built per live task
    # directly — the (S, N, N) intermediate would mostly be sliced away.
    tri = np.tri(width, k=-1)
    bucket_widths = []
    next_width = 4
    while next_width < width:
        bucket_widths.append(next_width)
        next_width *= 2
    bucket_widths.append(width)
    lower = 0
    for bucket_width in bucket_widths:
        in_bucket = (slot_idx_all >= lower) & (slot_idx_all < bucket_width)
        lower = bucket_width
        rows = live[in_bucket]
        if rows.size == 0:
            continue
        set_idx = set_idx_all[in_bucket]
        slot_idx = slot_idx_all[in_bucket]
        # Slice columns first (a view), then gather rows — gathering
        # the full width only to slice it would copy twice the bytes.
        mw = tri[:, :bucket_width][slot_idx] * wcets[:, :bucket_width][set_idx]
        pv = periods[:, :bucket_width][set_idx]
        w = wcets.reshape(-1)[rows]
        d = deadlines.reshape(-1)[rows]
        cur = w + blocking + mw.sum(axis=1)
        buf = np.empty_like(mw)
        # Rows whose result is already written (settled, or past their
        # deadline → inf).  They keep riding the update harmlessly —
        # every live fixed point is finite (divergence was prechecked),
        # a settled iterate is exactly stable, and an over-deadline
        # iterate just keeps climbing its own staircase — so the
        # working arrays are compacted only when retired rows reach a
        # quarter of the bucket, instead of copying every matrix on
        # every iteration.
        retired = np.zeros(rows.size, dtype=bool)
        n_retired = 0
        converged = False
        for _ in range(_MAX_ITERATIONS):
            # The recurrence is monotone: once the iterate exceeds the
            # deadline the fixed point does too, so those tasks are inf.
            over = (cur > d) & ~retired
            if over.any():
                res_flat[rows[over]] = math.inf
                retired |= over
                n_retired += int(over.sum())
                if n_retired == rows.size:
                    converged = True
                    break
            # One preallocated (L, N) buffer reused in place across the
            # elementwise chain, then a fused rowwise dot for the
            # interference sum — one pass instead of a multiply
            # write-back plus a reduction.  The dot's accumulation
            # order can differ from ``(terms * mw).sum(axis=1)`` by a
            # few ulp, which the grid's decision-level contract absorbs
            # (verdicts are checked against a 1e-9 deadline slack, not
            # bitwise).
            terms = buf[: rows.size]
            np.divide(cur[:, None], pv, out=terms)
            terms -= 1e-12
            np.ceil(terms, out=terms)
            nxt = np.einsum("ij,ij->i", terms, mw)
            nxt += w
            nxt += blocking
            settled = (nxt <= cur + 1e-12) & ~retired
            if settled.any():
                res_flat[rows[settled]] = cur[settled]
                retired |= settled
                n_retired += int(settled.sum())
            cur = nxt
            if n_retired == rows.size:
                converged = True
                break
            if n_retired * 4 >= rows.size:
                keep = ~retired
                rows = rows[keep]
                cur = cur[keep]
                w = w[keep]
                d = d[keep]
                mw = mw[keep]
                pv = pv[keep]
                buf = buf[: rows.size]
                retired = np.zeros(rows.size, dtype=bool)
                n_retired = 0
        if not converged:
            raise ValidationError(
                "grid response-time iteration failed to converge; input "
                "parameters are likely degenerate"
            )
    return result


def rta_schedulable_sets(
    task_sets: Sequence[Sequence[RealTimeTask] | TaskArrays],
) -> np.ndarray:
    """Exact RM schedulability of many independent task sets at once.

    The sweep-level entry point: accepts whole cores — each element a
    sequence of :class:`RealTimeTask` or a prebuilt
    :class:`TaskArrays` — pads them into one rectangular grid and
    answers every admission question with a single
    :func:`response_times_grid` solve.  Returns a boolean vector
    (``True`` = every task of that set meets its deadline), decision-
    equivalent per set to :func:`rta_schedulable` /
    :func:`rta_schedulable_batch`.
    """
    if not len(task_sets):
        return np.zeros(0, dtype=bool)
    ordered = [
        (
            ts if isinstance(ts, TaskArrays) else TaskArrays.from_tasks(ts)
        ).rm_sorted()
        for ts in task_sets
    ]
    wcets, periods, deadlines, valid = pad_task_grid(ordered)
    responses = response_times_grid(wcets, periods, deadlines, valid)
    return np.all(responses <= deadlines + 1e-9, axis=1)


def rta_schedulable(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact schedulability of one core's real-time tasks under RM.

    True iff every task's response time is at most its deadline.  This is
    the admission test used by the partitioning heuristics (the paper
    assumes "real-time tasks are schedulable and assigned to the cores
    using existing multicore task partitioning algorithms").
    """
    by_name = {task.name: task for task in tasks}
    return all(
        response <= by_name[name].deadline + 1e-9
        for name, response in core_response_times(tasks).items()
    )
