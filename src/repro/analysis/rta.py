"""Exact response-time analysis (RTA) for fixed-priority preemptive
scheduling on a single core.

The classic Audsley/Joseph–Pandya recurrence: the worst-case response
time of a task with WCET ``C`` under interference from higher-priority
tasks ``(C_i, T_i)`` released synchronously is the least fixed point of

    R = C + Σ_i ⌈R / T_i⌉ · C_i.

The paper replaces the ceiling with the linear envelope ``1 + R/T`` to
stay inside geometric programming (Eq. 5); this module provides the exact
version, used (a) to admit real-time partitions and (b) by the exact-RTA
allocator ablation that quantifies the linearisation's pessimism.

A useful structural fact exploited by the ablation: the fixed point does
**not** depend on the analysed task's own period (only its WCET and the
interferers), so the exact minimal period of a lowest-priority security
task is simply ``max(T_des, R)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.interference import Interferer, InterferenceEnv
from repro.errors import ValidationError
from repro.model.task import RealTimeTask

__all__ = [
    "response_time",
    "response_time_env",
    "rta_schedulable",
    "core_response_times",
    "response_times_batch",
    "core_response_times_batch",
    "rta_schedulable_batch",
]

#: Safety cap on fixed-point iterations; the recurrence is monotone and
#: bounded by ``limit`` so this only guards against degenerate inputs.
_MAX_ITERATIONS = 100_000


def response_time(
    wcet: float,
    interferers: Iterable[Interferer] | Sequence[tuple[float, float]],
    limit: float = math.inf,
    blocking: float = 0.0,
) -> float:
    """Least fixed point of the RTA recurrence, or ``inf`` if it exceeds
    ``limit``.

    Parameters
    ----------
    wcet:
        WCET of the task under analysis.
    interferers:
        Higher-priority tasks, as :class:`Interferer` objects or plain
        ``(wcet, period)`` pairs.
    limit:
        Abandon the iteration once the response time exceeds this value
        (typically the task's deadline); returns ``inf`` in that case.
    blocking:
        Optional blocking term (e.g. from non-preemptive lower-priority
        execution); added once, outside the ceiling terms.
    """
    if wcet <= 0:
        raise ValidationError(f"wcet must be positive, got {wcet!r}")
    if blocking < 0:
        raise ValidationError(f"blocking must be non-negative: {blocking!r}")
    pairs = [
        (i.wcet, i.period) if isinstance(i, Interferer) else (i[0], i[1])
        for i in interferers
    ]
    for c, t in pairs:
        if c <= 0 or t <= 0:
            raise ValidationError(
                f"interferer needs positive wcet/period, got ({c!r}, {t!r})"
            )
    # A quick divergence check: if the interferers already saturate the
    # core, the recurrence has no finite fixed point.
    if sum(c / t for c, t in pairs) >= 1.0:
        return math.inf

    current = wcet + blocking + sum(c for c, _ in pairs)
    for _ in range(_MAX_ITERATIONS):
        if current > limit:
            return math.inf
        nxt = (
            wcet
            + blocking
            + sum(math.ceil(current / t - 1e-12) * c for c, t in pairs)
        )
        if nxt <= current + 1e-12:
            return current
        current = nxt
    raise ValidationError(
        "response-time iteration failed to converge; input parameters are "
        "likely degenerate (extremely small periods vs. horizon)"
    )


def response_time_env(
    wcet: float,
    env: InterferenceEnv,
    limit: float = math.inf,
    blocking: float = 0.0,
) -> float:
    """:func:`response_time` over an :class:`InterferenceEnv`."""
    return response_time(wcet, env.interferers, limit=limit, blocking=blocking)


def core_response_times(
    tasks: Sequence[RealTimeTask],
) -> dict[str, float]:
    """Response time of every task on one core under RM order.

    ``tasks`` is the set of real-time tasks sharing a core; priorities
    follow the rate monotonic order (ties as in
    :func:`repro.model.priority.rate_monotonic_order`).  Returns a
    name → response-time mapping with ``inf`` marking unschedulable
    tasks.
    """
    from repro.model.priority import rate_monotonic_order

    ordered = rate_monotonic_order(tasks)
    results: dict[str, float] = {}
    higher: list[Interferer] = []
    for task in ordered:
        results[task.name] = response_time(
            task.wcet, higher, limit=task.deadline
        )
        higher.append(Interferer.from_rt(task))
    return results


def response_times_batch(
    wcets: np.ndarray | Sequence[float],
    periods: np.ndarray | Sequence[float],
    deadlines: np.ndarray | Sequence[float] | None = None,
    blocking: float = 0.0,
) -> np.ndarray:
    """Vectorised RTA for one core: all tasks' fixed points at once.

    ``wcets``/``periods`` list the core's tasks in priority order
    (highest first); task ``i`` suffers interference from tasks
    ``j < i``.  Solves every task's recurrence simultaneously with
    numpy — one ``O(n²)`` matrix iteration instead of ``n`` scalar
    fixed-point loops — and returns the response-time vector with
    ``inf`` marking tasks whose fixed point exceeds their deadline (or
    diverges).  Semantics match :func:`response_time` exactly: same
    initialisation, same ``1e-12`` ceiling guard, same divergence
    precheck on the interferer utilisation.

    ``deadlines`` defaults to no limit (``inf`` everywhere); pass the
    deadline vector to reproduce the ``limit`` behaviour of the scalar
    path.
    """
    wcet_vec = np.asarray(wcets, dtype=float)
    period_vec = np.asarray(periods, dtype=float)
    if wcet_vec.shape != period_vec.shape or wcet_vec.ndim != 1:
        raise ValidationError(
            "wcets and periods must be 1-D arrays of equal length"
        )
    n = wcet_vec.size
    if n == 0:
        return np.zeros(0)
    if np.any(wcet_vec <= 0) or np.any(period_vec <= 0):
        raise ValidationError("batched RTA needs positive wcets/periods")
    if blocking < 0:
        raise ValidationError(f"blocking must be non-negative: {blocking!r}")
    if deadlines is None:
        deadline_vec = np.full(n, math.inf)
    else:
        deadline_vec = np.asarray(deadlines, dtype=float)
        if deadline_vec.shape != wcet_vec.shape:
            raise ValidationError("deadlines must match the task count")

    # Tasks whose higher-priority interferers already saturate the core
    # have no finite fixed point (the scalar path's divergence precheck).
    utilization = wcet_vec / period_vec
    hp_utilization = np.concatenate(([0.0], np.cumsum(utilization)[:-1]))
    diverged = hp_utilization >= 1.0

    # mask[i, j] = 1 iff task j interferes with task i (strictly higher
    # priority); masked WCET matrix folds the Σ ⌈R/T_j⌉·C_j into one
    # matrix-vector product per iteration.
    mask = np.tri(n, k=-1)
    masked_wcet = mask * wcet_vec[None, :]

    result = np.where(diverged, math.inf, np.nan)
    current = wcet_vec + blocking + mask @ wcet_vec
    active = ~diverged
    for _ in range(_MAX_ITERATIONS):
        # The recurrence is monotone: once the iterate exceeds the
        # deadline the fixed point does too, so those tasks are inf.
        over = active & (current > deadline_vec)
        result[over] = math.inf
        active &= ~over
        if not active.any():
            break
        ceil_terms = np.ceil(current[:, None] / period_vec[None, :] - 1e-12)
        nxt = wcet_vec + blocking + (ceil_terms * masked_wcet).sum(axis=1)
        settled = active & (nxt <= current + 1e-12)
        result[settled] = current[settled]
        active &= ~settled
        if not active.any():
            break
        current = np.where(active, nxt, current)
    if active.any():
        raise ValidationError(
            "batched response-time iteration failed to converge; input "
            "parameters are likely degenerate"
        )
    return result


def core_response_times_batch(
    tasks: Sequence[RealTimeTask],
) -> dict[str, float]:
    """Batched equivalent of :func:`core_response_times`.

    Same RM ordering, same name → response-time mapping with ``inf``
    for unschedulable tasks; agrees with the scalar path to floating-
    point round-off (tested to 1e-9).
    """
    from repro.model.priority import rate_monotonic_order

    ordered = rate_monotonic_order(tasks)
    responses = response_times_batch(
        [t.wcet for t in ordered],
        [t.period for t in ordered],
        [t.deadline for t in ordered],
    )
    return {task.name: float(r) for task, r in zip(ordered, responses)}


def rta_schedulable_batch(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact RM schedulability via the batched RTA fast path.

    Decision-equivalent to :func:`rta_schedulable`; preferred on the
    hot admission path once the core holds enough tasks to amortise the
    numpy setup cost.
    """
    from repro.model.priority import rate_monotonic_order

    ordered = rate_monotonic_order(tasks)
    if not ordered:
        return True
    responses = response_times_batch(
        [t.wcet for t in ordered],
        [t.period for t in ordered],
        [t.deadline for t in ordered],
    )
    return bool(
        np.all(responses <= np.asarray([t.deadline for t in ordered]) + 1e-9)
    )


def rta_schedulable(tasks: Sequence[RealTimeTask]) -> bool:
    """Exact schedulability of one core's real-time tasks under RM.

    True iff every task's response time is at most its deadline.  This is
    the admission test used by the partitioning heuristics (the paper
    assumes "real-time tasks are schedulable and assigned to the cores
    using existing multicore task partitioning algorithms").
    """
    by_name = {task.name: task for task in tasks}
    return all(
        response <= by_name[name].deadline + 1e-9
        for name, response in core_response_times(tasks).items()
    )
