"""Blocking-aware schedulability for non-preemptive security execution.

Paper §V: "some critical security task may require non-preemptive
execution to perform desired checking."  Running a security task
non-preemptively breaks the core assumption that security never
perturbs the real-time tasks: once a check starts, every real-time task
on that core can be *blocked* for up to the check's remaining WCET.

Classic non-preemptive blocking analysis applies because security tasks
sit strictly below every real-time priority:

* A real-time task `τr` on core `m` suffers a blocking term
  `B_m = max { C_s : τs non-preemptive security on m }` — at most one
  lower-priority job can hold the core when `τr` arrives, and the
  longest it can hold it is the largest security WCET.  Its response
  time becomes the fixed point of
  `R = C_r + B_m + Σ_{hp} ⌈R/T_h⌉·C_h`.
* A security task still suffers the Eq. (5)/(6) interference *before it
  starts* (it queues below everything), so the paper's bound remains
  sound for the security side; non-preemptivity only changes who it
  hurts, not what it needs.

:func:`rt_schedulable_with_blocking` verifies one core's real-time
tasks against a candidate blocking term;
:func:`max_tolerable_blocking` computes the largest security WCET a
core can absorb, which the blocking-aware allocator
(:class:`repro.core.nonpreemptive.NonPreemptiveHydraAllocator`) uses as
a placement filter.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.arrays import TaskArrays
from repro.analysis.interference import Interferer
from repro.analysis.rta import response_time, response_times_batch
from repro.model.priority import rate_monotonic_order
from repro.model.task import RealTimeTask

__all__ = [
    "rt_schedulable_with_blocking",
    "max_tolerable_blocking",
    "rt_schedulable_with_blocking_arrays",
    "max_tolerable_blocking_arrays",
]


def rt_schedulable_with_blocking(
    rt_tasks: Sequence[RealTimeTask], blocking: float
) -> bool:
    """Do all real-time tasks on one core meet their deadlines when any
    of them can be blocked for up to ``blocking`` time units by a
    non-preemptive lower-priority job?"""
    if blocking < 0:
        raise ValueError(f"blocking must be ≥ 0, got {blocking}")
    higher: list[Interferer] = []
    for task in rate_monotonic_order(rt_tasks):
        r = response_time(
            task.wcet, higher, limit=task.deadline, blocking=blocking
        )
        if not r <= task.deadline + 1e-9:
            return False
        higher.append(Interferer.from_rt(task))
    return True


def max_tolerable_blocking(
    rt_tasks: Iterable[RealTimeTask], tolerance: float = 1e-6
) -> float:
    """Largest blocking term a core's real-time tasks can absorb.

    Returns ``inf`` for an empty core.  Computed by bisection on
    :func:`rt_schedulable_with_blocking` — the predicate is monotone in
    the blocking term.  A zero result means the core cannot host *any*
    non-preemptive security work (some task is already at its deadline
    edge).
    """
    tasks = list(rt_tasks)
    if not tasks:
        return math.inf
    if not rt_schedulable_with_blocking(tasks, 0.0):
        return 0.0
    # The blocking term is bounded by the smallest deadline: a job
    # blocked for its whole deadline can never finish.
    high = min(task.deadline for task in tasks)
    if rt_schedulable_with_blocking(tasks, high):
        return high
    low = 0.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if rt_schedulable_with_blocking(tasks, mid):
            low = mid
        else:
            high = mid
    return low


def rt_schedulable_with_blocking_arrays(
    arrays: TaskArrays, blocking: float
) -> bool:
    """Array-program form of :func:`rt_schedulable_with_blocking`.

    One batched RTA solve over the whole core (the blocking term rides
    the same vectorised recurrence) instead of a per-task scalar loop;
    decision-equivalent to the scalar path (pinned by a hypothesis
    agreement suite).  ``arrays`` may be in any order — it is sorted
    into rate-monotonic priority order internally.
    """
    if blocking < 0:
        raise ValueError(f"blocking must be ≥ 0, got {blocking}")
    if len(arrays) == 0:
        return True
    ordered = arrays.rm_sorted()
    responses = response_times_batch(
        ordered.wcets, ordered.periods, ordered.deadlines, blocking=blocking
    )
    return bool(np.all(responses <= ordered.deadlines + 1e-9))


def max_tolerable_blocking_arrays(
    arrays: TaskArrays, tolerance: float = 1e-6
) -> float:
    """Largest absorbable blocking term, computed over a
    :class:`TaskArrays` core.

    Same bisection contract as :func:`max_tolerable_blocking` — the
    predicate is monotone in the blocking term — but every probe is a
    single batched solve, so the whole search touches no Python task
    objects.  Agrees with the scalar result to within ``tolerance``
    (both bisect the same monotone predicate over the same bracket).
    """
    if len(arrays) == 0:
        return math.inf
    ordered = arrays.rm_sorted()
    if not rt_schedulable_with_blocking_arrays(ordered, 0.0):
        return 0.0
    high = float(np.min(ordered.deadlines))
    if rt_schedulable_with_blocking_arrays(ordered, high):
        return high
    low = 0.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if rt_schedulable_with_blocking_arrays(ordered, mid):
            low = mid
        else:
            high = mid
    return low
