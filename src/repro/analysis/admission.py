"""Incremental exact-RTA admission for the partitioning inner loop.

The bin-packing heuristics (:mod:`repro.partition.heuristics`) ask one
question thousands of times per utilisation sweep: *would this core
still be schedulable with this task added?*  The generic formulation —
rebuild the candidate task list, re-sort it, re-run response-time
analysis on every task — discards everything the previous probe
already proved.  :class:`ExactAdmissionCore` keeps per-core state so a
probe only pays for what the candidate can actually change:

* **Divergence cut-off.**  When the *higher-priority* utilisation seen
  by the lowest-priority task reaches 1, its fixed point diverges and
  the reference test rejects, so such probes are rejected in O(1)
  without touching any fixed point.  (Total utilisation > 1 alone is
  *not* used: the reference checks first-job response times only, and
  those can all pass even on an overloaded core.)  The comparison
  carries a ``1e-7`` safety margin so it can only fire where the
  reference's own exact-sum precheck provably also diverges.
* **Higher-priority invariance.**  A task's response time depends only
  on its *higher-priority* interferers, and every resident task was
  verified when it was admitted.  Adding a candidate therefore leaves
  all higher-priority residents' response times bit-for-bit unchanged
  — only the candidate itself and the residents below it need solving.
* **Warm starts.**  Each resident's current response time is cached.
  Response times are monotone in the interferer set, so the cached
  value is a valid lower bound for the re-solve with the candidate
  added, and the monotone fixed-point iteration started there ascends
  the same guarded staircase to the same least fixed point — in one or
  two steps instead of replaying the whole Kleene chain from below.

All three properties are decision-preserving, so the verdict is
identical to calling :func:`repro.analysis.schedulability.rta_test` on
the rebuilt task list (the batched dispatch at
:data:`~repro.analysis.schedulability._RTA_BATCH_MIN_TASKS` tasks is
mirrored exactly) — pinned by an equivalence property suite and the
golden fixtures.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable

import numpy as np

from repro.analysis.rta import _MAX_ITERATIONS, response_times_batch
from repro.analysis.schedulability import _RTA_BATCH_MIN_TASKS
from repro.errors import ValidationError
from repro.model.task import RealTimeTask

__all__ = ["ExactAdmissionCore"]

#: Safety margin on the higher-priority-utilisation divergence cut-off:
#: large enough to absorb summation round-off between the incremental
#: running total and the reference's left-to-right exact sum, so the
#: O(1) rejection only fires where the reference's own ``Σ_hp C/T >= 1``
#: precheck provably also diverges.
_UTILIZATION_MARGIN = 1e-7


def _rm_key(task: RealTimeTask) -> tuple[float, float, str]:
    """Rate-monotonic sort key — must match
    :func:`repro.model.priority.rate_monotonic_order` exactly so probes
    see the same priority order the from-scratch test would build."""
    return (task.period, -task.wcet, task.name)


def _fixed_point(
    wcet: float,
    pairs: list[tuple[float, float]],
    limit: float,
    start: float | None = None,
) -> float:
    """Lean twin of :func:`repro.analysis.rta.response_time`.

    Identical numerics — same left-to-right accumulation order, same
    divergence precheck, same ``1e-12`` ceiling guard and convergence
    tolerance — with the per-call validation stripped: the admission
    state only ever feeds it ``(C, T)`` pairs it has already validated
    on :meth:`ExactAdmissionCore.add`, and this runs tens of thousands
    of times per utilisation sweep.

    ``start`` warm-starts the iteration from a known lower bound on the
    fixed point (a cached response time from a smaller interferer set).
    The recurrence is monotone, so any start below the least fixed
    point converges to it; ``inf`` short-circuits (a resident already
    past its deadline can only get worse).
    """
    if start is not None and math.isinf(start):
        return math.inf
    hp_utilization = 0.0
    for c, t in pairs:
        hp_utilization += c / t
    if hp_utilization >= 1.0:
        return math.inf
    if start is None:
        # Accumulate interference sums from 0.0 and add ``wcet`` last,
        # exactly as ``wcet + sum(...)`` groups the additions — any
        # other grouping rounds differently and breaks
        # bit-compatibility with the scalar reference.
        acc = 0.0
        for c, _ in pairs:
            acc += c
        current = wcet + acc
    else:
        current = start
    ceil = math.ceil
    for _ in range(_MAX_ITERATIONS):
        if current > limit:
            return math.inf
        acc = 0.0
        for c, t in pairs:
            acc += ceil(current / t - 1e-12) * c
        nxt = wcet + acc
        if nxt <= current + 1e-12:
            return current
        current = nxt
    raise ValidationError(
        "response-time iteration failed to converge; input parameters "
        "are likely degenerate (extremely small periods vs. horizon)"
    )


class ExactAdmissionCore:
    """Mutable admission state of one core under exact RM analysis.

    :meth:`admits` is a pure query (would the core accept this task?);
    :meth:`add` commits a placement.  Residents are kept as plain
    ``(C, T)`` pairs in rate-monotonic order alongside their cached
    response times, ready to feed the fixed-point loop without
    building intermediate objects.
    """

    __slots__ = (
        "_entries",
        "_responses",
        "_utilization",
        "_pending",
        "_feasible",
    )

    def __init__(self, tasks: Iterable[RealTimeTask] = ()) -> None:
        """Start from an empty core, optionally pre-placing ``tasks``
        without admission checks.

        Pre-placed tasks need *not* be schedulable: each
        :meth:`add` recomputes the residents' response times, and a core
        with any resident past its deadline simply rejects every
        subsequent probe (exactly as the from-scratch reference test
        would, since response times are monotone in the task set).
        """
        # One entry per resident, RM-sorted:
        # (rm_key, (wcet, period), deadline).
        self._entries: list[
            tuple[tuple[float, float, str], tuple[float, float], float]
        ] = []
        # Cached response time per resident (``inf`` = past deadline),
        # parallel to ``_entries``.
        self._responses: list[float] = []
        self._utilization = 0.0
        # Responses computed by the last *accepting* probe, keyed by
        # (rm_key, deadline) so a matching ``add`` can splice them in
        # instead of re-solving.
        self._pending: (
            tuple[tuple[tuple[float, float, str], float], list[float]] | None
        ) = None
        # False once any resident's cached response exceeds its
        # deadline: every later probe is then rejected outright, which
        # matches the reference (a failing resident only gets worse as
        # tasks are added).
        self._feasible = True
        for task in tasks:
            self.add(task)

    def __len__(self) -> int:
        """Number of tasks placed on the core."""
        return len(self._entries)

    @property
    def utilization(self) -> float:
        """Total utilisation ``Σ C/T`` of the placed tasks."""
        return self._utilization

    def add(self, task: RealTimeTask) -> None:
        """Commit ``task`` to the core (no admission check)."""
        key = _rm_key(task)
        pos = bisect_left(self._entries, (key,))
        if self._pending is not None and self._pending[0] == (
            key,
            task.deadline,
        ):
            # The heuristics always commit the task their accepting
            # probe just verified — reuse that probe's responses.
            responses = self._pending[1]
        else:
            responses = self._solve_with_inserted(
                pos, task.wcet, task.period, task.deadline
            )
        self._entries.insert(
            pos, (key, (task.wcet, task.period), task.deadline)
        )
        self._responses = responses
        self._utilization += task.wcet / task.period
        self._pending = None
        self._feasible = all(
            r <= entry[2] + 1e-9
            for r, entry in zip(responses, self._entries)
        )

    def _solve_with_inserted(
        self, pos: int, wcet: float, period: float, deadline: float
    ) -> list[float]:
        """Response times of all current residents plus a task of
        ``(wcet, period, deadline)`` inserted at ``pos`` — computed
        against the *pre-insert* ``_entries``/``_responses`` state."""
        entries = self._entries
        if len(entries) + 1 >= _RTA_BATCH_MIN_TASKS:
            wcets = [entry[1][0] for entry in entries]
            periods = [entry[1][1] for entry in entries]
            deadlines = [entry[2] for entry in entries]
            wcets.insert(pos, wcet)
            periods.insert(pos, period)
            deadlines.insert(pos, deadline)
            return list(response_times_batch(wcets, periods, deadlines))
        hp_pairs = [entry[1] for entry in entries[:pos]]
        cand = _fixed_point(wcet, hp_pairs, deadline)
        responses = self._responses[:pos] + [cand]
        hp_pairs.append((wcet, period))
        for idx in range(pos, len(entries)):
            _, pair, entry_deadline = entries[idx]
            r = _fixed_point(
                pair[0], hp_pairs, entry_deadline,
                start=self._responses[idx],
            )
            responses.append(r)
            hp_pairs.append(pair)
        return responses

    def admits(self, task: RealTimeTask) -> bool:
        """Would the core stay RM-schedulable with ``task`` added?

        Identical verdict to
        ``rta_test([*placed_tasks, task])`` — including the batched
        dispatch on large cores — at a fraction of the work.
        """
        self._pending = None
        if not self._feasible:
            # Some resident already misses its deadline; adding more
            # work cannot fix it, and the reference test would see the
            # same failing resident.
            return False
        key = _rm_key(task)
        pos = bisect_left(self._entries, (key,))
        # O(1) divergence cut-off: the lowest-priority task after
        # insertion sees every other task as higher priority.  If that
        # higher-priority utilisation reaches 1 its fixed point
        # diverges, so the reference test rejects too.  (Total
        # utilisation > 1 alone is NOT sufficient — rta_test checks
        # first-job response times only, and those can all pass on an
        # overloaded core as long as each task's own hp-utilisation
        # stays below 1.)
        if self._entries and pos == len(self._entries):
            lowest_util = task.wcet / task.period
        elif self._entries:
            last_pair = self._entries[-1][1]
            lowest_util = last_pair[0] / last_pair[1]
        else:
            lowest_util = task.wcet / task.period
        if (
            self._utilization + task.wcet / task.period - lowest_util
            >= 1.0 + _UTILIZATION_MARGIN
        ):
            return False
        if len(self._entries) + 1 >= _RTA_BATCH_MIN_TASKS:
            return self._admits_batched(task, key, pos)

        hp_pairs = [entry[1] for entry in self._entries[:pos]]
        cand = _fixed_point(task.wcet, hp_pairs, task.deadline)
        if not cand <= task.deadline + 1e-9:
            return False
        # Residents below the candidate re-solve with it as an extra
        # interferer, warm-started from their cached response times;
        # the interferer list grows in RM order so each fixed point
        # matches the from-scratch evaluation.
        responses = self._responses[:pos] + [cand]
        hp_pairs.append((task.wcet, task.period))
        for idx in range(pos, len(self._entries)):
            _, pair, deadline = self._entries[idx]
            r = _fixed_point(
                pair[0], hp_pairs, deadline, start=self._responses[idx]
            )
            if not r <= deadline + 1e-9:
                return False
            responses.append(r)
            hp_pairs.append(pair)
        self._pending = ((key, task.deadline), responses)
        return True

    def _admits_batched(
        self,
        task: RealTimeTask,
        key: tuple[float, float, str],
        pos: int,
    ) -> bool:
        """Mirror of ``rta_schedulable_batch`` for large cores (same
        inputs in the same order ⇒ same verdict bit for bit)."""
        wcets = [entry[1][0] for entry in self._entries]
        periods = [entry[1][1] for entry in self._entries]
        deadlines = [entry[2] for entry in self._entries]
        wcets.insert(pos, task.wcet)
        periods.insert(pos, task.period)
        deadlines.insert(pos, task.deadline)
        responses = response_times_batch(wcets, periods, deadlines)
        verdict = bool(np.all(responses <= np.asarray(deadlines) + 1e-9))
        if verdict:
            self._pending = ((key, task.deadline), list(responses))
        return verdict
