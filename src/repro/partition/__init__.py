"""Real-time task partitioning (paper Sec. II-A and IV-B).

The heuristics live in :mod:`repro.partition.heuristics`; admission
tests are provided by :mod:`repro.analysis.schedulability`.
"""

from repro.partition.heuristics import (
    HEURISTICS,
    ORDERINGS,
    partition_tasks,
    try_partition_tasks,
)

__all__ = [
    "HEURISTICS",
    "ORDERINGS",
    "partition_tasks",
    "try_partition_tasks",
]
