"""Multicore partitioning heuristics for the real-time tasks.

The paper assumes the real-time tasks "are schedulable and assigned to
the cores using [an] existing multicore task partitioning algorithm"
[Davis & Burns survey]; its experiments partition with **best-fit**
(Sec. IV-B).  This module implements the four classic bin-packing
heuristics over an arbitrary admission test:

========  ==========================================================
first-fit place on the lowest-indexed core that admits the task
best-fit  place on the admitting core with the *least* remaining
          utilisation (pack tightly, keep cores free)
worst-fit place on the admitting core with the *most* remaining
          utilisation (spread load)
next-fit  keep a moving pointer, never revisit earlier cores
========  ==========================================================

Tasks are considered in a configurable order (decreasing utilisation by
default, the standard bin-packing choice; rate-monotonic and input order
are also available).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.admission import ExactAdmissionCore
from repro.analysis.schedulability import (
    AdmissionTest,
    get_admission_test,
    rta_test,
)
from repro.errors import ConfigError, PartitioningError
from repro.model.platform import Platform
from repro.model.system import Partition
from repro.model.task import RealTimeTask, TaskSet

__all__ = [
    "partition_tasks",
    "try_partition_tasks",
    "HEURISTICS",
    "ORDERINGS",
]

#: Known placement heuristics.
HEURISTICS = ("first-fit", "best-fit", "worst-fit", "next-fit")

#: Known task orderings.
ORDERINGS = ("utilization", "rm", "input")


def _ordered_tasks(
    tasks: Sequence[RealTimeTask], ordering: str
) -> list[RealTimeTask]:
    if ordering == "utilization":
        return sorted(tasks, key=lambda t: (-t.utilization, t.name))
    if ordering == "rm":
        return sorted(tasks, key=lambda t: (t.period, -t.wcet, t.name))
    if ordering == "input":
        return list(tasks)
    raise ConfigError(
        f"unknown ordering {ordering!r}; known orderings: "
        f"{', '.join(ORDERINGS)}"
    )


def try_partition_tasks(
    tasks: Iterable[RealTimeTask],
    platform: Platform,
    heuristic: str = "best-fit",
    admission: str | AdmissionTest = "rta",
    ordering: str = "utilization",
) -> Partition | None:
    """Partition ``tasks`` onto ``platform``; ``None`` if the heuristic
    fails to place some task.

    Parameters
    ----------
    tasks:
        The real-time tasks to place.
    platform:
        Target platform.
    heuristic:
        One of :data:`HEURISTICS`.
    admission:
        Admission test name (see
        :func:`repro.analysis.schedulability.get_admission_test`) or a
        callable ``Sequence[RealTimeTask] -> bool``.
    ordering:
        One of :data:`ORDERINGS`; order in which tasks are placed.
    """
    if heuristic not in HEURISTICS:
        raise ConfigError(
            f"unknown heuristic {heuristic!r}; known heuristics: "
            f"{', '.join(HEURISTICS)}"
        )
    test: AdmissionTest = (
        get_admission_test(admission) if isinstance(admission, str) else admission
    )
    task_list = list(tasks)
    ordered = _ordered_tasks(task_list, ordering)

    per_core: dict[int, list[RealTimeTask]] = {m: [] for m in platform}
    # Running utilisation per core: the best/worst-fit sort keys would
    # otherwise re-sum every core's tasks for every candidate of every
    # placement — a hot path under the Monte-Carlo sweeps.
    core_util: dict[int, float] = {m: 0.0 for m in platform}
    assignment: dict[str, int] = {}
    next_fit_pointer = 0

    # The default exact-RTA admission keeps incremental per-core state
    # (higher-priority response times cannot change when a task is
    # added below them), which answers each probe at a fraction of the
    # from-scratch cost with a bit-identical verdict.  Any other test —
    # a different name or a caller-supplied callable — takes the
    # generic rebuild-and-test path.
    states: dict[int, ExactAdmissionCore] | None = (
        {m: ExactAdmissionCore() for m in platform}
        if test is rta_test
        else None
    )

    def admits(core: int, task: RealTimeTask) -> bool:
        if states is not None:
            return states[core].admits(task)
        return test([*per_core[core], task])

    for task in ordered:
        if heuristic == "next-fit":
            core = next_fit_pointer
            while core < platform.num_cores and not admits(core, task):
                core += 1
            if core >= platform.num_cores:
                return None
            next_fit_pointer = core
            chosen = core
        else:
            if heuristic == "best-fit":
                order = sorted(platform, key=lambda m: (-core_util[m], m))
            elif heuristic == "worst-fit":
                order = sorted(platform, key=lambda m: (core_util[m], m))
            else:  # first-fit: keep core-index order.
                order = list(platform)
            # Probing cores in key order means the first admitting core
            # is the one the old sort-then-pick would have chosen, and
            # no admission test runs past it.
            chosen = next((m for m in order if admits(m, task)), None)
            if chosen is None:
                return None
        per_core[chosen].append(task)
        core_util[chosen] += task.utilization
        if states is not None:
            states[chosen].add(task)
        assignment[task.name] = chosen

    return Partition(platform, TaskSet(task_list), assignment)


def partition_tasks(
    tasks: Iterable[RealTimeTask],
    platform: Platform,
    heuristic: str = "best-fit",
    admission: str | AdmissionTest = "rta",
    ordering: str = "utilization",
) -> Partition:
    """Like :func:`try_partition_tasks` but raising
    :class:`~repro.errors.PartitioningError` on failure."""
    task_list = list(tasks)
    partition = try_partition_tasks(
        task_list, platform, heuristic=heuristic, admission=admission,
        ordering=ordering,
    )
    if partition is None:
        raise PartitioningError(
            f"{heuristic} failed to partition {len(task_list)} real-time "
            f"tasks onto {platform.num_cores} cores"
        )
    return partition
