"""Ablation TOML parsing and validation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ablate import AXES, load_ablation, parse_ablation
from repro.errors import ValidationError


def _doc(**overrides):
    document = {
        "ablation": {"name": "study"},
        "baseline": {"cores": [2]},
    }
    document.update(overrides)
    return document


class TestParseAblation:
    def test_minimal_document_defaults_to_paper_design_point(self):
        config = parse_ablation(_doc())
        assert config.name == "study"
        assert config.axes == AXES
        baseline = config.baseline
        assert baseline.cores == (2,)
        assert baseline.heuristics == ("best-fit",)
        assert baseline.orderings == ("utilization",)
        assert baseline.admissions == ("rta",)
        assert baseline.allocators == ("hydra",)
        assert baseline.workloads == ("paper-synthetic",)
        # Both axes explicit: every cell label names the full design
        # point, and the batch-generation path is uniform across runs.
        assert baseline.allocator_axis
        assert baseline.workload_axis

    def test_baseline_components_and_axes_are_honoured(self):
        config = parse_ablation(
            {
                "ablation": {"name": "s", "axes": ["ordering", "heuristic"]},
                "baseline": {
                    "cores": [2, 4],
                    "heuristic": "worst-fit",
                    "ordering": "rm",
                },
            }
        )
        # canonical AXES order, not document order
        assert config.axes == ("heuristic", "ordering")
        assert config.baseline_component("heuristic") == "worst-fit"
        assert config.baseline_component("ordering") == "rm"
        assert config.baseline.cores == (2, 4)

    def test_sweep_overrides_flow_into_baseline(self):
        config = parse_ablation(
            _doc(
                sweep={
                    "seed": 7,
                    "tasksets_per_point": 3,
                    "utilization": {"start": 0.5, "stop": 1.0, "step": 0.25},
                }
            )
        )
        assert config.baseline.seed == 7
        assert config.baseline.tasksets_per_point == 3
        assert config.baseline.utilization_start == 0.5
        assert config.baseline.utilization_stop == 1.0

    @pytest.mark.parametrize(
        "document, match",
        [
            ({"bogus": {}}, "unknown top-level"),
            ({"ablation": {"bogus": 1}, "baseline": {"cores": [2]}},
             r"unknown \[ablation\] key"),
            ({"ablation": {"name": ""}, "baseline": {"cores": [2]}},
             "name must be a non-empty string"),
            ({"baseline": {"cores": [2]},
              "ablation": {"axes": ["bogus"]}}, "axis 'bogus' is unknown"),
            ({"baseline": {"cores": [2]},
              "ablation": {"axes": ["ordering", "ordering"]}},
             "more than once"),
            ({"baseline": {"cores": [2]}, "ablation": {"axes": []}},
             "at least one axis"),
            ({}, r"missing \[baseline\]"),
            ({"baseline": {"cores": [2], "bogus": "x"}},
             r"unknown \[baseline\] key"),
            ({"baseline": {"cores": [2], "heuristic": ["best-fit"]}},
             "single component name"),
            ({"baseline": {"cores": [2]}, "sweep": {"name": "x"}},
             r"unknown \[sweep\] key"),
        ],
    )
    def test_rejections_are_typed_and_name_the_key(self, document, match):
        with pytest.raises(ValidationError, match=match):
            parse_ablation(document)

    def test_baseline_membership_reuses_scenario_validation(self):
        # Unknown component names fail through the shared scenario
        # validator, with its exact wording.
        with pytest.raises(ValidationError, match="unknown value"):
            parse_ablation(
                {"baseline": {"cores": [2], "heuristic": "bogus-fit"}}
            )
        with pytest.raises(ValidationError, match="cores"):
            parse_ablation({"baseline": {}})
        # singlecore baseline on <2 cores is the scenario config's own
        # typed rejection.
        with pytest.raises(ValidationError, match="singlecore"):
            parse_ablation(
                {"baseline": {"cores": [1], "allocator": "singlecore"}}
            )

    def test_with_axes_filters_and_validates(self):
        config = parse_ablation(_doc())
        assert config.with_axes(["workload", "heuristic"]).axes == (
            "heuristic", "workload",
        )
        with pytest.raises(ValidationError, match="unknown"):
            config.with_axes(["bogus"])
        with pytest.raises(ValidationError, match="more than once"):
            config.with_axes(["ordering", "ordering"])


class TestLoadAblation:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "study.toml"
        path.write_text(
            '[ablation]\nname = "file-study"\naxes = ["admission"]\n'
            "[baseline]\ncores = [2]\n"
        )
        config = load_ablation(path)
        assert config.name == "file-study"
        assert config.axes == ("admission",)

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_ablation(tmp_path / "nope.toml")

    def test_bad_toml_is_typed(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[ablation\n")
        with pytest.raises(ValidationError, match="not valid TOML"):
            load_ablation(path)

    def test_example_document_parses(self):
        example = (
            Path(__file__).resolve().parents[2] / "examples" / "ablate.toml"
        )
        config = load_ablation(example)
        assert config.name == "paper-baseline"
        assert "allocator" not in config.axes
