"""AblationExperiment end to end: engine, cache, jobs, server."""

from __future__ import annotations

import json

import pytest

from repro.ablate import AblationExperiment, parse_ablation
from repro.experiments.api import ExperimentResult
from repro.experiments.config import get_scale
from repro.experiments.parallel import SweepEngine
from repro.experiments.store import ExperimentStore
from repro.jobs import JobRequest, JobRunner
from repro.server import JobServiceApp


def _config(axes=("ordering",), cores=(2,), **sweep):
    return parse_ablation(
        {
            "ablation": {"name": "e2e", "axes": list(axes)},
            "baseline": {"cores": list(cores)},
            "sweep": sweep,
        }
    )


@pytest.fixture(scope="module")
def scale():
    return get_scale("smoke")


@pytest.fixture(scope="module")
def result(scale) -> ExperimentResult:
    return AblationExperiment(_config()).run(scale)


class TestResultShape:
    def test_ranked_components_cover_every_variant(self, result, scale):
        experiment = AblationExperiment(_config())
        domain = experiment.decode_data(result.data)
        assert domain.scale == "smoke"
        assert domain.cores == (2,)
        assert domain.baseline.total > 0
        # utilization + rm orderings minus the incumbent
        assert sorted(c.component for c in domain.components) == [
            "input", "rm",
        ]
        for report in domain.components:
            assert report.axis == "ordering"
            assert report.verdict in ("load-bearing", "neutral", "harmful")
            assert report.run.run_id != domain.baseline.run_id

    def test_spec_hash_matches_derivation(self, result, scale):
        experiment = AblationExperiment(_config())
        assert result.spec_hash == experiment.spec_hash(scale)
        assert result.experiment == "ablate:e2e"

    def test_json_round_trip_is_exact(self, result):
        restored = ExperimentResult.from_json(result.to_json())
        assert restored == result

    def test_domain_round_trip_is_exact(self, result):
        experiment = AblationExperiment(_config())
        domain = experiment.decode_data(result.data)
        assert experiment.decode_data(experiment.encode_data(domain)) == domain

    def test_render_is_stable_across_decode(self, result):
        experiment = AblationExperiment(_config())
        text = experiment.render(result)
        assert "swap-one component importance" in text
        assert "baseline:" in text
        restored = ExperimentResult.from_json(result.to_json())
        assert experiment.render(restored) == text

    def test_csv_rows_lead_with_baseline(self, result):
        lines = result.to_csv().splitlines()
        assert lines[0].startswith("rank,axis,component,run_id")
        assert lines[1].startswith("0,baseline,")
        assert len(lines) == 2 + 2  # header + baseline + two variants


class TestExecutionEquivalence:
    def test_serial_pooled_cached_identical(self, tmp_path, scale, result):
        experiment = AblationExperiment(_config())
        pooled = experiment.run(scale, SweepEngine(workers=2))
        assert pooled == result
        store = ExperimentStore(tmp_path / "cache")
        cold = experiment.run(scale, SweepEngine(cache=store))
        warm_engine = SweepEngine(cache=store)
        warm = experiment.run(scale, warm_engine)
        assert cold == result
        assert warm == result

    def test_warm_rerun_computes_nothing(self, tmp_path, scale):
        experiment = AblationExperiment(_config())
        runner = JobRunner(cache_dir=tmp_path / "cache")
        first = runner.run_experiment(experiment, scale)
        assert first.computed_points == first.total_points > 0
        runner.close()
        # A fresh runner over the same store: everything cache-served.
        rerun = JobRunner(cache_dir=tmp_path / "cache")
        second = rerun.run_experiment(experiment, scale)
        assert second.computed_points == 0
        assert second.cached_points == second.total_points
        assert second.result == first.result
        rerun.close()

    def test_skipped_variant_keeps_pairing_straight(self, scale):
        # A single-core allocator study skips singlecore; aggregation
        # must still pair sweeps to runs correctly.
        config = parse_ablation(
            {
                "ablation": {"name": "skip", "axes": ["allocator"]},
                "baseline": {
                    "cores": [1],
                    "allocator": "binpack-first-fit",
                },
            }
        )
        experiment = AblationExperiment(config)
        domain = experiment.decode_data(experiment.run(scale).data)
        assert [(s.axis, s.component) for s in domain.skipped] == [
            ("allocator", "singlecore")
        ]
        assert all(
            c.component != "singlecore" for c in domain.components
        )


class TestJobsAndServer:
    def test_ablation_doc_via_job_request(self, tmp_path, scale):
        doc = {
            "ablation": {"name": "e2e", "axes": ["ordering"]},
            "baseline": {"cores": [2]},
        }
        request = JobRequest.from_dict(
            {"ablation": doc, "scale": "smoke"}
        )
        assert request.ablation == doc
        runner = JobRunner(cache_dir=tmp_path / "cache")
        job = runner.run(request)
        assert job.state == "done"
        assert job.result.experiment == "ablate:e2e"
        runner.close()

    def test_bare_ablation_doc_detected_before_sweep(self):
        # An ablation doc may carry its own [sweep] table; the
        # baseline key must win the shape detection.
        request = JobRequest.from_dict(
            {
                "ablation": {"name": "x"},
                "baseline": {"cores": [2]},
                "sweep": {"seed": 7},
            }
        )
        assert request.ablation is not None
        assert request.spec is None

    def test_exactly_one_source_enforced(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="exactly one"):
            JobRequest(experiment="fig2", ablation={"baseline": {}})
        with pytest.raises(ValidationError, match="exactly one"):
            JobRequest()
        with pytest.raises(ValidationError, match="overrides only apply"):
            JobRequest(
                ablation={"baseline": {"cores": [2]}},
                allocators=("hydra",),
            )

    def test_request_round_trips_through_dict(self):
        request = JobRequest.from_dict(
            {"ablation": {"baseline": {"cores": [2]}}, "scale": "smoke"}
        )
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_served_result_identical_to_direct_run(self, tmp_path, scale):
        doc = {
            "ablation": {"name": "e2e", "axes": ["ordering"]},
            "baseline": {"cores": [2]},
        }
        runner = JobRunner(cache_dir=tmp_path / "cache")
        app = JobServiceApp(runner)
        status, payload = app.handle(
            "POST", "/jobs", {"ablation": doc, "scale": "smoke"}
        )
        assert status == 202
        job = runner.get(payload["id"])
        assert job.wait(120)
        status, served = app.handle(
            "GET", f"/jobs/{payload['id']}/result", None
        )
        assert status == 200
        direct = AblationExperiment(
            parse_ablation(doc)
        ).run(scale, SweepEngine(cache=ExperimentStore(tmp_path / "cache")))
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct.to_dict(), sort_keys=True
        )
        runner.close()
