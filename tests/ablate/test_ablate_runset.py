"""Run-set generation: determinism, stable ids, recorded skips."""

from __future__ import annotations

from repro.ablate import axis_components, parse_ablation, run_id, run_set
from repro.experiments.config import get_scale


def _config(**ablation_keys):
    return parse_ablation(
        {
            "ablation": {"name": "study", **ablation_keys},
            "baseline": {"cores": [2]},
        }
    )


class TestRunSet:
    def test_baseline_first_then_swap_one_per_component(self):
        config = _config(axes=["heuristic", "ordering"])
        runs, skipped = run_set(config)
        assert runs[0].is_baseline
        assert runs[0].axis is None
        expected = [
            ("heuristic", c)
            for c in axis_components("heuristic") if c != "best-fit"
        ] + [
            ("ordering", c)
            for c in axis_components("ordering") if c != "utilization"
        ]
        assert [(r.axis, r.component) for r in runs[1:]] == expected
        assert skipped == ()

    def test_incumbent_is_never_a_variant(self):
        runs, _ = run_set(_config())
        assert all(
            not (r.axis == "heuristic" and r.component == "best-fit")
            for r in runs[1:]
        )

    def test_variant_swaps_exactly_one_axis(self):
        config = _config(axes=["admission"])
        runs, _ = run_set(config)
        for run in runs[1:]:
            combo = run.config.combos[0]
            assert combo["admission"] == run.component
            assert combo["heuristic"] == "best-fit"
            assert combo["ordering"] == "utilization"
            assert combo["allocator"] == "hydra"
            assert combo["workload"] == "paper-synthetic"
            assert run.label == (
                f"paper-synthetic::hydra|best-fit/utilization/"
                f"{run.component}"
            )

    def test_generation_is_deterministic(self):
        first, first_skipped = run_set(_config())
        second, second_skipped = run_set(_config())
        assert first == second
        assert first_skipped == second_skipped

    def test_singlecore_skip_is_recorded_not_silent(self):
        config = _config(axes=["allocator"])
        runs, skipped = run_set(config)
        # cores=[2] → singlecore runs fine, nothing skipped
        assert any(r.component == "singlecore" for r in runs)
        assert skipped == ()

        single = parse_ablation(
            {
                "ablation": {"name": "study", "axes": ["allocator"]},
                "baseline": {"cores": [1]},
            }
        )
        runs, skipped = run_set(single)
        assert all(r.component != "singlecore" for r in runs)
        assert [(s.axis, s.component) for s in skipped] == [
            ("allocator", "singlecore")
        ]
        assert "2" in skipped[0].reason

    def test_registry_growth_widens_the_set(self):
        # One variant per registered non-incumbent component per axis.
        config = _config()
        runs, skipped = run_set(config)
        expected = sum(
            len(axis_components(axis)) - 1 for axis in config.axes
        )
        assert len(runs) - 1 + len(skipped) == expected


class TestRunIds:
    def test_ids_are_stable_and_distinct(self):
        scale = get_scale("smoke")
        runs, _ = run_set(_config(axes=["ordering"]))
        ids = [run_id(r, scale) for r in runs]
        assert ids == [run_id(r, scale) for r in runs]  # deterministic
        assert len(set(ids)) == len(ids)  # content-addressed, distinct

    def test_id_ignores_unrelated_variants(self):
        # A run's id depends only on its own config — ablating more
        # axes later never changes existing ids (warm-cache stability).
        scale = get_scale("smoke")
        narrow, _ = run_set(_config(axes=["ordering"]))
        wide, _ = run_set(_config())
        wide_by_key = {(r.axis, r.component): r for r in wide}
        for run in narrow:
            twin = wide_by_key[(run.axis, run.component)]
            assert run_id(run, scale) == run_id(twin, scale)

    def test_id_depends_on_scale_and_study_inputs(self):
        runs, _ = run_set(_config(axes=["ordering"]))
        assert run_id(runs[0], get_scale("smoke")) != run_id(
            runs[0], get_scale("default")
        )
