"""Unit tests for the empirical CDF (Fig. 1's definition)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.metrics.cdf import EmpiricalCDF


class TestEmpiricalCDF:
    def test_paper_definition(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25  # indicator is ≤, inclusive
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_right_continuity_via_inclusive_indicator(self):
        cdf = EmpiricalCDF([2.0, 2.0, 5.0])
        assert cdf(2.0) == pytest.approx(2 / 3)
        assert cdf(1.999999) == 0.0

    def test_undetected_observations_weigh_down(self):
        cdf = EmpiricalCDF([1.0, math.inf])
        assert cdf(1.0) == 0.5
        assert cdf(1e12) == 0.5
        assert cdf.undetected == 1

    def test_sample_size(self):
        assert EmpiricalCDF([1.0, 2.0, math.inf]).sample_size == 3

    def test_series(self):
        cdf = EmpiricalCDF([1.0, 3.0])
        assert cdf.series([0.0, 1.0, 2.0, 3.0]) == [0.0, 0.5, 0.5, 1.0]

    def test_quantile(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.25) == 1.0
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0

    def test_quantile_with_undetected_mass(self):
        cdf = EmpiricalCDF([1.0, math.inf])
        assert cdf.quantile(0.5) == 1.0
        assert cdf.quantile(0.9) == math.inf

    def test_quantile_validation(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(ValidationError):
            cdf.quantile(0.0)
        with pytest.raises(ValidationError):
            cdf.quantile(1.5)

    def test_means(self):
        cdf = EmpiricalCDF([1.0, 3.0])
        assert cdf.mean() == pytest.approx(2.0)
        assert cdf.mean_detected() == pytest.approx(2.0)
        with_inf = EmpiricalCDF([1.0, 3.0, math.inf])
        assert with_inf.mean() == math.inf
        assert with_inf.mean_detected() == pytest.approx(2.0)

    def test_support(self):
        assert EmpiricalCDF([3.0, 1.0, 2.0]).support() == (1.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            EmpiricalCDF([])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            EmpiricalCDF([1.0, math.nan])

    def test_monotone_non_decreasing(self):
        cdf = EmpiricalCDF([5.0, 1.0, 3.0, 3.0, 9.0])
        xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 9.0, 10.0]
        values = cdf.series(xs)
        assert values == sorted(values)
