"""Property tests for the ablation importance-scoring math.

:mod:`repro.metrics.importance` is pure arithmetic, so its contracts
can be pinned exhaustively with hypothesis, independent of any engine
run:

* the baseline-identity swap (variant metrics == baseline metrics)
  scores zero importance on every metric, is never harmful, and gets
  the ``neutral`` verdict;
* :func:`~repro.metrics.importance.rank_scores` is invariant to the
  order the run set was generated or executed in (it is a total
  order);
* harmful flagging agrees with the sign of the metric delta — and
  importance is exactly its negation.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.metrics.importance import (
    VERDICT_HARMFUL,
    VERDICT_LOAD_BEARING,
    VERDICT_NEUTRAL,
    rank_scores,
    score_swap,
    swap_verdict,
)

METRICS = ("acceptance", "mean_tightness")

_values = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def _metric_map(draw_values):
    return dict(zip(METRICS, draw_values))


_metric_maps = st.lists(
    _values, min_size=len(METRICS), max_size=len(METRICS)
).map(_metric_map)

_components = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
)


@st.composite
def _scores(draw):
    axis = draw(st.sampled_from(
        ("heuristic", "ordering", "admission", "allocator", "workload")
    ))
    component = draw(_components)
    baseline = draw(_metric_maps)
    variant = draw(_metric_maps)
    return score_swap(axis, component, baseline, variant, METRICS)


# -- baseline identity ------------------------------------------------------


@given(_metric_maps, _components)
def test_identity_swap_scores_zero(baseline, component):
    score = score_swap("heuristic", component, baseline, baseline, METRICS)
    for metric in METRICS:
        assert score.delta(metric) == 0.0
        assert score.importance(metric) == 0.0
        assert not score.harmful(metric)
    assert swap_verdict(score) == VERDICT_NEUTRAL


# -- ordering invariance ----------------------------------------------------


@given(st.lists(_scores(), min_size=0, max_size=12), st.randoms())
def test_ranking_invariant_to_runset_order(scores, rnd):
    shuffled = list(scores)
    rnd.shuffle(shuffled)
    assert rank_scores(shuffled) == rank_scores(scores)


@given(st.lists(_scores(), min_size=1, max_size=12))
def test_ranking_is_descending_importance(scores):
    ranked = rank_scores(scores)
    assert len(ranked) == len(scores)
    primary = METRICS[0]
    importances = [s.importance(primary) for s in ranked]
    assert importances == sorted(importances, reverse=True)


# -- harmful flag vs delta sign ---------------------------------------------


@given(_metric_maps, _metric_maps)
def test_harmful_agrees_with_delta_sign(baseline, variant):
    score = score_swap("admission", "x", baseline, variant, METRICS)
    for metric in METRICS:
        delta = variant[metric] - baseline[metric]
        assert score.delta(metric) == delta
        assert score.importance(metric) == -delta
        assert score.harmful(metric) == (delta > 0)


@given(_metric_maps, _metric_maps)
def test_verdict_follows_first_differing_metric(baseline, variant):
    score = score_swap("workload", "x", baseline, variant, METRICS)
    verdict = swap_verdict(score)
    for metric in METRICS:
        delta = variant[metric] - baseline[metric]
        if delta > 0:
            assert verdict == VERDICT_HARMFUL
            break
        if delta < 0:
            assert verdict == VERDICT_LOAD_BEARING
            break
    else:
        assert verdict == VERDICT_NEUTRAL


# -- typed rejections -------------------------------------------------------


def test_score_swap_rejects_missing_metric():
    with pytest.raises(ValidationError, match="missing"):
        score_swap(
            "heuristic", "x", {"acceptance": 1.0}, {"acceptance": 1.0},
            METRICS,
        )


def test_score_swap_rejects_empty_metrics():
    with pytest.raises(ValidationError, match="at least one metric"):
        score_swap("heuristic", "x", {}, {}, ())


def test_delta_rejects_unscored_metric():
    score = score_swap(
        "heuristic", "x", {"acceptance": 1.0}, {"acceptance": 0.5},
        ("acceptance",),
    )
    with pytest.raises(ValidationError, match="no metric"):
        score.delta("mean_tightness")
