"""Unit tests for acceptance, improvement and tightness metrics."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.metrics.acceptance import AcceptanceCounter, acceptance_ratio
from repro.metrics.improvement import (
    acceptance_improvement,
    detection_speedup,
    tightness_gap,
)
from repro.metrics.tightness import (
    cumulative_tightness,
    tightness_per_task,
)
from repro.model.task import SecurityTask


class TestAcceptance:
    def test_ratio(self):
        assert acceptance_ratio([True, False, True, True]) == 0.75

    def test_empty_is_zero(self):
        assert acceptance_ratio([]) == 0.0

    def test_counter(self):
        counter = AcceptanceCounter()
        for outcome in (True, False, True):
            counter.record(outcome)
        assert counter.total == 3
        assert counter.ratio == pytest.approx(2 / 3)

    def test_counter_merge(self):
        a = AcceptanceCounter(accepted=1, total=2)
        b = AcceptanceCounter(accepted=3, total=4)
        merged = a.merge(b)
        assert merged.accepted == 4
        assert merged.total == 6

    def test_empty_counter_ratio(self):
        assert AcceptanceCounter().ratio == 0.0


class TestAcceptanceImprovement:
    def test_equal_ratios_zero(self):
        assert acceptance_improvement(0.5, 0.5) == 0.0

    def test_hydra_ahead(self):
        assert acceptance_improvement(1.0, 0.2) == pytest.approx(80.0)

    def test_single_dead_hydra_alive(self):
        assert acceptance_improvement(0.4, 0.0) == pytest.approx(100.0)

    def test_both_dead(self):
        assert acceptance_improvement(0.0, 0.0) == 0.0

    def test_bounded_by_100(self):
        assert acceptance_improvement(1.0, 0.0) <= 100.0

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValidationError):
            acceptance_improvement(1.5, 0.1)
        with pytest.raises(ValidationError):
            acceptance_improvement(0.5, -0.1)


class TestTightnessGap:
    def test_gap(self):
        assert tightness_gap(4.0, 3.0) == pytest.approx(25.0)

    def test_zero_gap(self):
        assert tightness_gap(4.0, 4.0) == 0.0

    def test_numerical_noise_clamped(self):
        assert tightness_gap(4.0, 4.0 + 1e-12) == 0.0

    def test_hydra_unschedulable_scores_100(self):
        assert tightness_gap(4.0, 0.0) == pytest.approx(100.0)

    def test_requires_positive_optimum(self):
        with pytest.raises(ValidationError):
            tightness_gap(0.0, 0.0)


class TestDetectionSpeedup:
    def test_faster_scheme_positive(self):
        assert detection_speedup([1.0, 1.0], [2.0, 2.0]) == pytest.approx(
            50.0
        )

    def test_equal_zero(self):
        assert detection_speedup([2.0], [2.0]) == 0.0

    def test_slower_scheme_negative(self):
        assert detection_speedup([3.0], [2.0]) < 0.0

    def test_infinite_observations_dropped(self):
        assert detection_speedup(
            [1.0, math.inf], [2.0, math.inf]
        ) == pytest.approx(50.0)

    def test_all_undetected_rejected(self):
        with pytest.raises(ValidationError):
            detection_speedup([math.inf], [1.0])


class TestTightnessHelpers:
    @pytest.fixture
    def tasks(self):
        return [
            SecurityTask(
                name="a", wcet=1.0, period_des=100.0, period_max=1000.0
            ),
            SecurityTask(
                name="b", wcet=1.0, period_des=200.0, period_max=2000.0
            ),
        ]

    def test_per_task(self, tasks):
        etas = tightness_per_task(tasks, {"a": 200.0, "b": 200.0})
        assert etas == {"a": pytest.approx(0.5), "b": pytest.approx(1.0)}

    def test_missing_period_rejected(self, tasks):
        with pytest.raises(ValidationError):
            tightness_per_task(tasks, {"a": 200.0})

    def test_cumulative_unweighted(self, tasks):
        total = cumulative_tightness(tasks, {"a": 200.0, "b": 200.0})
        assert total == pytest.approx(1.5)

    def test_cumulative_weighted(self, tasks):
        total = cumulative_tightness(
            tasks, {"a": 200.0, "b": 200.0}, weights={"a": 2.0}
        )
        assert total == pytest.approx(2.0)

    def test_out_of_range_period_rejected(self, tasks):
        with pytest.raises(ValidationError):
            cumulative_tightness(tasks, {"a": 50.0, "b": 200.0})
