"""The stdlib HTTP shell: request parsing and response rendering.

Both halves are pure functions of a stream / values, so they are
tested by feeding bytes into an :class:`asyncio.StreamReader` —
no sockets, no running server.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.http import (
    MAX_BODY_BYTES,
    BadRequest,
    read_request,
    render_response,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_without_body(self):
        method, path, body = parse(
            b"GET /jobs HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert (method, path, body) == ("GET", "/jobs", None)

    def test_post_with_json_body(self):
        payload = json.dumps({"experiment": "table1"}).encode()
        raw = (
            b"POST /jobs HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
            b"\r\n" + payload
        )
        method, path, body = parse(raw)
        assert method == "POST"
        assert path == "/jobs"
        assert body == {"experiment": "table1"}

    def test_query_string_and_quoting_are_stripped(self):
        _method, path, _body = parse(
            b"GET /jobs/ab%20cd?verbose=1 HTTP/1.1\r\n\r\n"
        )
        assert path == "/jobs/ab cd"

    def test_header_names_are_case_insensitive(self):
        body = b'{"a": 1}'
        raw = (
            b"POST / HTTP/1.1\r\n"
            b"CONTENT-LENGTH: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        assert parse(raw)[2] == {"a": 1}

    def test_malformed_request_line(self):
        with pytest.raises(BadRequest) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_invalid_content_length(self):
        with pytest.raises(BadRequest, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")

    def test_non_json_body(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!"
        )
        with pytest.raises(BadRequest, match="not JSON") as err:
            parse(raw)
        assert err.value.status == 400

    def test_oversized_body_is_rejected_without_reading_it(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode()
            + b"\r\n\r\n"
        )
        with pytest.raises(BadRequest) as err:
            parse(raw)
        assert err.value.status == 413

    def test_vanished_peer_is_a_connection_error(self):
        with pytest.raises(ConnectionError):
            parse(b"")

    def test_overlong_request_line_is_a_bad_request(self):
        # Past the StreamReader line limit (64 KiB default), readline
        # raises ValueError — which must surface as a 4xx response,
        # not an unhandled exception that drops the connection.
        raw = b"GET /" + b"a" * (128 * 1024) + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(BadRequest) as err:
            parse(raw)
        assert err.value.status == 414

    def test_overlong_header_line_is_a_bad_request(self):
        raw = (
            b"GET / HTTP/1.1\r\n"
            b"X-Huge: " + b"b" * (128 * 1024) + b"\r\n\r\n"
        )
        with pytest.raises(BadRequest) as err:
            parse(raw)
        assert err.value.status == 431


class TestRenderResponse:
    def test_status_line_and_framing(self):
        raw = render_response(200, {"status": "ok"})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        assert lines[0] == b"HTTP/1.1 200 OK"
        assert b"Content-Type: application/json" in lines
        assert b"Connection: close" in lines
        assert json.loads(body) == {"status": "ok"}

    def test_content_length_matches_body(self):
        raw = render_response(202, {"id": "x" * 64})
        head, _, body = raw.partition(b"\r\n\r\n")
        headers = dict(
            line.split(b": ", 1)
            for line in head.split(b"\r\n")[1:]
        )
        assert int(headers[b"Content-Length"]) == len(body)

    def test_known_reason_phrases(self):
        for status, phrase in (
            (202, b"Accepted"),
            (400, b"Bad Request"),
            (404, b"Not Found"),
            (405, b"Method Not Allowed"),
            (409, b"Conflict"),
            (413, b"Payload Too Large"),
            (414, b"URI Too Long"),
            (431, b"Request Header Fields Too Large"),
            (500, b"Internal Server Error"),
        ):
            assert render_response(status, {}).startswith(
                b"HTTP/1.1 %d %s" % (status, phrase)
            )

    def test_unknown_status_still_renders(self):
        assert render_response(418, {}).startswith(b"HTTP/1.1 418 ")

    def test_round_trip_through_reader(self):
        # A rendered response body parses back as the same JSON.
        raw = render_response(200, {"jobs": [], "n": 3})
        _, _, body = raw.partition(b"\r\n\r\n")
        assert json.loads(body) == {"jobs": [], "n": 3}
