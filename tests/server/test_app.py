"""HTTP-less smoke tests of the sweep service's routing layer.

Everything runs against the in-process :class:`JobServiceApp` —
``(method, path, body) → (status, payload)`` — with no sockets, which
is the whole point of splitting the app from the HTTP shell.
"""

from __future__ import annotations

import pytest

from repro.experiments.api import ExperimentResult
from repro.jobs import Job, JobRequest, JobRunner
from repro.server import JobServiceApp

MINI_SPEC = {
    "sweep": {
        "name": "server-mini",
        "tasksets_per_point": 2,
        "utilization": {"start": 0.5, "stop": 0.5, "step": 0.5},
    },
    "grid": {
        "cores": [2],
        "heuristic": ["best-fit"],
        "ordering": ["rm"],
        "admission": ["rta"],
    },
}


@pytest.fixture
def service(tmp_path):
    runner = JobRunner(cache_dir=tmp_path / "cache")
    yield JobServiceApp(runner)
    runner.close()


def submit_and_wait(app: JobServiceApp, body: dict) -> dict:
    status, payload = app.handle("POST", "/jobs", body)
    assert status in (200, 202)
    assert app.runner.get(payload["id"]).wait(timeout=120)
    status, payload = app.handle("GET", f"/jobs/{payload['id']}")
    assert status == 200
    return payload


class TestRouting:
    def test_healthz(self, service):
        assert service.handle("GET", "/healthz") == (200, {"status": "ok"})

    def test_healthz_rejects_other_methods(self, service):
        status, payload = service.handle("POST", "/healthz")
        assert status == 405
        assert payload["error"]["type"] == "MethodNotAllowed"

    def test_unknown_route_is_404(self, service):
        status, payload = service.handle("GET", "/nope")
        assert status == 404
        assert payload["error"]["type"] == "NotFound"

    def test_trailing_slash_is_tolerated(self, service):
        assert service.handle("GET", "/healthz/")[0] == 200

    def test_unknown_job_is_404(self, service):
        for method, path in (
            ("GET", "/jobs/deadbeef"),
            ("DELETE", "/jobs/deadbeef"),
            ("GET", "/jobs/deadbeef/result"),
        ):
            status, payload = service.handle(method, path)
            assert status == 404, (method, path)
            assert payload["error"]["type"] == "UnknownJobError"
            assert "deadbeef" in payload["error"]["message"]


class TestSubmission:
    def test_submit_poll_result(self, service):
        doc = submit_and_wait(
            service, {"spec": MINI_SPEC, "scale": "smoke"}
        )
        assert doc["state"] == "done"
        assert doc["progress"]["total_points"] >= 1

        status, result = service.handle(
            "GET", f"/jobs/{doc['id']}/result"
        )
        assert status == 200
        # The payload is the full typed ExperimentResult document.
        restored = ExperimentResult.from_dict(result)
        assert restored.experiment == "sweep:server-mini"

    def test_duplicate_submit_same_id_and_warm_done(self, service):
        body = {"spec": MINI_SPEC, "scale": "smoke"}
        first = submit_and_wait(service, body)
        status, second = service.handle("POST", "/jobs", body)
        assert status == 200  # already terminal — not merely accepted
        assert second["id"] == first["id"]
        assert second["state"] == "done"

    def test_submit_without_body_is_400(self, service):
        status, payload = service.handle("POST", "/jobs")
        assert status == 400
        assert payload["error"]["type"] == "ValidationError"

    def test_submit_with_bad_spec_is_400(self, service):
        status, payload = service.handle(
            "POST", "/jobs", {"experiment": "fig9", "scale": "smoke"}
        )
        assert status == 400
        assert "fig9" in payload["error"]["message"]

    def test_submit_with_unknown_key_is_400(self, service):
        status, payload = service.handle(
            "POST", "/jobs", {"experiment": "table1", "scael": "smoke"}
        )
        assert status == 400
        assert "scael" in payload["error"]["message"]

    def test_jobs_listing(self, service):
        first = submit_and_wait(
            service, {"spec": MINI_SPEC, "scale": "smoke"}
        )
        status, payload = service.handle("GET", "/jobs")
        assert status == 200
        assert [j["id"] for j in payload["jobs"]] == [first["id"]]

    def test_jobs_collection_rejects_delete(self, service):
        assert service.handle("DELETE", "/jobs")[0] == 405


class TestResultAndCancel:
    def _park_queued_job(self, service) -> Job:
        """A job frozen in ``queued`` (never handed to the worker
        thread), for pinning the not-done paths deterministically."""
        request = JobRequest.from_dict(
            {"spec": MINI_SPEC, "scale": "smoke"}
        )
        experiment, scale = request.build()
        job = Job("f" * 64, experiment, scale, request)
        service.runner._jobs[job.id] = job
        return job

    def test_result_before_done_is_409(self, service):
        job = self._park_queued_job(service)
        status, payload = service.handle(
            "GET", f"/jobs/{job.id}/result"
        )
        assert status == 409
        assert payload["error"]["type"] == "JobNotDone"
        assert "queued" in payload["error"]["message"]

    def test_delete_cancels_queued_job(self, service):
        job = self._park_queued_job(service)
        status, payload = service.handle("DELETE", f"/jobs/{job.id}")
        assert status == 200
        assert payload["state"] == "cancelled"
        assert payload["error"]["type"] == "SweepCancelled"

    def test_delete_terminal_job_is_a_no_op(self, service):
        done = submit_and_wait(
            service, {"spec": MINI_SPEC, "scale": "smoke"}
        )
        status, payload = service.handle("DELETE", f"/jobs/{done['id']}")
        assert status == 200
        assert payload["state"] == "done"
