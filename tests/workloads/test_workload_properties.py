"""Property-based tests (hypothesis) over the whole workload registry.

The :class:`~repro.workloads.api.WorkloadGenerator` contract, audited
for *every* registered family:

* all WCETs strictly positive;
* recipe-backed generators (``config`` is not ``None``) keep the
  achieved total utilisation on target, task counts and periods inside
  the configured bounds, and the desired security utilisation at most
  ``security_utilization_fraction`` of the real-time utilisation;
* same seed ⇒ byte-identical task sets — per call, per batch, and
  through the sweep engine serial vs. pooled (which proves generators
  draw only from the stream they are given).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.parallel import SweepEngine, SweepSpec
from repro.workloads import (
    get_workload,
    run_workload,
    run_workload_batch,
    workload_names,
    workload_to_dict,
)

_SPECS = workload_names()

_PLATFORMS = st.sampled_from([1, 2, 4])
_FRACTIONS = st.floats(min_value=0.05, max_value=0.95)
_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _canonical(workload) -> str:
    return json.dumps(workload_to_dict(workload), sort_keys=True)


def _count_bounds(config, which: str, m: int) -> tuple[int, int]:
    override = getattr(config, f"{which}_task_count")
    if override is not None:
        return override
    lo, hi = getattr(config, f"{which}_tasks_per_core")
    return lo * m, hi * m


@pytest.mark.parametrize("spec", _SPECS)
@given(m=_PLATFORMS, fraction=_FRACTIONS, seed=_SEEDS)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_generator_contract(spec, m, fraction, seed):
    generator = get_workload(spec)
    target = fraction * m
    workload = generator.generate(m, target, np.random.default_rng(seed))

    # -- universal: strictly positive WCETs, platform respected -------
    assert workload.platform.num_cores == m
    for task in workload.rt_tasks:
        assert task.wcet > 0.0, f"{spec}: rt wcet {task.wcet}"
    for task in workload.security_tasks:
        assert task.wcet > 0.0, f"{spec}: sec wcet {task.wcet}"

    config = generator.config
    if config is None:
        return  # fixed case studies: parameters are the workload

    # -- achieved utilisation on target -------------------------------
    assert workload.total_utilization == pytest.approx(
        target, rel=1e-6, abs=1e-9
    ), f"{spec}: achieved {workload.total_utilization} vs target {target}"

    # -- security share capped at the configured fraction -------------
    cap = config.security_utilization_fraction
    assert workload.security_utilization_des <= (
        cap * workload.rt_utilization + 1e-9
    ), f"{spec}: security share above the {cap} cap"

    # -- task counts inside the configured bounds ---------------------
    nr_lo, nr_hi = _count_bounds(config, "rt", m)
    ns_lo, ns_hi = _count_bounds(config, "security", m)
    assert nr_lo <= len(workload.rt_tasks) <= nr_hi, spec
    assert ns_lo <= len(workload.security_tasks) <= ns_hi, spec

    # -- periods inside the configured ranges -------------------------
    p_lo, p_hi = config.rt_period_range
    for task in workload.rt_tasks:
        assert p_lo - 1e-9 <= task.period <= p_hi + 1e-9, (
            f"{spec}: rt period {task.period} outside [{p_lo}, {p_hi}]"
        )
    s_lo, s_hi = config.security_period_des_range
    for task in workload.security_tasks:
        assert s_lo - 1e-9 <= task.period_des <= s_hi + 1e-9, spec
        assert task.period_max == pytest.approx(
            config.period_max_factor * task.period_des
        )

    # -- per-task utilisation never demands more than one core --------
    for task in workload.rt_tasks:
        assert task.utilization <= 1.0 + 1e-9, spec


@pytest.mark.parametrize("spec", _SPECS)
@given(m=_PLATFORMS, fraction=_FRACTIONS, seed=_SEEDS)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_same_seed_is_byte_identical(spec, m, fraction, seed):
    target = fraction * m
    a = run_workload(spec, m, target, np.random.default_rng(seed))
    b = run_workload(spec, m, target, np.random.default_rng(seed))
    assert _canonical(a) == _canonical(b)


@pytest.mark.parametrize("spec", _SPECS)
@given(seed=_SEEDS)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_batch_same_seed_is_byte_identical(spec, seed):
    targets = [0.4, 0.8, 0.8, 1.2]
    a = run_workload_batch(spec, 2, targets, np.random.default_rng(seed))
    b = run_workload_batch(spec, 2, targets, np.random.default_rng(seed))
    assert len(a) == len(b) == len(targets)
    assert [_canonical(w) for w in a] == [_canonical(w) for w in b]


def _sample_spec(spec: str) -> SweepSpec:
    return SweepSpec(
        kind="workload-sample",
        seed=2018,
        points=tuple(
            {"utilization": u} for u in (0.25, 0.75, 1.25)
        ),
        params={"cores": 2, "workload": spec},
    )


@pytest.mark.parametrize("spec", _SPECS)
def test_serial_and_pooled_generation_byte_identical(spec):
    """SeedSequence determinism through the engine: a pooled run of the
    ``workload-sample`` kind reproduces the serial bytes exactly."""
    sweep = _sample_spec(spec)
    serial = SweepEngine(workers=1).run(sweep)
    pooled = SweepEngine(workers=2).run(sweep)
    assert (
        json.dumps(serial.payloads, sort_keys=True)
        == json.dumps(pooled.payloads, sort_keys=True)
    )


def test_sample_runner_cache_round_trip(tmp_path):
    sweep = _sample_spec("uunifast")
    cold = SweepEngine(cache=str(tmp_path)).run(sweep)
    computed: list[int] = []
    warm = SweepEngine(
        cache=str(tmp_path), on_point_computed=computed.append
    ).run(sweep)
    assert warm.payloads == cold.payloads
    assert computed == []  # warm run came entirely from the cache


def test_sample_runner_cache_keys_on_workload_spec(tmp_path):
    """Two families at the same seed/point must occupy distinct cache
    entries — the workload spec is part of the key payload."""
    engine = SweepEngine(cache=str(tmp_path))
    paper = engine.run(_sample_spec("paper-synthetic"))
    uunifast = engine.run(_sample_spec("uunifast"))
    assert paper.stats.computed_points == 3
    assert uunifast.stats.computed_points == 3  # no false cache hits
    assert paper.payloads != uunifast.payloads
