"""Tests for the first-class workload API: registry resolution, typed
unknown-name errors, the run_workload entry points, and byte-identity
of the registered paper recipe with direct generate_workload calls."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigError, ReproError
from repro.taskgen.synthetic import generate_workload
from repro.workloads import (
    UnknownWorkloadError,
    WorkloadGenerator,
    get_workload,
    get_workload_info,
    iter_workload_info,
    register_workload,
    run_workload,
    run_workload_batch,
    unregister_workload,
    workload_names,
    workload_to_dict,
)
from repro.workloads.builtin import (
    CaseStudyWorkload,
    SyntheticRecipeWorkload,
    heavy_security_workload,
)


def _canonical(workload) -> str:
    return json.dumps(workload_to_dict(workload), sort_keys=True)


class TestRegistry:
    def test_every_spec_resolves_to_its_own_name(self):
        names = workload_names()
        assert "paper-synthetic" in names
        for spec in names:
            assert get_workload(spec).name == spec

    def test_expected_builtins_present(self):
        names = set(workload_names())
        # the paper's recipe …
        assert "paper-synthetic" in names
        # … the UUniFast splitter pair …
        assert {"uunifast", "uunifast-discard"} <= names
        # … the period regimes and the heavy-security profile …
        assert {
            "uniform-periods", "harmonic-periods", "heavy-security",
        } <= names
        # … and the fixed case studies.
        assert {"uav-case-study", "table1-suite"} <= names

    def test_unknown_spec_is_typed_and_lists_known_names(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("fractal")
        message = str(excinfo.value)
        assert "fractal" in message
        assert "paper-synthetic" in message and "uunifast" in message
        # part of the library hierarchy *and* a ValueError for generic
        # input-validation handlers
        assert isinstance(excinfo.value, ConfigError)
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)

    def test_info_metadata(self):
        info = get_workload_info("paper-synthetic")
        assert info.name == "paper-synthetic"
        assert info.title
        assert "paper" in info.tags
        data = info.to_dict()
        assert data["name"] == "paper-synthetic"
        assert isinstance(data["tags"], list)

    def test_iteration_order_is_registration_order(self):
        names = [i.name for i in iter_workload_info()]
        assert names == workload_names()
        assert names[0] == "paper-synthetic"

    def test_register_unregister_round_trip(self):
        @register_workload("test-fixed", title="a test family")
        class FixedWorkload(WorkloadGenerator):
            name = "test-fixed"

            def generate(self, platform, total_utilization, rng=None):
                return run_workload(
                    "uav-case-study", platform, total_utilization
                )

        try:
            assert "test-fixed" in workload_names()
            assert isinstance(get_workload("test-fixed"), FixedWorkload)
            with pytest.raises(ConfigError, match="already registered"):
                register_workload("test-fixed")(FixedWorkload)
            register_workload("test-fixed", replace=True, title="v2")(
                FixedWorkload
            )
            assert get_workload_info("test-fixed").title == "v2"
        finally:
            unregister_workload("test-fixed")
        assert "test-fixed" not in workload_names()

    def test_nameless_factory_rejected(self):
        with pytest.raises(ConfigError, match="registry name"):
            register_workload()(lambda: None)

    def test_builtin_name_collision_detected_on_fresh_registry(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_workload("paper-synthetic")(lambda: None)
        assert get_workload("paper-synthetic").name == "paper-synthetic"


class TestPaperSyntheticByteIdentity:
    """The tentpole guarantee: the registered recipe IS the recipe."""

    @pytest.mark.parametrize("seed", [0, 7, 2018])
    @pytest.mark.parametrize("target", [0.3, 1.3])
    def test_registry_matches_direct_calls(self, seed, target):
        via_registry = run_workload(
            "paper-synthetic", 2, target, np.random.default_rng(seed)
        )
        direct = generate_workload(2, target, np.random.default_rng(seed))
        assert _canonical(via_registry) == _canonical(direct)

    def test_batch_entry_point_is_deterministic(self):
        a = run_workload_batch("paper-synthetic", 2, [0.5, 1.0, 1.0], 42)
        b = run_workload_batch("paper-synthetic", 2, [0.5, 1.0, 1.0], 42)
        assert [_canonical(w) for w in a] == [_canonical(w) for w in b]
        assert [w.target_utilization for w in a] == [0.5, 1.0, 1.0]


class TestBuiltinFamilies:
    def test_recipe_generator_carries_its_config(self):
        generator = get_workload("heavy-security")
        assert isinstance(generator, SyntheticRecipeWorkload)
        assert generator.config.security_utilization_fraction == 0.6
        assert generator.config.security_tasks_per_core == (4, 10)

    def test_heavy_security_knobs(self):
        generator = heavy_security_workload(
            security_utilization_fraction=0.9,
            security_tasks_per_core=(1, 2),
            name="my-heavy",
        )
        assert generator.name == "my-heavy"
        workload = generator.generate(2, 1.0, 3)
        assert 2 <= len(workload.security_tasks) <= 4

    def test_unknown_split_rejected(self):
        from repro.errors import ValidationError

        generator = SyntheticRecipeWorkload("bad", split="dirichlet")
        with pytest.raises(ValidationError, match="dirichlet"):
            generator.generate(2, 1.0, 1)

    def test_case_studies_are_fixed_points(self):
        for spec in ("uav-case-study", "table1-suite"):
            generator = get_workload(spec)
            assert isinstance(generator, CaseStudyWorkload)
            assert generator.config is None
            # same bytes whatever the target or stream
            a = generator.generate(2, 0.2, 1)
            b = generator.generate(2, 1.9, 99)
            assert _canonical(a) == _canonical(b)
            # the target records the achieved utilisation
            assert a.target_utilization == pytest.approx(
                a.total_utilization
            )

    def test_uav_case_study_contents(self):
        workload = run_workload("uav-case-study", 2, 1.0)
        assert {t.name for t in workload.rt_tasks} == {
            "fast_navigation", "controller", "slow_navigation",
            "guidance", "missile_control", "reconnaissance",
        }
        assert len(workload.security_tasks) == 6

    def test_table1_suite_has_no_rt_load(self):
        workload = run_workload("table1-suite", 2, 1.0)
        assert len(workload.rt_tasks) == 0
        assert {t.name for t in workload.security_tasks} >= {
            "tw_own_binary", "bro_network",
        }
