"""Tests for the first-class allocator API: registry resolution, typed
unknown-name errors, the run_allocator envelope, and sim integration."""

from __future__ import annotations

import pytest

from repro.allocators import (
    AllocationResult,
    Allocator,
    BinPackingAllocator,
    UnknownAllocatorError,
    allocator_names,
    get_allocator,
    get_allocator_info,
    iter_allocator_info,
    register_allocator,
    run_allocator,
    unregister_allocator,
)
from repro.core.allocator import Allocation
from repro.errors import ConfigError, ReproError


class TestRegistry:
    def test_every_spec_resolves_to_its_own_name(self):
        names = allocator_names()
        assert "hydra" in names and "optimal" in names
        for spec in names:
            assert get_allocator(spec).name == spec

    def test_expected_builtins_present(self):
        names = set(allocator_names())
        # the paper's three schemes …
        assert {"hydra", "singlecore", "optimal"} <= names
        # … every opt/ solver route …
        assert {
            "hydra[gp]", "hydra+lp", "optimal[branch-bound]",
            "hydra[exact-rta]",
        } <= names
        # … and the classic bin-packing family.
        assert {
            "binpack-first-fit", "binpack-best-fit", "binpack-worst-fit",
            "binpack-next-fit",
        } <= names

    def test_unknown_spec_is_typed_and_lists_known_names(self):
        with pytest.raises(UnknownAllocatorError) as excinfo:
            get_allocator("magic")
        message = str(excinfo.value)
        assert "magic" in message
        assert "hydra" in message and "optimal" in message
        # part of the library hierarchy *and* a ValueError for generic
        # input-validation handlers
        assert isinstance(excinfo.value, ConfigError)
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ValueError)

    def test_info_metadata(self):
        info = get_allocator_info("hydra")
        assert info.name == "hydra"
        assert info.title
        assert "paper" in info.tags
        data = info.to_dict()
        assert data["name"] == "hydra" and isinstance(data["tags"], list)

    def test_iteration_order_is_registration_order(self):
        names = [i.name for i in iter_allocator_info()]
        assert names == allocator_names()
        assert names[0] == "hydra"

    def test_register_unregister_round_trip(self):
        @register_allocator("test-noop", title="always fails", tags=("test",))
        class NoopAllocator(Allocator):
            name = "test-noop"

            def allocate(self, system):
                return Allocation(
                    scheme=self.name, schedulable=False, failed_task=None
                )

        try:
            assert "test-noop" in allocator_names()
            assert isinstance(get_allocator("test-noop"), NoopAllocator)
            with pytest.raises(ConfigError, match="already registered"):
                register_allocator("test-noop")(NoopAllocator)
            register_allocator("test-noop", replace=True, title="v2")(
                NoopAllocator
            )
            assert get_allocator_info("test-noop").title == "v2"
        finally:
            unregister_allocator("test-noop")
        assert "test-noop" not in allocator_names()

    def test_nameless_factory_rejected(self):
        with pytest.raises(ConfigError, match="registry name"):
            register_allocator()(lambda: None)


class TestBinPacking:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="first-fit"):
            BinPackingAllocator(rule="middle-fit")

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigError, match="closed-form"):
            BinPackingAllocator(solver="oracle")

    def test_rules_place_all_tasks(self, loaded_system):
        for rule in ("first-fit", "best-fit", "worst-fit", "next-fit"):
            allocation = BinPackingAllocator(rule=rule).allocate(loaded_system)
            assert allocation.scheme == f"binpack-{rule}"
            if allocation.schedulable:
                placed = {a.task.name for a in allocation.assignments}
                assert placed == set(loaded_system.security_tasks.names)

    def test_first_fit_prefers_low_cores(self, two_core_system):
        allocation = BinPackingAllocator(rule="first-fit").allocate(
            two_core_system
        )
        assert allocation.schedulable
        # Both security tasks fit next to the light RT load on core 0.
        assert set(allocation.cores().values()) == {0}

    def test_worst_fit_spreads(self, two_core_system):
        allocation = BinPackingAllocator(rule="worst-fit").allocate(
            two_core_system
        )
        assert allocation.schedulable
        # Core 1 is empty, so worst-fit must start there.
        assert allocation.assignments[0].core == 1


class TestRunAllocator:
    def test_returns_typed_result(self, two_core_system):
        result = run_allocator("hydra", two_core_system)
        assert isinstance(result, AllocationResult)
        assert result.allocator == "hydra"
        assert result.scheme == "hydra"
        assert result.schedulable
        assert result.elapsed_s >= 0.0
        assert result.mean_tightness() == pytest.approx(
            result.allocation.mean_tightness()
        )
        assert set(result.security_partition()) == set(
            two_core_system.security_tasks.names
        )
        assert set(result.periods()) == set(result.tightness_by_task())
        assert "ms]" in result.summary()

    def test_accepts_allocator_instance(self, two_core_system):
        result = run_allocator(
            BinPackingAllocator(rule="best-fit"), two_core_system
        )
        assert result.allocator == "binpack-best-fit"
        assert result.schedulable

    def test_diagnostics_merge_info_and_extras(self, two_core_system):
        result = run_allocator(
            "optimal", two_core_system, extra_diagnostics={"trial": 7}
        )
        assert result.diagnostics["trial"] == 7
        assert "explored" in result.diagnostics  # from Allocation.info

    def test_unschedulable_summary_names_failed_task(self, two_core_system):
        failed = AllocationResult(
            allocator="x",
            allocation=Allocation(
                scheme="x", schedulable=False, failed_task="sec_hi"
            ),
        )
        assert not failed.schedulable
        assert "sec_hi" in failed.summary()
        assert failed.mean_tightness() == 0.0


class TestSimIntegration:
    def test_simulate_allocation_accepts_result(self, two_core_system):
        from repro.sim.runner import build_sim_tasks, simulate_allocation

        result = run_allocator("hydra", two_core_system)
        tasks = build_sim_tasks(two_core_system, result)
        assert {t.name for t in tasks} >= set(
            two_core_system.security_tasks.names
        )
        sim = simulate_allocation(
            two_core_system, result, duration=1000.0, rng=7
        )
        raw = simulate_allocation(
            two_core_system, result.allocation, duration=1000.0, rng=7
        )
        assert len(sim.jobs) == len(raw.jobs)

    def test_any_registered_strategy_simulates(self, loaded_system):
        from repro.sim.runner import simulate_allocation

        for spec in ("binpack-worst-fit", "hydra+lp"):
            result = run_allocator(spec, loaded_system)
            assert result.schedulable
            sim = simulate_allocation(
                loaded_system, result, duration=2000.0, rng=3
            )
            assert sim.jobs


class TestReviewRegressions:
    """Pins for defects found in review: builtin-name collisions,
    next-fit pointer semantics, and pre-placement utilisation ranking."""

    def test_builtin_name_collision_detected_on_fresh_registry(self):
        # Even if a plugin registers before any lookup primed the
        # builtins, claiming a builtin name without replace=True must
        # fail (the decorator loads the builtins first).
        with pytest.raises(ConfigError, match="already registered"):
            register_allocator("hydra")(lambda: None)
        assert get_allocator("hydra").name == "hydra"  # registry intact

    @staticmethod
    def _pointer_system(extra_sec):
        from repro.model import (
            Partition,
            Platform,
            RealTimeTask,
            SystemModel,
            TaskSet,
        )
        from repro.model.task import SecurityTask

        platform = Platform(2)
        rt = TaskSet([RealTimeTask(name="r0", wcet=5.0, period=10.0)])
        partition = Partition(platform, rt, {"r0": 0})
        security = TaskSet(
            [
                # Infeasible on core 0 ((55+5)/0.5 = 120 > T_max), so the
                # next-fit pointer is forced onto core 1.
                SecurityTask(
                    name="s_hi", wcet=55.0, period_des=60.0, period_max=80.0
                ),
                *extra_sec,
            ]
        )
        return SystemModel(
            platform=platform, rt_partition=partition, security_tasks=security
        )

    def test_next_fit_never_revisits_earlier_cores(self):
        from repro.model.task import SecurityTask

        system = self._pointer_system(
            [
                SecurityTask(  # feasible on either core
                    name="s_lo", wcet=2.0, period_des=100.0,
                    period_max=1000.0,
                )
            ]
        )
        first = BinPackingAllocator(rule="first-fit").allocate(system)
        nxt = BinPackingAllocator(rule="next-fit").allocate(system)
        assert first.schedulable and nxt.schedulable
        assert first.assignment_for("s_lo").core == 0  # lowest feasible
        assert nxt.assignment_for("s_lo").core == 1  # pointer stays put

    def test_next_fit_pointer_failure_is_unschedulable_not_backtrack(self):
        from repro.model.task import SecurityTask

        system = self._pointer_system(
            [
                # Feasible only on core 0 ((10+55)/(1-55/60) ≈ 780 > 300
                # behind s_hi on core 1), which the pointer has passed.
                SecurityTask(
                    name="s2", wcet=10.0, period_des=100.0, period_max=300.0
                )
            ]
        )
        assert BinPackingAllocator(rule="first-fit").allocate(
            system
        ).schedulable
        nxt = BinPackingAllocator(rule="next-fit").allocate(system)
        assert not nxt.schedulable
        assert nxt.failed_task == "s2"
        # and the pointer resets between allocate() calls
        again = BinPackingAllocator(rule="next-fit")
        again.allocate(system)
        assert not again.allocate(system).schedulable

    def test_best_and_worst_fit_rank_by_preplacement_utilisation(
        self, two_core_system
    ):
        # core 0 carries the RT pair (util 0.2), core 1 is empty: the
        # documented pre-placement ranking must send best-fit to the
        # fuller core 0 and worst-fit to the emptier core 1.
        best = BinPackingAllocator(rule="best-fit").allocate(two_core_system)
        worst = BinPackingAllocator(rule="worst-fit").allocate(two_core_system)
        assert best.assignments[0].core == 0
        assert worst.assignments[0].core == 1
