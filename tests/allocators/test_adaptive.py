"""The period-adapting allocator family (``allocators/adaptive.py``).

Pins the three documented behaviours: closed-form over HYDRA is a fixed
point, exact-RTA re-adaptation is never looser, and the Contego-style
mode-change variant only ever *loosens* periods (within ``T_max``) and
reverts whole cores atomically when a mode solve fails.
"""

from __future__ import annotations

import math

import pytest

from repro.allocators import allocator_names, get_allocator
from repro.allocators.adaptive import AdaptiveAllocator
from repro.core.hydra import HydraAllocator
from repro.core.verify import verify_allocation
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)

_TOL = 1e-9


def make_system(
    rt_per_core: dict[int, list[tuple[float, float]]],
    security: list[tuple[float, float, float]],
    cores: int = 2,
) -> SystemModel:
    """(wcet, period) RT pairs per core; (wcet, T_des, T_max) security."""
    platform = Platform(cores)
    rt_tasks = []
    mapping = {}
    for core, pairs in rt_per_core.items():
        for i, (wcet, period) in enumerate(pairs):
            name = f"rt{core}_{i}"
            rt_tasks.append(
                RealTimeTask(name=name, wcet=wcet, period=period)
            )
            mapping[name] = core
    security_tasks = TaskSet(
        [
            SecurityTask(
                name=f"sec{i}", wcet=wcet, period_des=tdes, period_max=tmax
            )
            for i, (wcet, tdes, tmax) in enumerate(security)
        ]
    )
    return SystemModel(
        platform=platform,
        rt_partition=Partition(platform, TaskSet(rt_tasks), mapping),
        security_tasks=security_tasks,
    )


@pytest.fixture
def stretched_system() -> SystemModel:
    """Loaded enough that HYDRA stretches periods beyond T_des."""
    return make_system(
        {0: [(4.0, 10.0), (30.0, 100.0)], 1: [(5.0, 20.0), (45.0, 150.0)]},
        [(20.0, 200.0, 2000.0), (30.0, 300.0, 3000.0),
         (40.0, 400.0, 4000.0)],
    )


class TestConstruction:
    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown period solver"):
            AdaptiveAllocator(solver="magic")

    def test_rejects_deflating_mode_factor(self):
        with pytest.raises(ValueError, match="mode_factor"):
            AdaptiveAllocator(mode_factor=0.5)

    def test_names_encode_variant(self):
        assert AdaptiveAllocator().name == "adaptive"
        assert AdaptiveAllocator(solver="exact-rta").name == (
            "adaptive[exact-rta]"
        )
        assert AdaptiveAllocator(
            solver="exact-rta", mode_factor=1.5
        ).name == "adaptive[contego]"
        assert AdaptiveAllocator(inner="best-fit").name == (
            "adaptive@best-fit"
        )

    def test_registered_variants_round_trip(self):
        for spec in ("adaptive", "adaptive[exact-rta]",
                     "adaptive[contego]"):
            assert spec in allocator_names()
            allocation = get_allocator(spec).allocate(
                make_system({0: [(2.0, 10.0)]}, [(1.0, 50.0, 500.0)])
            )
            assert allocation.scheme == spec


class TestClosedFormFixedPoint:
    def test_hydra_periods_unchanged(self, stretched_system):
        base = HydraAllocator().allocate(stretched_system)
        adapted = AdaptiveAllocator().allocate(stretched_system)
        assert adapted.schedulable
        base_periods = {a.task.name: a.period for a in base.assignments}
        for assignment in adapted.assignments:
            assert assignment.period == pytest.approx(
                base_periods[assignment.task.name], abs=_TOL
            )
        assert adapted.info["adapted_cores"] == ()
        assert adapted.info["reverted_cores"] == ()
        assert adapted.info["tightened_tasks"] == 0
        assert adapted.info["inner"] == base.scheme

    def test_placement_is_preserved(self, stretched_system):
        base = HydraAllocator().allocate(stretched_system)
        adapted = AdaptiveAllocator(solver="exact-rta").allocate(
            stretched_system
        )
        assert {a.task.name: a.core for a in adapted.assignments} == {
            a.task.name: a.core for a in base.assignments
        }


@pytest.fixture
def linearisation_gap_system() -> SystemModel:
    """A system where HYDRA's linearised Eq. (5) period is strictly
    looser than the exact-RTA optimum on at least one core."""
    return make_system(
        {0: [(4.6, 25.7), (7.2, 20.3)], 1: [(5.5, 30.5), (4.1, 25.6)]},
        [(24.0, 280.0, 1280.0), (28.3, 101.0, 3200.0),
         (25.3, 127.0, 2140.0)],
    )


class TestExactNeverLooser:
    def test_periods_tighten_or_match(self, linearisation_gap_system):
        base = HydraAllocator().allocate(linearisation_gap_system)
        adapted = AdaptiveAllocator(solver="exact-rta").allocate(
            linearisation_gap_system
        )
        assert adapted.schedulable
        base_periods = {a.task.name: a.period for a in base.assignments}
        tightened = 0
        for assignment in adapted.assignments:
            assert assignment.period <= (
                base_periods[assignment.task.name] + _TOL
            )
            if assignment.period < (
                base_periods[assignment.task.name] - _TOL
            ):
                tightened += 1
        assert adapted.info["tightened_tasks"] == tightened
        # This system is loaded enough that the linearisation is not
        # exact — the pass must actually find tighter periods.
        assert tightened > 0

    def test_result_passes_independent_verifier(self, stretched_system):
        adapted = AdaptiveAllocator(solver="exact-rta").allocate(
            stretched_system
        )
        verify_allocation(stretched_system, adapted)


class TestContego:
    def test_mode_change_only_loosens(self, stretched_system):
        normal = AdaptiveAllocator(solver="exact-rta").allocate(
            stretched_system
        )
        contego = AdaptiveAllocator(
            solver="exact-rta", mode_factor=1.5
        ).allocate(stretched_system)
        assert contego.schedulable
        assert contego.info["mode_factor"] == 1.5
        normal_periods = {a.task.name: a.period for a in normal.assignments}
        for assignment in contego.assignments:
            reverted = assignment.core in contego.info["reverted_cores"]
            if not reverted:
                assert assignment.period >= (
                    normal_periods[assignment.task.name] - _TOL
                )
            assert assignment.period <= assignment.task.period_max + _TOL

    def test_infeasible_mode_reverts_core_atomically(self):
        # Core 0 carries so much RT load that a 3x mode change leaves no
        # slack for the security task; the core must revert to the
        # inner allocator's periods wholesale.
        system = make_system(
            {0: [(4.0, 10.0), (35.0, 100.0)], 1: [(1.0, 50.0)]},
            [(20.0, 200.0, 800.0), (1.0, 100.0, 1000.0)],
        )
        base = HydraAllocator().allocate(system)
        assert base.schedulable
        contego = AdaptiveAllocator(
            solver="exact-rta", mode_factor=3.0
        ).allocate(system)
        assert contego.schedulable  # reverting keeps the admitted periods
        base_periods = {a.task.name: a.period for a in base.assignments}
        for assignment in contego.assignments:
            if assignment.core in contego.info["reverted_cores"]:
                assert assignment.period == pytest.approx(
                    base_periods[assignment.task.name], abs=_TOL
                )
        verify_allocation(system, contego)

    def test_inner_failure_propagates(self):
        # Security demand that cannot fit anywhere: inner fails, and the
        # adaptive wrapper reports the failure under its own scheme name.
        system = make_system(
            {0: [(9.0, 10.0)], 1: [(9.0, 10.0)]},
            [(50.0, 60.0, 70.0)],
        )
        allocation = AdaptiveAllocator(solver="exact-rta").allocate(system)
        assert not allocation.schedulable
        assert allocation.scheme == "adaptive[exact-rta]"
        assert allocation.failed_task is not None
        assert allocation.info["inner"] == "hydra"


class TestNonHydraInner:
    def test_retightens_bin_packer_periods(self):
        """An inner whose periods are not per-core optimal gives the
        adaptive pass real work: periods move, and never loosen."""
        system = make_system(
            {0: [(4.0, 10.0), (30.0, 100.0)],
             1: [(5.0, 20.0), (45.0, 150.0)]},
            [(20.0, 200.0, 2000.0), (30.0, 300.0, 3000.0),
             (40.0, 400.0, 4000.0)],
        )
        inner_name = "binpack-best-fit"
        base = get_allocator(inner_name).allocate(system)
        assert base.schedulable
        adapted = AdaptiveAllocator(
            inner=inner_name, solver="exact-rta"
        ).allocate(system)
        assert adapted.schedulable
        assert adapted.scheme == "adaptive[exact-rta]@binpack-best-fit"
        base_periods = {a.task.name: a.period for a in base.assignments}
        for assignment in adapted.assignments:
            assert assignment.period <= (
                base_periods[assignment.task.name] + _TOL
            )
            assert not math.isinf(assignment.period)
        verify_allocation(system, adapted)
