"""Property-based tests (hypothesis) over the whole allocator registry.

Two invariants the paper's model demands of *every* strategy, checked
against randomly generated systems:

* the real-time partition returned by any heuristic × ordering respects
  the chosen admission test on every core;
* any registered allocator's schedulable allocation keeps every
  security period inside ``[T_des, T_max]`` and passes the independent
  first-principles verifier (:func:`repro.core.verify.verify_allocation`).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocators import allocator_names, get_allocator
from repro.analysis.schedulability import ADMISSION_TESTS, get_admission_test
from repro.core.verify import verify_allocation
from repro.model import (
    Partition,
    Platform,
    RealTimeTask,
    SecurityTask,
    SystemModel,
    TaskSet,
)
from repro.partition.heuristics import HEURISTICS, ORDERINGS, \
    try_partition_tasks

# -- strategies ---------------------------------------------------------------


@st.composite
def rt_tasksets(draw) -> list[RealTimeTask]:
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for i in range(n):
        period = draw(st.floats(min_value=5.0, max_value=500.0))
        utilization = draw(st.floats(min_value=0.05, max_value=0.45))
        tasks.append(
            RealTimeTask(
                name=f"rt{i}", wcet=period * utilization, period=period
            )
        )
    return tasks


@st.composite
def two_core_systems(draw) -> SystemModel:
    """A 2-core system with light RT load on core 0 and 1–3 security
    tasks; core 1 stays empty so even SingleCore has a valid shape."""
    n_rt = draw(st.integers(min_value=1, max_value=3))
    rt = []
    for i in range(n_rt):
        period = draw(st.floats(min_value=10.0, max_value=200.0))
        utilization = draw(st.floats(min_value=0.05, max_value=0.2))
        rt.append(
            RealTimeTask(
                name=f"rt{i}", wcet=period * utilization, period=period
            )
        )
    n_sec = draw(st.integers(min_value=1, max_value=3))
    security = []
    for i in range(n_sec):
        tdes = draw(st.floats(min_value=50.0, max_value=800.0))
        factor = draw(st.floats(min_value=1.5, max_value=10.0))
        wcet = draw(st.floats(min_value=0.5, max_value=tdes / 10.0))
        security.append(
            SecurityTask(
                name=f"s{i}", wcet=wcet, period_des=tdes,
                period_max=tdes * factor,
            )
        )
    platform = Platform(2)
    partition = Partition(
        platform, TaskSet(rt), {t.name: 0 for t in rt}
    )
    return SystemModel(
        platform=platform,
        rt_partition=partition,
        security_tasks=TaskSet(security),
    )


# -- RT partition heuristics --------------------------------------------------


@pytest.mark.parametrize("heuristic", HEURISTICS)
@pytest.mark.parametrize("ordering", ORDERINGS)
@given(tasks=rt_tasksets(), admission=st.sampled_from(ADMISSION_TESTS))
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_partition_respects_admission_on_every_core(
    heuristic, ordering, tasks, admission
):
    partition = try_partition_tasks(
        tasks,
        Platform(2),
        heuristic=heuristic,
        admission=admission,
        ordering=ordering,
    )
    if partition is None:
        return  # the heuristic may legitimately fail; only success binds
    test = get_admission_test(admission)
    for core in partition.platform:
        assert test(partition.tasks_on(core)), (
            f"{heuristic}/{ordering}: core {core} violates {admission}"
        )
    assert set(partition.as_mapping()) == {t.name for t in tasks}


# -- every registered allocator ----------------------------------------------


@pytest.mark.parametrize("spec", allocator_names())
@given(system=two_core_systems())
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_allocator_respects_period_bounds_and_schedulability(spec, system):
    allocation = get_allocator(spec).allocate(system)
    assert allocation.scheme == spec
    if not allocation.schedulable:
        return  # unschedulable is data, not an error
    placed = {a.task.name for a in allocation.assignments}
    assert placed == set(system.security_tasks.names)
    for assignment in allocation.assignments:
        task = assignment.task
        assert (
            task.period_des - 1e-6
            <= assignment.period
            <= task.period_max + 1e-6 * max(1.0, task.period_max)
        ), f"{spec}: {task.name} period {assignment.period} out of bounds"
        assert assignment.core in system.platform
    # The linearised Eq. (6) verifier is the strictest; exact-RTA
    # strategies are only bound by the (weaker) exact check.
    exact = "exact" in spec
    verdict = verify_allocation(system, allocation, exact=exact)
    assert verdict.ok, f"{spec}: {verdict.format()}"
